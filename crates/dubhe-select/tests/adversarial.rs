//! The adversarial-client gauntlet: every abuse a hostile or broken peer
//! can throw at a coordinator — malformed registries, replays, stale-epoch
//! frames, garbage bytes, oversized payloads, and a fault-injecting
//! transport — must surface as a typed [`ProtocolError`]. Never a panic,
//! never a hang, never a silently corrupted fold.
//!
//! `docs/THREAT_MODEL.md` maps each of these scenarios to the claim it
//! makes executable.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dubhe_data::federated::{DatasetFamily, FederatedSpec};
use dubhe_data::ClassDistribution;
use dubhe_he::packing::Packer;
use dubhe_he::{EncryptedVector, Keypair, PackedEncryptedVector};
use dubhe_net::{ReactorConfig, ReactorListener};
use dubhe_select::protocol::{
    client_handshake, pump, read_channel_frame, read_frame, read_frame_negotiated,
    run_registration_with, run_registration_with_packing, write_frame_with, ChannelFrame,
    ChannelPolicy, CodecKind, Coordinator, CoordinatorListener, CoordinatorServer, Envelope,
    FaultPlan, FaultyTransport, InMemoryTransport, ListenerConfig, ListenerStats, NodeIdentity,
    PackingPolicy, Party, ProtocolMsg, SecureChannel, ShardedCoordinator, TcpConfig, TcpTransport,
    Transport, WireMsg, MAX_FRAME_BYTES,
};
use dubhe_select::{DubheConfig, ProtocolError, SelectError};
use rand::SeedableRng;

const KEY_BITS: u64 = 256;

fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
    let spec = FederatedSpec {
        family: DatasetFamily::MnistLike,
        rho: 10.0,
        emd_avg: 1.5,
        clients: n,
        samples_per_client: 100,
        test_samples_per_class: 1,
        seed,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    spec.build_partition(&mut rng).client_distributions()
}

fn registry_envelope(client: usize, registry: EncryptedVector) -> Envelope {
    Envelope {
        from: Party::Client(client),
        to: Party::Server,
        epoch: 0,
        msg: ProtocolMsg::EncryptedRegistry { client, registry },
    }
}

#[test]
fn malformed_registries_are_typed_errors_not_corruption() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(151);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut server = CoordinatorServer::with_public_key(kp.public.clone(), 4);

    // A well-formed first registry seeds the fold.
    let good = EncryptedVector::encrypt_u64(&kp.public, &[1, 0, 0, 0, 0, 0], &mut rng);
    Coordinator::deliver(&mut server, registry_envelope(0, good.clone())).unwrap();

    // Wrong length: the shape mismatch is a typed homomorphic error.
    let short = EncryptedVector::encrypt_u64(&kp.public, &[1, 0], &mut rng);
    match Coordinator::deliver(&mut server, registry_envelope(1, short)) {
        Err(ProtocolError::He(dubhe_he::HeError::LengthMismatch { left: 6, right: 2 })) => {}
        other => panic!("expected a length mismatch, got {other:?}"),
    }

    // Wrong key: ciphertexts under a foreign modulus cannot enter the fold.
    let foreign = Keypair::generate(KEY_BITS, &mut rng);
    let alien = EncryptedVector::encrypt_u64(&foreign.public, &[0; 6], &mut rng);
    match Coordinator::deliver(&mut server, registry_envelope(2, alien)) {
        Err(ProtocolError::He(dubhe_he::HeError::KeyMismatch)) => {}
        other => panic!("expected a key mismatch, got {other:?}"),
    }

    // A client id outside the cohort is refused by name.
    match Coordinator::deliver(&mut server, registry_envelope(99, good.clone())) {
        Err(ProtocolError::UnknownContributor {
            client: 99,
            try_index: None,
        }) => {}
        other => panic!("expected UnknownContributor, got {other:?}"),
    }

    // A dispatch smuggling a private key to the server is structurally
    // refused — the coordinator has no field that could even hold it.
    let smuggle = Envelope {
        from: Party::Agent,
        to: Party::Server,
        epoch: 0,
        msg: ProtocolMsg::PublicKeyDispatch {
            public_key: kp.public.clone(),
            private_key: Some(kp.private.clone()),
        },
    };
    match Coordinator::deliver(&mut server, smuggle) {
        Err(ProtocolError::PrivateKeyAtServer) => {}
        other => panic!("expected PrivateKeyAtServer, got {other:?}"),
    }

    // The fold survived the gauntlet untouched: client 0's registry is the
    // only contribution.
    assert_eq!(server.cohort_outcomes().len(), 0);
    for id in 1..4 {
        let v = EncryptedVector::encrypt_u64(&kp.public, &[0, 1, 0, 0, 0, 0], &mut rng);
        Coordinator::deliver(&mut server, registry_envelope(id, v)).unwrap();
    }
    let total = server.encrypted_total().expect("epoch complete");
    assert_eq!(
        total.decrypt_u64(&kp.private).unwrap(),
        vec![1, 3, 0, 0, 0, 0]
    );
}

#[test]
fn replayed_frames_are_rejected_at_every_stage() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(161);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let mut server = CoordinatorServer::with_public_key(kp.public.clone(), 2);

    let v = EncryptedVector::encrypt_u64(&kp.public, &[1, 0, 0], &mut rng);
    Coordinator::deliver(&mut server, registry_envelope(0, v.clone())).unwrap();

    // Replaying the same registry mid-epoch is a duplicate...
    match Coordinator::deliver(&mut server, registry_envelope(0, v.clone())) {
        Err(ProtocolError::DuplicateContribution {
            client: 0,
            try_index: None,
        }) => {}
        other => panic!("expected DuplicateContribution, got {other:?}"),
    }

    Coordinator::deliver(&mut server, registry_envelope(1, v.clone())).unwrap();
    // ...and replaying after the total was broadcast is a typed straggler
    // rejection.
    match Coordinator::deliver(&mut server, registry_envelope(1, v.clone())) {
        Err(ProtocolError::EpochComplete { client: 1 }) => {}
        other => panic!("expected EpochComplete, got {other:?}"),
    }

    // Same discipline for the multi-time tries.
    server.announce_try(0, &[0, 1]);
    let d = Envelope {
        from: Party::Client(0),
        to: Party::Server,
        epoch: 0,
        msg: ProtocolMsg::EncryptedDistribution {
            client: 0,
            try_index: 0,
            distribution: v.clone(),
        },
    };
    Coordinator::deliver(&mut server, d.clone()).unwrap();
    match Coordinator::deliver(&mut server, d) {
        Err(ProtocolError::DuplicateContribution {
            client: 0,
            try_index: Some(0),
        }) => {}
        other => panic!("expected a per-try duplicate rejection, got {other:?}"),
    }
    // A contribution to a try that was never announced is refused too.
    let unannounced = Envelope {
        from: Party::Client(0),
        to: Party::Server,
        epoch: 0,
        msg: ProtocolMsg::EncryptedDistribution {
            client: 0,
            try_index: 9,
            distribution: v,
        },
    };
    match Coordinator::deliver(&mut server, unannounced) {
        Err(ProtocolError::UnknownTry { try_index: 9 }) => {}
        other => panic!("expected UnknownTry, got {other:?}"),
    }
}

#[test]
fn stale_epoch_replays_are_refused_after_rotation() {
    let dists = clients(4, 171);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(172);
    let mut transport = InMemoryTransport::recording();
    let mut run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(4),
        &mut transport,
        &mut rng,
    )
    .unwrap();

    // Capture a real epoch-0 registry upload off the wire, then rotate.
    let replayed = transport
        .transcript()
        .iter()
        .find(|e| matches!(e.msg, ProtocolMsg::EncryptedRegistry { .. }))
        .cloned()
        .expect("a registry crossed the transport");
    for e in run.agent.rotate_epoch(4, &mut rng) {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .unwrap();

    // The replay is a stale frame now — even though it was perfectly valid
    // (and accepted) in the epoch it was recorded in.
    match Coordinator::deliver(&mut run.server, replayed) {
        Err(ProtocolError::StaleEpoch {
            received: 0,
            current: 1,
        }) => {}
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
}

fn packed_registry_envelope(client: usize, registry: PackedEncryptedVector) -> Envelope {
    Envelope {
        from: Party::Client(client),
        to: Party::Server,
        epoch: 0,
        msg: ProtocolMsg::PackedRegistry { client, registry },
    }
}

#[test]
fn mismatched_packer_metadata_is_refused_without_corrupting_the_fold() {
    // Client and coordinator disagree about the slot layout (or whether to
    // pack at all): every combination is a typed refusal, and the fold the
    // honest cohort builds afterwards is untouched.
    let mut rng = rand::rngs::StdRng::seed_from_u64(231);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let policy = PackingPolicy::new(32, KEY_BITS, 4).unwrap();
    let mut server = CoordinatorServer::with_public_key(kp.public.clone(), 4).with_packing(policy);

    // A client packing 16-bit lanes against the coordinator's 32-bit policy:
    // folding across layouts would corrupt lanes, so the packer check fires.
    let narrow = Packer::new(16, KEY_BITS);
    let mismatched =
        PackedEncryptedVector::encrypt(narrow, &kp.public, &[1, 0, 0, 0, 0, 0], &mut rng).unwrap();
    match Coordinator::deliver(&mut server, packed_registry_envelope(0, mismatched)) {
        Err(ProtocolError::He(dubhe_he::HeError::PackerMismatch { .. })) => {}
        other => panic!("expected PackerMismatch, got {other:?}"),
    }

    // An element-wise registry at a packed coordinator is a layout
    // disagreement by kind, before any ciphertext is touched.
    let elementwise = EncryptedVector::encrypt_u64(&kp.public, &[1, 0, 0, 0, 0, 0], &mut rng);
    match Coordinator::deliver(&mut server, registry_envelope(0, elementwise.clone())) {
        Err(ProtocolError::PackingDisagreement {
            role: "server",
            expected_packed: true,
            ..
        }) => {}
        other => panic!("expected PackingDisagreement, got {other:?}"),
    }

    // And a packed registry at a policy-less coordinator is the reverse.
    let mut plain_server = CoordinatorServer::with_public_key(kp.public.clone(), 4);
    let packed =
        PackedEncryptedVector::encrypt(policy.packer(), &kp.public, &[1, 0, 0, 0, 0, 0], &mut rng)
            .unwrap();
    match Coordinator::deliver(&mut plain_server, packed_registry_envelope(0, packed)) {
        Err(ProtocolError::PackingDisagreement {
            role: "server",
            expected_packed: false,
            ..
        }) => {}
        other => panic!("expected PackingDisagreement, got {other:?}"),
    }

    // The refused attempts burned nothing: the same slots accept the honest
    // uploads and the total decrypts to the full cohort.
    for id in 0..4 {
        let v = PackedEncryptedVector::encrypt(
            policy.packer(),
            &kp.public,
            &[0, 1, 0, 0, 0, 0],
            &mut rng,
        )
        .unwrap();
        Coordinator::deliver(&mut server, packed_registry_envelope(id, v)).unwrap();
    }
    let total = server.packed_encrypted_total().expect("epoch complete");
    assert_eq!(total.decrypt_u64(&kp.private), vec![0, 4, 0, 0, 0, 0]);
}

#[test]
fn packed_frames_replayed_across_epochs_are_stale_after_rotation() {
    // The packed twin of the stale-epoch gauntlet: a perfectly valid packed
    // registry recorded in epoch 0 is a typed stale-frame rejection once the
    // key rotates — packed payloads get the same replay protection as
    // element-wise ones because they share the epoch-stamped envelope.
    let dists = clients(4, 241);
    let config = DubheConfig::group1();
    let policy = PackingPolicy::new(32, KEY_BITS, 4).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(242);
    let mut transport = InMemoryTransport::recording();
    let mut run = run_registration_with_packing(
        &dists,
        &config,
        KEY_BITS,
        policy,
        CoordinatorServer::new(4).with_packing(policy),
        &mut transport,
        &mut rng,
    )
    .unwrap();

    let replayed = transport
        .transcript()
        .iter()
        .find(|e| matches!(e.msg, ProtocolMsg::PackedRegistry { .. }))
        .cloned()
        .expect("a packed registry crossed the transport");
    for e in run.agent.rotate_epoch(4, &mut rng) {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .unwrap();

    match Coordinator::deliver(&mut run.server, replayed) {
        Err(ProtocolError::StaleEpoch {
            received: 0,
            current: 1,
        }) => {}
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
}

#[test]
fn truncated_packed_dbh2_payloads_do_not_kill_the_listener() {
    // A DBH2 frame whose header-announced length is honest but whose packed
    // payload is internally cut short: the decoder hits the truncation as a
    // typed error, the connection ends, and the listener keeps serving.
    let mut rng = rand::rngs::StdRng::seed_from_u64(251);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let policy = PackingPolicy::new(32, KEY_BITS, 4).unwrap();
    let listener = CoordinatorListener::spawn(
        ShardedCoordinator::with_public_key(kp.public.clone(), 4, 2).with_packing(policy),
    )
    .unwrap();
    let addr = listener.addr();

    let registry =
        PackedEncryptedVector::encrypt(policy.packer(), &kp.public, &[1, 0, 0, 0, 0, 0], &mut rng)
            .unwrap();
    let mut frame = Vec::new();
    write_frame_with(
        &mut frame,
        &WireMsg::Envelope {
            envelope: packed_registry_envelope(0, registry),
        },
        CodecKind::Binary,
    )
    .unwrap();
    // Rebuild the frame with 10 payload bytes chopped off and the length
    // header telling the truth about it — the *encoding* is what's cut.
    let payload = &frame[8..frame.len() - 10];
    let mut hostile = frame[..4].to_vec();
    hostile.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    hostile.extend_from_slice(payload);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&hostile).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Best-effort typed-error reply, then hangup; either way the read ends.
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
    drop(stream);

    // The listener survived and a healthy packed session still works.
    let mut client = TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
    for id in 0..4 {
        let v = PackedEncryptedVector::encrypt(
            policy.packer(),
            &kp.public,
            &[0, 1, 0, 0, 0, 0],
            &mut rng,
        )
        .unwrap();
        client.deliver(packed_registry_envelope(id, v)).unwrap();
    }
    client.shutdown().unwrap();
    let coordinator = listener.shutdown().expect("listener state");
    let total = coordinator
        .packed_encrypted_total()
        .expect("epoch complete");
    assert_eq!(total.decrypt_u64(&kp.private), vec![0, 4, 0, 0, 0, 0]);
}

/// Drives the deferred-registry recovery exchange against whichever
/// listener answers at `addr`: a registry whose ciphertext block is corrupt
/// (but whose prefix is intact, so it takes the zero-copy deferred path)
/// earns a typed Error *without* losing the connection — the fold never saw
/// it and the client's slot is still free — and the same connection then
/// completes the epoch with healthy uploads.
fn corrupt_deferred_registry_then_recover(
    addr: std::net::SocketAddr,
    kp: &Keypair,
    rng: &mut rand::rngs::StdRng,
) {
    let width = (2 * KEY_BITS as usize).div_ceil(8);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let registry = EncryptedVector::encrypt_u64(&kp.public, &[1, 0, 2], rng);
    let mut frame = Vec::new();
    write_frame_with(
        &mut frame,
        &WireMsg::Envelope {
            envelope: registry_envelope(0, registry),
        },
        CodecKind::Binary,
    )
    .unwrap();
    // Blow the last residue past n² — prefix and framing stay honest.
    let len = frame.len();
    frame[len - width..].fill(0xFF);
    stream.write_all(&frame).unwrap();
    let (reply, _, _) = read_frame_negotiated(&mut stream).unwrap();
    assert!(
        matches!(reply, WireMsg::Error { .. }),
        "corrupt block must earn a typed error, got {reply:?}"
    );

    // Same connection, same client id: the slot was not burned, the epoch
    // completes, framing never desynchronised.
    for id in 0..2 {
        let v = EncryptedVector::encrypt_u64(&kp.public, &[id as u64 + 1, 0, 2], rng);
        let mut f = Vec::new();
        write_frame_with(
            &mut f,
            &WireMsg::Envelope {
                envelope: registry_envelope(id, v),
            },
            CodecKind::Binary,
        )
        .unwrap();
        stream.write_all(&f).unwrap();
        let (reply, _, _) = read_frame_negotiated(&mut stream).unwrap();
        assert!(
            matches!(reply, WireMsg::Batch { .. }),
            "healthy upload {id} after the refusal: got {reply:?}"
        );
    }
    let mut f = Vec::new();
    write_frame_with(&mut f, &WireMsg::Shutdown, CodecKind::Binary).unwrap();
    stream.write_all(&f).unwrap();
}

#[test]
fn corrupt_deferred_registries_keep_the_connection_on_both_listeners() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(271);
    let kp = Keypair::generate(KEY_BITS, &mut rng);

    let listener =
        CoordinatorListener::spawn(ShardedCoordinator::with_public_key(kp.public.clone(), 2, 2))
            .unwrap();
    corrupt_deferred_registry_then_recover(listener.addr(), &kp, &mut rng);
    let coordinator = listener.shutdown().expect("listener state");
    let total = coordinator.encrypted_total().expect("epoch complete");
    assert_eq!(total.decrypt_u64(&kp.private).unwrap(), vec![3, 0, 4]);

    let reactor =
        ReactorListener::spawn(ShardedCoordinator::with_public_key(kp.public.clone(), 2, 2))
            .unwrap();
    corrupt_deferred_registry_then_recover(reactor.addr(), &kp, &mut rng);
    let coordinator = reactor.shutdown().expect("reactor state");
    let total = coordinator.encrypted_total().expect("epoch complete");
    assert_eq!(total.decrypt_u64(&kp.private).unwrap(), vec![3, 0, 4]);
}

#[test]
fn garbage_bytes_do_not_kill_the_listener() {
    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let addr = listener.addr();

    // A flood of non-protocol bytes: wrong magic, then random junk. The
    // connection is hung up on (framing is unrecoverable), the listener is
    // not.
    for garbage in [&b"GET / HTTP/1.1\r\n\r\n"[..], &[0xFFu8; 64][..]] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(garbage).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Best-effort error reply then hangup; either way the read ends.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }

    // A truncated frame — valid magic, promised length never delivered —
    // ends the same way: typed refusal, connection closed, listener alive.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut partial = Vec::new();
    partial.extend_from_slice(b"DBH1");
    partial.extend_from_slice(&100u32.to_be_bytes());
    partial.extend_from_slice(b"short");
    stream.write_all(&partial).unwrap();
    drop(stream);

    // The listener survived the whole gauntlet: a well-formed session on a
    // fresh connection still works.
    let mut client = TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
    let out = client
        .deliver(Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try: 1,
                distance: 0.5,
            },
        })
        .unwrap();
    assert!(out.is_empty());
    client.shutdown().unwrap();
    let coordinator = listener.shutdown().expect("listener state");
    assert_eq!(coordinator.last_verdict(), Some((1, 0.5)));
}

#[test]
fn oversized_frames_are_refused_in_both_directions() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(181);
    let kp = Keypair::generate(KEY_BITS, &mut rng);
    let big = EncryptedVector::encrypt_u64(&kp.public, &vec![1u64; 64], &mut rng);

    // Server side: a listener capped at 1 KiB refuses a multi-kilobyte
    // registry with a typed error — relayed if the reply gets out before
    // the poisoned connection closes, a clean disconnect otherwise.
    let listener = CoordinatorListener::spawn_with(
        ShardedCoordinator::with_public_key(kp.public.clone(), 4, 1),
        ListenerConfig::default().with_max_frame_bytes(1024),
    )
    .unwrap();
    let mut client =
        TcpTransport::connect_with_timeout(listener.addr(), Duration::from_secs(5)).unwrap();
    let err = client
        .deliver(registry_envelope(0, big.clone()))
        .unwrap_err();
    match &err {
        ProtocolError::Remote { detail } => assert!(detail.contains("frame"), "{detail}"),
        ProtocolError::Disconnected
        | ProtocolError::Io { .. }
        | ProtocolError::TruncatedFrame { .. } => {}
        other => panic!("expected a typed oversize refusal, got {other:?}"),
    }
    drop(client);
    listener.shutdown();

    // Client side: a transport capped below its own payload refuses to send
    // at all — the frame never touches the socket.
    let listener = CoordinatorListener::spawn(ShardedCoordinator::new(4, 1)).unwrap();
    let mut tiny = TcpTransport::connect_with_config(
        listener.addr(),
        TcpConfig::default().with_max_frame_bytes(256),
    )
    .unwrap();
    match tiny.deliver(registry_envelope(0, big)) {
        Err(ProtocolError::FrameTooLarge { .. }) => {}
        other => panic!("expected FrameTooLarge before sending, got {other:?}"),
    }
    drop(tiny);
    listener.shutdown();
}

#[test]
fn fault_injected_duplicates_surface_as_typed_errors() {
    let dists = clients(6, 191);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(192);

    // Sends 0..=6 are the key dispatches (server + 6 clients); send 7 is
    // the first registry upload. Duplicating it is a wire-level replay.
    let mut transport =
        FaultyTransport::new(InMemoryTransport::new(), FaultPlan::new().duplicate_send(7));
    let err = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(6),
        &mut transport,
        &mut rng,
    )
    .unwrap_err();
    match err {
        SelectError::Protocol(ProtocolError::DuplicateContribution {
            try_index: None, ..
        }) => {}
        other => panic!("expected a replayed-registry rejection, got {other:?}"),
    }
    assert_eq!(transport.stats().duplicated, 1);
}

#[test]
fn fault_injected_truncation_surfaces_as_a_typed_error() {
    let dists = clients(6, 201);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(202);

    // Cut one ciphertext element out of the first registry upload: the
    // fold-shape check catches it by type, and the sender is identifiable.
    let mut transport =
        FaultyTransport::new(InMemoryTransport::new(), FaultPlan::new().truncate_send(7));
    let err = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(6),
        &mut transport,
        &mut rng,
    )
    .unwrap_err();
    match err {
        SelectError::Protocol(ProtocolError::He(dubhe_he::HeError::LengthMismatch { .. })) => {}
        other => panic!("expected a shape mismatch from the truncated registry, got {other:?}"),
    }
    assert_eq!(transport.stats().truncated, 1);
}

#[test]
fn fault_injected_drops_end_in_an_explicit_partial_close_never_a_hang() {
    let dists = clients(6, 211);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(212);

    // Drop the first registry upload on the wire: registration cannot
    // complete naturally, but the pump drains (no hang) and the explicit
    // close folds the 5 survivors.
    let mut transport =
        FaultyTransport::new(InMemoryTransport::new(), FaultPlan::new().drop_send(7));
    let mut run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(6),
        &mut transport,
        &mut rng,
    )
    .unwrap();
    assert_eq!(transport.stats().dropped, 1);
    assert!(
        run.clients.iter().all(|c| c.overall_registry().is_none()),
        "no broadcast can have happened with a registry missing"
    );

    for e in run.server.close_registration().unwrap() {
        transport.send(e);
    }
    pump(
        &mut transport,
        &mut run.agent,
        &mut run.clients,
        &mut run.server,
        &mut rng,
    )
    .unwrap();

    let outcome = *run.server.cohort_outcomes().last().expect("recorded");
    assert_eq!(outcome.expected, 6);
    assert_eq!(outcome.contributed, 5);
    assert!(outcome.partial);
    // The partial total is a real decision input: the agent decrypted it
    // and it sums to the 5 contributors.
    let overall = run.agent.overall_registry().expect("partial broadcast");
    assert_eq!(overall.iter().sum::<u64>(), 5);
}

#[test]
fn fault_injected_delays_reorder_but_never_lose_frames() {
    let dists = clients(6, 221);
    let config = DubheConfig::group1();
    let mut rng = rand::rngs::StdRng::seed_from_u64(222);

    // Hold the first registry back past its siblings: delivery order
    // changes, the homomorphic fold does not care, the epoch completes.
    let mut transport =
        FaultyTransport::new(InMemoryTransport::new(), FaultPlan::new().delay_send(7));
    let run = run_registration_with(
        &dists,
        &config,
        KEY_BITS,
        CoordinatorServer::new(6),
        &mut transport,
        &mut rng,
    )
    .unwrap();
    assert_eq!(transport.stats().delayed, 1);
    let overall = run.overall_registry();
    assert_eq!(overall.iter().sum::<u64>(), 6, "all 6 registries arrived");
    let outcome = *run.server.cohort_outcomes().last().expect("recorded");
    assert!(!outcome.partial, "a delayed frame is late, not lost");
    assert_eq!(outcome.contributed, 6);
}

// ---------------------------------------------------------------------------
// The same gauntlet aimed at the event-loop listener (`dubhe-net`). The
// reactor reassembles every connection's frames incrementally in one thread,
// so partial-frame abuse that a thread-per-connection design absorbs with a
// blocking read must here survive interleaving across connections.
// ---------------------------------------------------------------------------

fn verdict_envelope(best_try: usize) -> WireMsg {
    WireMsg::Envelope {
        envelope: Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try,
                distance: 0.5,
            },
        },
    }
}

#[test]
fn reactor_reassembles_interleaved_partial_frames_per_connection() {
    // Eight connections trickle their frames in 3-byte slices, round-robin,
    // in alternating codecs: every read the reactor makes lands mid-header
    // or mid-payload of a *different* connection than the last. Each frame
    // must still decode on its own connection, in its own codec.
    let reactor = ReactorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let n = 8;
    let codecs: Vec<CodecKind> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                CodecKind::Binary
            } else {
                CodecKind::Json
            }
        })
        .collect();
    let mut streams: Vec<TcpStream> = (0..n)
        .map(|_| {
            let s = TcpStream::connect(reactor.addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    let frames: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let mut frame = Vec::new();
            write_frame_with(&mut frame, &verdict_envelope(i), codecs[i]).unwrap();
            frame
        })
        .collect();

    let mut offsets = vec![0usize; n];
    for round in 0.. {
        let mut progressed = false;
        for lane in 0..n {
            // Rotate the send order every round so the arrival interleaving
            // varies too, not just the slicing.
            let i = (lane + round) % n;
            if offsets[i] < frames[i].len() {
                let end = (offsets[i] + 3).min(frames[i].len());
                streams[i].write_all(&frames[i][offsets[i]..end]).unwrap();
                offsets[i] = end;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    for (i, stream) in streams.iter_mut().enumerate() {
        let (reply, _, codec) = read_frame_negotiated(stream).unwrap();
        assert!(
            matches!(&reply, WireMsg::Batch { envelopes } if envelopes.is_empty()),
            "connection {i}: expected an empty batch, got {reply:?}"
        );
        assert_eq!(codec, codecs[i], "replies follow each connection's codec");
    }
    let stats = reactor.stats();
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(stats.truncated_frames, 0);
    assert_eq!(stats.frames_received, n);
    assert_eq!(stats.peak_connections, n);
    let state = reactor.shutdown().expect("coordinator state");
    assert_eq!(state.messages_received(), n);
}

#[test]
fn reactor_decodes_headers_split_at_every_boundary() {
    // The frame header is 8 bytes (4 magic + 4 length). Deliver it split at
    // every possible byte boundary, with a pause at the split so the reactor
    // definitely observes the partial header, then the payload in two
    // halves. No split position may confuse the reassembler.
    let reactor = ReactorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let mut frame = Vec::new();
    write_frame_with(&mut frame, &verdict_envelope(3), CodecKind::Binary).unwrap();
    for split in 1..8 {
        let mut stream = TcpStream::connect(reactor.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&frame[..split]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let mid = (frame.len() + split) / 2;
        stream.write_all(&frame[split..mid]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        stream.write_all(&frame[mid..]).unwrap();
        let (reply, _, _) = read_frame_negotiated(&mut stream).unwrap();
        assert!(
            matches!(&reply, WireMsg::Batch { envelopes } if envelopes.is_empty()),
            "split at {split}: got {reply:?}"
        );
    }
    let stats = reactor.stats();
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(stats.truncated_frames, 0);
    assert_eq!(stats.frames_received, 7);
    drop(reactor);
}

#[test]
fn reactor_survives_the_garbage_gauntlet_and_still_serves_tcp_transport() {
    // The mirror of `garbage_bytes_do_not_kill_the_listener`, aimed at the
    // reactor — and the healthy session afterwards runs over the stock
    // `TcpTransport`, pinning that the threaded connector and the event-loop
    // listener interoperate frame-for-frame.
    let reactor = ReactorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let addr = reactor.addr();

    for garbage in [&b"GET / HTTP/1.1\r\n\r\n"[..], &[0xFFu8; 64][..]] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(garbage).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Best-effort error reply then hangup; either way the read ends.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }

    // A truncated frame — valid magic, promised length never delivered.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut partial = Vec::new();
    partial.extend_from_slice(b"DBH1");
    partial.extend_from_slice(&100u32.to_be_bytes());
    partial.extend_from_slice(b"short");
    stream.write_all(&partial).unwrap();
    drop(stream);

    let mut client = TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
    let out = client
        .deliver(Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try: 1,
                distance: 0.5,
            },
        })
        .unwrap();
    assert!(out.is_empty());
    client.shutdown().unwrap();
    let coordinator = reactor.shutdown().expect("listener state");
    assert_eq!(coordinator.last_verdict(), Some((1, 0.5)));
}

// ---------------------------------------------------------------------------
// The authenticated-channel gauntlet: a man-in-the-middle who can read,
// flip, replay, or inject bytes on the wire — and a peer who simply refuses
// to authenticate — against BOTH listener shapes. Every attack is a typed
// refusal (sealed when a channel exists to seal with, plaintext before one
// does), never a panic, never a hang, and never a corrupted fold.
// `docs/THREAT_MODEL.md` maps each scenario to the claim it makes executable.
// ---------------------------------------------------------------------------

/// Connects and runs the client half of the handshake with a deterministic
/// per-seed identity, pinning the listener's public key.
fn sealed_session(
    addr: std::net::SocketAddr,
    seed: u64,
    pin: [u8; 32],
) -> (TcpStream, SecureChannel) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let identity = NodeIdentity::from_seed(seed);
    let channel = client_handshake(&mut stream, &identity, Some(pin), MAX_FRAME_BYTES).unwrap();
    (stream, channel)
}

/// Encodes `msg` as a Binary inner frame and returns the sealed wire bytes
/// (without sending them — tamper/replay tests want the raw frame).
fn sealed_bytes(channel: &mut SecureChannel, msg: &WireMsg) -> Vec<u8> {
    let mut inner = Vec::new();
    write_frame_with(&mut inner, msg, CodecKind::Binary).unwrap();
    channel.seal_frame(&inner)
}

/// Reads one sealed frame off the stream and opens it into a protocol
/// message.
fn read_sealed(stream: &mut TcpStream, channel: &mut SecureChannel) -> WireMsg {
    let (frame, _) = read_channel_frame(stream, MAX_FRAME_BYTES).unwrap();
    let ChannelFrame::Sealed(payload) = frame else {
        panic!("expected a sealed reply, got {frame:?}");
    };
    let inner = channel.open_payload(&payload).unwrap();
    read_frame(&mut inner.as_slice()).unwrap().0
}

/// The MITM tamper + replay script, against whichever Required listener
/// answers at `addr`. Returns nothing; every step asserts.
fn tamper_and_replay_gauntlet(addr: std::net::SocketAddr, pin: [u8; 32]) {
    // Tamper: a single flipped ciphertext bit voids the tag. The refusal
    // comes back *sealed* (the send direction outlives the poisoned
    // receive direction), then the connection ends.
    let (mut stream, mut channel) = sealed_session(addr, 31, pin);
    let good = sealed_bytes(&mut channel, &verdict_envelope(1));
    stream.write_all(&good).unwrap();
    assert!(
        matches!(
            read_sealed(&mut stream, &mut channel),
            WireMsg::Batch { .. }
        ),
        "the untampered frame establishes a healthy session first"
    );
    let mut evil = sealed_bytes(&mut channel, &verdict_envelope(2));
    evil[16] ^= 0x01; // first ciphertext byte: header(8) + nonce(8) = 16
    stream.write_all(&evil).unwrap();
    match read_sealed(&mut stream, &mut channel) {
        WireMsg::Error { detail } => {
            assert!(detail.contains("authentication failed"), "{detail}")
        }
        other => panic!("expected a sealed auth failure, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0, "then a hangup");

    // Replay: byte-identical sealed frames do not re-enter. The nonce
    // sequence makes the second copy a typed out-of-sequence rejection.
    let (mut stream, mut channel) = sealed_session(addr, 32, pin);
    let once = sealed_bytes(&mut channel, &verdict_envelope(3));
    stream.write_all(&once).unwrap();
    assert!(matches!(
        read_sealed(&mut stream, &mut channel),
        WireMsg::Batch { .. }
    ));
    stream.write_all(&once).unwrap();
    match read_sealed(&mut stream, &mut channel) {
        WireMsg::Error { detail } => assert!(detail.contains("out of sequence"), "{detail}"),
        other => panic!("expected a replay rejection, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
}

fn assert_tamper_replay_stats(stats: &ListenerStats, shape: &str) {
    assert_eq!(stats.handshakes_completed, 2, "{shape}");
    assert_eq!(stats.handshakes_failed, 0, "{shape}");
    assert_eq!(stats.aead_rejections, 2, "{shape}: one tamper + one replay");
    assert_eq!(stats.downgrades_refused, 0, "{shape}");
}

#[test]
fn mitm_tampering_and_replay_are_sealed_refusals_on_both_shapes() {
    let threaded = CoordinatorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ListenerConfig::default().with_channel(ChannelPolicy::Required),
    )
    .unwrap();
    let pin = threaded.public_identity().expect("identity resolved");
    tamper_and_replay_gauntlet(threaded.addr(), pin);
    assert_tamper_replay_stats(&threaded.stats(), "threaded");
    threaded.shutdown();

    let reactor = ReactorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ReactorConfig::default().with_channel(ChannelPolicy::Required),
    )
    .unwrap();
    let pin = reactor.public_identity().expect("identity resolved");
    tamper_and_replay_gauntlet(reactor.addr(), pin);
    assert_tamper_replay_stats(&reactor.stats(), "reactor");
    reactor.shutdown();
}

/// The session-hijack script: identity A claims a client slot, identity B
/// tries to speak for it, A resumes after a reconnect. Ends with a complete,
/// uncorrupted epoch.
fn hijack_gauntlet(
    addr: std::net::SocketAddr,
    pin: [u8; 32],
    kp: &Keypair,
    rng: &mut rand::rngs::StdRng,
) {
    // Identity A (seed 41) registers as client 0.
    let (mut alice, mut alice_ch) = sealed_session(addr, 41, pin);
    let upload = WireMsg::Envelope {
        envelope: registry_envelope(0, EncryptedVector::encrypt_u64(&kp.public, &[1, 0], rng)),
    };
    let frame = sealed_bytes(&mut alice_ch, &upload);
    alice.write_all(&frame).unwrap();
    assert!(matches!(
        read_sealed(&mut alice, &mut alice_ch),
        WireMsg::Batch { .. }
    ));

    // Identity B (seed 42) authenticates fine — but cannot speak as
    // client 0, which is bound to A's channel identity.
    let (mut mallory, mut mallory_ch) = sealed_session(addr, 42, pin);
    let forged = WireMsg::Envelope {
        envelope: registry_envelope(0, EncryptedVector::encrypt_u64(&kp.public, &[9, 9], rng)),
    };
    let frame = sealed_bytes(&mut mallory_ch, &forged);
    mallory.write_all(&frame).unwrap();
    match read_sealed(&mut mallory, &mut mallory_ch) {
        WireMsg::Error { detail } => {
            assert!(detail.contains("session hijack refused"), "{detail}")
        }
        other => panic!("expected a hijack refusal, got {other:?}"),
    }

    // A reconnects — fresh TCP connection, fresh handshake, same long-term
    // identity — and still owns the binding: the re-sent registry reaches
    // the coordinator (which refuses it as a duplicate, proving the channel
    // layer let it through) rather than the hijack check.
    drop(alice);
    let (mut alice2, mut alice2_ch) = sealed_session(addr, 41, pin);
    let frame = sealed_bytes(&mut alice2_ch, &upload);
    alice2.write_all(&frame).unwrap();
    match read_sealed(&mut alice2, &mut alice2_ch) {
        WireMsg::Error { detail } => {
            assert!(
                detail.contains("already uploaded") && !detail.contains("hijack"),
                "resume must pass the binding and hit the idempotency layer: {detail}"
            );
        }
        other => panic!("expected the coordinator's duplicate refusal, got {other:?}"),
    }

    // Mallory is free to be client 1 under their own name; the epoch
    // completes and the fold holds exactly A's and Mallory's vectors.
    let honest = WireMsg::Envelope {
        envelope: registry_envelope(1, EncryptedVector::encrypt_u64(&kp.public, &[0, 2], rng)),
    };
    let frame = sealed_bytes(&mut mallory_ch, &honest);
    mallory.write_all(&frame).unwrap();
    assert!(matches!(
        read_sealed(&mut mallory, &mut mallory_ch),
        WireMsg::Batch { .. }
    ));
}

#[test]
fn session_hijack_is_refused_and_resume_survives_on_both_shapes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(411);
    let kp = Keypair::generate(KEY_BITS, &mut rng);

    let threaded = CoordinatorListener::spawn_with(
        ShardedCoordinator::with_public_key(kp.public.clone(), 2, 1),
        ListenerConfig::default().with_channel(ChannelPolicy::Required),
    )
    .unwrap();
    let pin = threaded.public_identity().expect("identity resolved");
    hijack_gauntlet(threaded.addr(), pin, &kp, &mut rng);
    let coordinator = threaded.shutdown().expect("listener state");
    let total = coordinator.encrypted_total().expect("epoch complete");
    assert_eq!(total.decrypt_u64(&kp.private).unwrap(), vec![1, 2]);

    let reactor = ReactorListener::spawn_with(
        ShardedCoordinator::with_public_key(kp.public.clone(), 2, 1),
        ReactorConfig::default().with_channel(ChannelPolicy::Required),
    )
    .unwrap();
    let pin = reactor.public_identity().expect("identity resolved");
    hijack_gauntlet(reactor.addr(), pin, &kp, &mut rng);
    let coordinator = reactor.shutdown().expect("reactor state");
    let total = coordinator.encrypted_total().expect("epoch complete");
    assert_eq!(total.decrypt_u64(&kp.private).unwrap(), vec![1, 2]);
}

/// Downgrade attempts at every phase of a Required connection, plus the
/// codec-confusion inverse (sealed frames at a plaintext listener).
fn downgrade_gauntlet(addr: std::net::SocketAddr, pin: [u8; 32]) {
    // Before the handshake: a plaintext protocol frame is refused in the
    // codec it arrived in, then the connection ends.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame_with(&mut stream, &verdict_envelope(0), CodecKind::Binary).unwrap();
    let (reply, _, codec) = read_frame_negotiated(&mut stream).unwrap();
    match reply {
        WireMsg::Error { detail } => {
            assert!(detail.contains("authenticated channel"), "{detail}")
        }
        other => panic!("expected a downgrade refusal, got {other:?}"),
    }
    assert_eq!(codec, CodecKind::Binary, "refused in the attempted codec");
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);

    // After establishment: falling back to plaintext mid-session is the
    // same refusal, now sealed (the peer proved it holds the session keys,
    // so the error travels under them).
    let (mut stream, mut channel) = sealed_session(addr, 51, pin);
    let good = sealed_bytes(&mut channel, &verdict_envelope(1));
    stream.write_all(&good).unwrap();
    assert!(matches!(
        read_sealed(&mut stream, &mut channel),
        WireMsg::Batch { .. }
    ));
    write_frame_with(&mut stream, &verdict_envelope(2), CodecKind::Json).unwrap();
    match read_sealed(&mut stream, &mut channel) {
        WireMsg::Error { detail } => {
            assert!(detail.contains("authenticated channel"), "{detail}")
        }
        other => panic!("expected a sealed downgrade refusal, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
}

#[test]
fn downgrade_attempts_are_refused_at_every_phase_on_both_shapes() {
    let threaded = CoordinatorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ListenerConfig::default().with_channel(ChannelPolicy::Required),
    )
    .unwrap();
    let pin = threaded.public_identity().expect("identity resolved");
    downgrade_gauntlet(threaded.addr(), pin);
    let stats = threaded.stats();
    assert_eq!(
        stats.downgrades_refused, 2,
        "threaded: pre + post handshake"
    );
    assert_eq!(stats.handshakes_completed, 1, "threaded");
    threaded.shutdown();

    let reactor = ReactorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ReactorConfig::default().with_channel(ChannelPolicy::Required),
    )
    .unwrap();
    let pin = reactor.public_identity().expect("identity resolved");
    downgrade_gauntlet(reactor.addr(), pin);
    let stats = reactor.stats();
    assert_eq!(stats.downgrades_refused, 2, "reactor: pre + post handshake");
    assert_eq!(stats.handshakes_completed, 1, "reactor");
    reactor.shutdown();
}

#[test]
fn sealed_frames_at_a_plaintext_listener_are_codec_confusion_not_a_crash() {
    // The inverse direction: DBHS/DBHE frames arriving at listeners that
    // never opted into the channel are unknown magics — a typed decode
    // refusal and a hangup, and the listener keeps serving plaintext.
    let mut probe = Vec::new();
    probe.extend_from_slice(b"DBHE");
    probe.extend_from_slice(&32u32.to_be_bytes());
    probe.extend_from_slice(&[0u8; 32]);

    let threaded = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    let reactor = ReactorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
    for addr in [threaded.addr(), reactor.addr()] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&probe).unwrap();
        // Best-effort typed-error reply, then hangup; either way the read
        // ends and the next (plaintext) session works.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);

        let mut client = TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
        let out = client
            .deliver(Envelope {
                from: Party::Agent,
                to: Party::Server,
                epoch: 0,
                msg: ProtocolMsg::TryVerdict {
                    best_try: 2,
                    distance: 0.25,
                },
            })
            .unwrap();
        assert!(out.is_empty());
        client.shutdown().unwrap();
    }
    assert_eq!(threaded.stats().decode_errors, 1);
    assert_eq!(reactor.stats().decode_errors, 1);
    assert_eq!(threaded.shutdown().unwrap().last_verdict(), Some((2, 0.25)));
    assert_eq!(reactor.shutdown().unwrap().last_verdict(), Some((2, 0.25)));
}

#[test]
fn handshake_slow_loris_is_cut_by_the_threaded_prelude() {
    // A peer that opens the handshake and stalls — or never sends a byte —
    // cannot hold a pre-authentication slot open past the read timeout.
    // (The reactor twin lives in dubhe-net's test suite.)
    let listener = CoordinatorListener::spawn_with(
        ShardedCoordinator::new(0, 1),
        ListenerConfig::default()
            .with_channel(ChannelPolicy::Required)
            .with_read_timeout(Duration::from_millis(300)),
    )
    .unwrap();
    let pin = listener.public_identity().expect("identity resolved");

    let mut loris = TcpStream::connect(listener.addr()).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris.write_all(b"DBHS").unwrap(); // a valid opening, then silence
    let mut sink = Vec::new();
    let _ = loris.read_to_end(&mut sink); // cut at the timeout, not held

    let silent = TcpStream::connect(listener.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(600));
    drop(silent);

    // Slots freed: an honest client authenticates and is served.
    let (mut stream, mut channel) = sealed_session(listener.addr(), 61, pin);
    let frame = sealed_bytes(&mut channel, &verdict_envelope(4));
    stream.write_all(&frame).unwrap();
    assert!(matches!(
        read_sealed(&mut stream, &mut channel),
        WireMsg::Batch { .. }
    ));

    let stats = listener.stats();
    assert_eq!(stats.handshakes_failed, 2, "loris + silent");
    assert_eq!(stats.handshakes_completed, 1);
    listener.shutdown();
}
