//! # dubhe-select — the Dubhe client-selection system
//!
//! This crate implements the contribution of *"Dubhe: Towards Data
//! Unbiasedness with Homomorphic Encryption in Federated Learning Client
//! Selection"* (ICPP '21): a pluggable, privacy-preserving client-selection
//! method that closes the gap between the per-round *population distribution*
//! `p_o` (the label distribution of the data that actually trains) and the
//! uniform distribution `p_u`, which §4.2 of the paper shows bounds the weight
//! divergence of FedAvg under skewed data.
//!
//! The pieces, in protocol order:
//!
//! * [`codebook`] — the registry layout: a bijection between sets of
//!   dominating classes and one-hot positions, `l = Σ_{i∈G} C-choose-i`.
//! * [`registry`] — Algorithm 1: each client maps its label distribution to a
//!   category and a one-hot registry vector.
//! * [`protocol`] — the role-separated protocol: typed wire messages, the
//!   agent/client/server actors, and the metered transport they exchange
//!   over. What the server can see is a property of its type.
//! * [`secure`] — the historical free-function entry points for the
//!   encrypted exchanges, now thin drivers over the actors.
//! * [`probability`] — Eq. (6)–(8): clients compute their own participation
//!   probability from the decrypted overall registry.
//! * [`selector`] / [`greedy`] / [`dubhe`] — the three selection policies the
//!   paper compares (Random baseline, Greedy "optimal" bound, Dubhe).
//! * [`multi_time`] — §5.3 H-time tentative selection and the `EMD*` metric of
//!   Table 2.
//! * [`param_search`] — §5.3.2 grid search for the registration thresholds σᵢ.
//!
//! ## Example: selecting a balanced round on skewed data
//!
//! ```
//! use dubhe_data::federated::{DatasetFamily, FederatedSpec};
//! use dubhe_select::{DubheConfig, DubheSelector};
//! use dubhe_select::selector::{population_unbiasedness, ClientSelector, RandomSelector};
//! use rand::SeedableRng;
//!
//! // A small skewed federation: 200 clients, global imbalance 10x, high EMD.
//! let spec = FederatedSpec {
//!     family: DatasetFamily::MnistLike,
//!     rho: 10.0,
//!     emd_avg: 1.5,
//!     clients: 200,
//!     samples_per_client: 100,
//!     test_samples_per_class: 1,
//!     seed: 7,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let clients = spec.build_partition(&mut rng).client_distributions();
//!
//! let mut dubhe = DubheSelector::new(&clients, DubheConfig::group1());
//! let mut random = RandomSelector::new(clients.len(), 20);
//! let dubhe_gap = population_unbiasedness(&dubhe.select(&mut rng), &clients).unwrap();
//! let random_gap = population_unbiasedness(&random.select(&mut rng), &clients).unwrap();
//! // Dubhe's participated data is much closer to uniform.
//! assert!(dubhe_gap < random_gap);
//! ```
//!
//! ## Example: a sharded coordinator
//!
//! The drivers are generic over the [`Coordinator`] slot. A
//! [`ShardedCoordinator`] partitions registry positions across N
//! rayon-parallel folds and merges a total that is bit-identical to the
//! single server's:
//!
//! ```
//! use dubhe_data::federated::{DatasetFamily, FederatedSpec};
//! use dubhe_select::protocol::{run_registration_with, InMemoryTransport, ShardedCoordinator};
//! use dubhe_select::DubheConfig;
//! use rand::SeedableRng;
//!
//! let spec = FederatedSpec {
//!     family: DatasetFamily::MnistLike,
//!     rho: 10.0,
//!     emd_avg: 1.5,
//!     clients: 24,
//!     samples_per_client: 50,
//!     test_samples_per_class: 1,
//!     seed: 5,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let dists = spec.build_partition(&mut rng).client_distributions();
//!
//! let mut transport = InMemoryTransport::new();
//! let run = run_registration_with(
//!     &dists,
//!     &DubheConfig::group1(),
//!     dubhe_he::TEST_KEY_BITS,
//!     ShardedCoordinator::new(24, 4), // registry positions split across 4 folds
//!     &mut transport,
//!     &mut rng,
//! )
//! .unwrap();
//! // 24 clients registered; the shards' merged total decrypts to their sum.
//! assert_eq!(run.overall_registry().iter().sum::<u64>(), 24);
//! ```
//!
//! ## Example: the identical exchange over loopback TCP
//!
//! [`TcpTransport`] connects the same driver slot to a
//! [`CoordinatorListener`] across real sockets — length-prefixed frames,
//! a mutex-free multi-threaded listener, typed errors on every failure
//! mode:
//!
//! ```
//! use dubhe_data::federated::{DatasetFamily, FederatedSpec};
//! use dubhe_select::protocol::{
//!     run_registration_with, CoordinatorListener, InMemoryTransport, ShardedCoordinator,
//!     TcpTransport,
//! };
//! use dubhe_select::DubheConfig;
//! use rand::SeedableRng;
//!
//! let spec = FederatedSpec {
//!     family: DatasetFamily::MnistLike,
//!     rho: 10.0,
//!     emd_avg: 1.5,
//!     clients: 24,
//!     samples_per_client: 50,
//!     test_samples_per_class: 1,
//!     seed: 5,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let dists = spec.build_partition(&mut rng).client_distributions();
//!
//! // Server side: a sharded coordinator behind an ephemeral loopback port.
//! let listener = CoordinatorListener::spawn(ShardedCoordinator::new(24, 4)).unwrap();
//! // Client side: the connector fills the same coordinator slot.
//! let endpoint = TcpTransport::connect(listener.addr()).unwrap();
//!
//! let mut transport = InMemoryTransport::new();
//! let run = run_registration_with(
//!     &dists,
//!     &DubheConfig::group1(),
//!     dubhe_he::TEST_KEY_BITS,
//!     endpoint,
//!     &mut transport,
//!     &mut rng,
//! )
//! .unwrap();
//! assert_eq!(run.overall_registry().iter().sum::<u64>(), 24);
//! // Real frames crossed the socket.
//! assert!(run.server.wire_stats().total_bytes() > 0);
//! run.server.shutdown().unwrap();
//! ```

pub mod codebook;
pub mod config;
pub mod dubhe;
pub mod error;
pub mod greedy;
pub mod multi_time;
pub mod param_search;
pub mod probability;
pub mod protocol;
pub mod registry;
pub mod secure;
pub mod selector;

pub use codebook::{binomial, Category, RegistryLayout};
pub use config::DubheConfig;
pub use dubhe::DubheSelector;
pub use error::{ProtocolError, SelectError};
pub use greedy::GreedySelector;
pub use multi_time::{
    multi_time_select, secure_multi_time_select, MultiTimeOutcome, SecureMultiTimeOutcome,
};
pub use param_search::{parameter_search, SearchGrid, SearchOutcome};
pub use probability::participation_probability;
pub use protocol::{
    AgentNode, Coordinator, CoordinatorListener, CoordinatorServer, InMemoryTransport, Party,
    ProtocolMsg, SelectClientNode, ShardedCoordinator, TcpTransport, Transport, TransportStats,
};
pub use registry::{register, register_all, register_all_encrypted, Registration};
pub use secure::{
    secure_evaluate_try, secure_registration, SecureRegistrationEpoch, SecureTryOutcome, ServerView,
};
pub use selector::{
    population_distribution, population_unbiasedness, selection_stats, ClientId, ClientSelector,
    RandomSelector, SelectionStats,
};

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use rand::SeedableRng;

    /// The headline comparison of the paper, in miniature: on skewed data the
    /// ordering of data unbiasedness is Greedy <= Dubhe < Random.
    #[test]
    fn selector_ordering_matches_the_paper() {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: 500,
            samples_per_client: 100,
            test_samples_per_class: 1,
            seed: 123,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let clients = spec.build_partition(&mut rng).client_distributions();

        let reps = 20;
        let mut random = RandomSelector::new(clients.len(), 20);
        let mut dubhe = DubheSelector::new(&clients, DubheConfig::group1());
        let mut greedy = GreedySelector::new(&clients, 20);

        let random_stats = selection_stats(&mut random, &clients, reps, &mut rng).unwrap();
        let dubhe_stats = selection_stats(&mut dubhe, &clients, reps, &mut rng).unwrap();
        let greedy_stats = selection_stats(&mut greedy, &clients, reps, &mut rng).unwrap();

        assert!(
            greedy_stats.mean <= dubhe_stats.mean + 0.05,
            "greedy ({:.3}) should be at least as balanced as Dubhe ({:.3})",
            greedy_stats.mean,
            dubhe_stats.mean
        );
        assert!(
            dubhe_stats.mean < random_stats.mean,
            "Dubhe ({:.3}) should beat random ({:.3})",
            dubhe_stats.mean,
            random_stats.mean
        );
    }
}
