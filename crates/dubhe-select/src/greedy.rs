//! The greedy selection baseline (Astraea-style), the paper's "optimal bound".
//!
//! The server is assumed to know every client's label distribution in
//! plaintext — exactly the privacy leak Dubhe exists to avoid — and greedily
//! builds the participant set: starting from one random client, it repeatedly
//! adds the client that minimises the KL divergence between the aggregated
//! label distribution of the selected set and the uniform distribution. The
//! time complexity is O(N·K), which is why the paper measures 0.13× (N = 1000)
//! to 1.69× (N = 8962) extra selection time relative to the whole round.

use dubhe_data::{kl_divergence, ClassDistribution};
use rand::Rng;

use crate::selector::{ClientId, ClientSelector};

/// Greedy KL-minimising selector with plaintext knowledge of all distributions.
#[derive(Debug, Clone)]
pub struct GreedySelector {
    /// Per-client label counts (plaintext — deliberately so, this is the
    /// non-private baseline).
    client_counts: Vec<Vec<u64>>,
    classes: usize,
    k: usize,
}

impl GreedySelector {
    /// Creates a greedy selector from every client's label distribution.
    pub fn new(client_distributions: &[ClassDistribution], k: usize) -> Self {
        assert!(!client_distributions.is_empty(), "need at least one client");
        assert!(
            k > 0 && k <= client_distributions.len(),
            "K must be in [1, N]"
        );
        let classes = client_distributions[0].classes();
        assert!(
            client_distributions.iter().all(|d| d.classes() == classes),
            "all clients must share the same class space"
        );
        GreedySelector {
            client_counts: client_distributions
                .iter()
                .map(|d| d.counts().to_vec())
                .collect(),
            classes,
            k,
        }
    }

    fn kl_of_counts(&self, counts: &[u64]) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::INFINITY;
        }
        let p: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        let u = vec![1.0 / self.classes as f64; self.classes];
        kl_divergence(&p, &u)
    }
}

impl ClientSelector for GreedySelector {
    fn select(&mut self, rng: &mut dyn rand::RngCore) -> Vec<ClientId> {
        let n = self.client_counts.len();
        let mut selected: Vec<ClientId> = Vec::with_capacity(self.k);
        let mut in_set = vec![false; n];

        // Seed with one random client (the paper: "first randomly selects a client").
        let first = rng.gen_range(0..n);
        selected.push(first);
        in_set[first] = true;
        let mut aggregate: Vec<u64> = self.client_counts[first].clone();

        while selected.len() < self.k {
            let mut best: Option<(ClientId, f64)> = None;
            for (candidate, &already_in) in in_set.iter().enumerate().take(n) {
                if already_in {
                    continue;
                }
                // KL of the aggregate if this candidate joined.
                let merged: Vec<u64> = aggregate
                    .iter()
                    .zip(&self.client_counts[candidate])
                    .map(|(a, b)| a + b)
                    .collect();
                let kl = self.kl_of_counts(&merged);
                let better = match best {
                    None => true,
                    Some((_, best_kl)) => kl < best_kl,
                };
                if better {
                    best = Some((candidate, kl));
                }
            }
            let (winner, _) = best.expect("fewer clients than K is rejected at construction");
            in_set[winner] = true;
            for (a, b) in aggregate.iter_mut().zip(&self.client_counts[winner]) {
                *a += b;
            }
            selected.push(winner);
        }
        selected.sort_unstable();
        selected
    }

    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn population(&self) -> usize {
        self.client_counts.len()
    }

    fn target_participants(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{population_unbiasedness, RandomSelector};
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use rand::SeedableRng;

    #[test]
    fn greedy_balances_single_class_clients_perfectly() {
        // 20 clients, each holding exactly one of 4 classes (5 clients per class).
        let dists: Vec<ClassDistribution> = (0..20)
            .map(|i| {
                let mut counts = vec![0u64; 4];
                counts[i % 4] = 10;
                ClassDistribution::from_counts(counts)
            })
            .collect();
        let mut sel = GreedySelector::new(&dists, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = sel.select(&mut rng);
        assert_eq!(s.len(), 4);
        // One client of each class => perfectly uniform population distribution.
        assert!(population_unbiasedness(&s, &dists).unwrap() < 1e-12);
    }

    #[test]
    fn greedy_beats_random_on_skewed_data() {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: 200,
            samples_per_client: 100,
            test_samples_per_class: 1,
            seed: 5,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let fp = spec.build_partition(&mut rng);
        let dists = fp.client_distributions();

        let mut greedy = GreedySelector::new(&dists, 20);
        let mut random = RandomSelector::new(200, 20);
        let mut greedy_sum = 0.0;
        let mut random_sum = 0.0;
        for _ in 0..10 {
            greedy_sum += population_unbiasedness(&greedy.select(&mut rng), &dists).unwrap();
            random_sum += population_unbiasedness(&random.select(&mut rng), &dists).unwrap();
        }
        assert!(
            greedy_sum < random_sum * 0.6,
            "greedy ({greedy_sum}) should be much more balanced than random ({random_sum})"
        );
    }

    #[test]
    fn greedy_returns_distinct_sorted_clients() {
        let dists: Vec<ClassDistribution> = (0..30)
            .map(|_| ClassDistribution::from_counts(vec![5, 5, 5]))
            .collect();
        let mut sel = GreedySelector::new(&dists, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = sel.select(&mut rng);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sel.name(), "Greedy");
    }

    #[test]
    #[should_panic(expected = "K must be in")]
    fn k_larger_than_population_panics() {
        let dists = vec![ClassDistribution::from_counts(vec![1, 1])];
        let _ = GreedySelector::new(&dists, 2);
    }

    #[test]
    #[should_panic(expected = "same class space")]
    fn inconsistent_class_spaces_panic() {
        let dists = vec![
            ClassDistribution::from_counts(vec![1, 1]),
            ClassDistribution::from_counts(vec![1, 1, 1]),
        ];
        let _ = GreedySelector::new(&dists, 1);
    }
}
