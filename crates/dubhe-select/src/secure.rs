//! The secure protocol entry points: compatibility wrappers over the
//! role-separated actors in [`crate::protocol`].
//!
//! Per registration epoch (Fig. 4):
//!
//! 1. a randomly selected *agent* client generates a Paillier keypair and
//!    dispatches it to all clients; the server receives only the public key;
//! 2. every client fills its registry (Algorithm 1), encrypts it element-wise
//!    and sends the ciphertext vector to the server;
//! 3. the server folds the arriving encrypted registries into one running
//!    homomorphic sum and broadcasts the encrypted total;
//! 4. every client decrypts the total with the shared secret key and computes
//!    its own participation probability (Eq. 6).
//!
//! The multi-time selection exchanges encrypted label distributions the same
//! way: tentatively selected clients send `Enc(p_l)`, the server adds them and
//! forwards `Enc(Σ p_l)` to the agent, which decrypts and evaluates
//! `‖p_o,h − p_u‖₁` — the server never sees a plaintext distribution.
//!
//! The functions here construct the actors, run the drivers over an
//! [`InMemoryTransport`] and flatten the result into the historical structs.
//! They consume their RNG in exactly the order the pre-actor implementation
//! did, so results (ciphertexts included) are bit-identical on the same seed
//! — the equivalence property tests pin this.

use dubhe_data::ClassDistribution;
use dubhe_he::{
    ciphertext_size_bytes, transport::plaintext_vector_bytes, EncryptedVector, Keypair, PrivateKey,
    PublicKey,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::codebook::RegistryLayout;
use crate::config::DubheConfig;
use crate::error::SelectError;
use crate::protocol::{
    run_registration, run_try, AgentNode, CoordinatorServer, InMemoryTransport, SelectClientNode,
};
use crate::registry::Registration;

/// What the honest-but-curious server observes during one registration epoch.
///
/// The struct deliberately stores *only* ciphertext material and sizes; there
/// is no way to construct it with plaintext registries. Since the actor
/// redesign the server folds arriving registries into the single running
/// [`encrypted_total`](Self::encrypted_total), so its memory footprint is
/// `O(registry_len)` instead of `O(clients × registry_len)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerView {
    /// The epoch public key (the server may legitimately hold this).
    pub public_key: PublicKey,
    /// The running homomorphic sum of every registry received — after the
    /// last client uploads, the encrypted overall registry it broadcasts.
    pub encrypted_total: Option<EncryptedVector>,
    /// Ciphertext payload bytes received from clients (canonical wire width).
    pub bytes_received: usize,
    /// Number of client → server registry messages observed.
    pub messages_received: usize,
}

/// The result of a full secure registration epoch.
#[derive(Debug, Clone)]
pub struct SecureRegistrationEpoch {
    /// Per-client registrations (each client knows its own, the server none).
    pub registrations: Vec<Registration>,
    /// The overall registry as decrypted by the clients.
    pub overall_registry: Vec<u64>,
    /// Everything the server saw.
    pub server_view: ServerView,
    /// Index of the client acting as the key-dispatching agent.
    pub agent: usize,
    /// Plaintext size of one registry in bytes (overhead reporting).
    pub registry_plaintext_bytes: usize,
    /// Ciphertext size of one registry in bytes (overhead reporting).
    pub registry_ciphertext_bytes: usize,
}

/// Runs one secure registration epoch end-to-end through the actor API.
///
/// `key_bits` is configurable so tests can run with small keys while the
/// overhead experiments use the paper's 2048-bit setting.
pub fn secure_registration<R: Rng + ?Sized>(
    client_distributions: &[ClassDistribution],
    config: &DubheConfig,
    key_bits: u64,
    rng: &mut R,
) -> Result<SecureRegistrationEpoch, SelectError> {
    let layout = config.validate();
    let mut transport = InMemoryTransport::new();
    let run = run_registration(client_distributions, config, key_bits, &mut transport, rng)?;

    let stats = transport.stats();
    let public_key = run.agent.public_key().clone();
    let overall_registry = run.overall_registry().to_vec();
    debug_assert_eq!(
        run.agent.overall_registry(),
        Some(overall_registry.as_slice()),
        "agent and clients must decrypt the same total"
    );

    Ok(SecureRegistrationEpoch {
        registrations: run.registrations(),
        overall_registry,
        server_view: ServerView {
            encrypted_total: run.server.encrypted_total(),
            public_key: public_key.clone(),
            bytes_received: stats.uplink_registry_ciphertext_bytes,
            messages_received: stats.registries.messages,
        },
        agent: run.agent_id,
        registry_plaintext_bytes: plaintext_vector_bytes(layout.len()),
        registry_ciphertext_bytes: layout.len() * ciphertext_size_bytes(&public_key),
    })
}

/// The agent-side view of one multi-time tentative try performed securely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecureTryOutcome {
    /// The decrypted population distribution `p_o,h` of this try.
    pub population: Vec<f64>,
    /// `‖p_o,h − p_u‖₁`.
    pub distance_to_uniform: f64,
    /// Ciphertext bytes that crossed the network for this try (canonical
    /// wire width).
    pub ciphertext_bytes: usize,
    /// Number of encrypted distribution messages (one per selected client).
    pub messages: usize,
}

/// Builds the ephemeral actor session used when the caller already holds the
/// epoch keys (the historical `secure_*` signatures).
pub(crate) fn keyed_session(
    client_distributions: &[ClassDistribution],
    public_key: &PublicKey,
    private_key: &PrivateKey,
) -> Result<(AgentNode, Vec<SelectClientNode>, CoordinatorServer), SelectError> {
    let classes = client_distributions
        .first()
        .ok_or(SelectError::NoClients)?
        .classes();
    let agent = AgentNode::from_keypair(
        Keypair {
            public: public_key.clone(),
            private: private_key.clone(),
        },
        classes,
    );
    let mut clients: Vec<SelectClientNode> = client_distributions
        .iter()
        .enumerate()
        .map(|(id, d)| SelectClientNode::without_registration(id, d.clone()))
        .collect();
    for c in &mut clients {
        c.install_keys(public_key.clone(), private_key.clone());
    }
    let server = CoordinatorServer::with_public_key(public_key.clone(), 0);
    Ok((agent, clients, server))
}

/// Securely evaluates one tentative client set: the selected clients encrypt
/// their scaled label distributions, the server adds the ciphertexts, the
/// agent decrypts the sum and measures the distance to uniform.
///
/// Returns [`SelectError::EmptySelection`] for an empty tentative selection
/// instead of aborting, so a misconfigured selector cannot kill a long run.
pub fn secure_evaluate_try<R: Rng + ?Sized>(
    selected: &[usize],
    client_distributions: &[ClassDistribution],
    public_key: &PublicKey,
    private_key: &PrivateKey,
    rng: &mut R,
) -> Result<SecureTryOutcome, SelectError> {
    let (mut agent, mut clients, mut server) =
        keyed_session(client_distributions, public_key, private_key)?;
    agent.expect_tries(1);
    let mut transport = InMemoryTransport::new();
    run_try(
        0,
        selected,
        &mut agent,
        &mut clients,
        &mut server,
        &mut transport,
        rng,
    )?;
    Ok(agent
        .try_outcomes()
        .into_iter()
        .next()
        .expect("the single try completed"))
}

/// Returns the registry layout used by `config` — re-exported here so callers
/// of the secure API need only this module.
pub fn layout_of(config: &DubheConfig) -> RegistryLayout {
    config.validate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probability::participation_probability;
    use crate::protocol::{Party, ProtocolMsg};
    use crate::registry::register_all;
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use rand::SeedableRng;

    const TEST_KEY_BITS: u64 = 256;

    fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: n,
            samples_per_client: 100,
            test_samples_per_class: 1,
            seed,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        spec.build_partition(&mut rng).client_distributions()
    }

    #[test]
    fn secure_registration_matches_plaintext_aggregation() {
        let dists = clients(30, 1);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng).unwrap();

        // The decrypted overall registry equals the plaintext sum.
        let layout = config.validate();
        let (_, plaintext_overall) = register_all(&dists, &layout, &config.effective_thresholds());
        assert_eq!(epoch.overall_registry, plaintext_overall);
        assert_eq!(epoch.registrations.len(), 30);
        assert!(epoch.agent < 30);
    }

    #[test]
    fn server_only_sees_ciphertexts() {
        let dists = clients(10, 3);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut transport = InMemoryTransport::recording();
        let run =
            run_registration(&dists, &config, TEST_KEY_BITS, &mut transport, &mut rng).unwrap();

        // Audit the full transcript: every message delivered to the server is
        // either the public-key-only dispatch or a ciphertext payload.
        let mut registries_seen = 0usize;
        for env in transport.transcript() {
            if env.to != Party::Server {
                continue;
            }
            match &env.msg {
                ProtocolMsg::PublicKeyDispatch { private_key, .. } => {
                    assert!(
                        private_key.is_none(),
                        "server must never get the secret key"
                    );
                }
                ProtocolMsg::EncryptedRegistry { registry, .. } => {
                    registries_seen += 1;
                    // Each transmitted element is a full-size ciphertext, not
                    // a 0/1 bit.
                    for ct in registry.elements() {
                        assert!(ct.byte_len() > 8, "ciphertext suspiciously small");
                    }
                }
                ProtocolMsg::TryVerdict { .. } => {}
                other => panic!("unexpected server-bound message: {:?}", other.kind()),
            }
        }
        assert_eq!(registries_seen, 10);
        assert_eq!(run.server.messages_received(), 11); // key dispatch + 10 registries
        assert!(run.server.bytes_received() > 0);

        // Two clients (even in the same category) never send identical
        // ciphertexts thanks to fresh encryption randomness.
        let regs: Vec<&EncryptedVector> = transport
            .transcript()
            .iter()
            .filter_map(|e| match &e.msg {
                ProtocolMsg::EncryptedRegistry { registry, .. } => Some(registry),
                _ => None,
            })
            .collect();
        assert_ne!(regs[0].elements()[0].raw(), regs[1].elements()[0].raw());
    }

    #[test]
    fn server_memory_is_one_running_fold() {
        // The server's entire ciphertext state after N uploads is a single
        // vector of registry length — not N buffered registries.
        let dists = clients(25, 17);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng).unwrap();
        let total = epoch.server_view.encrypted_total.as_ref().unwrap();
        assert_eq!(total.len(), config.validate().len());
        assert_eq!(epoch.server_view.messages_received, 25);
        assert_eq!(
            epoch.server_view.bytes_received,
            25 * epoch.registry_ciphertext_bytes
        );
    }

    #[test]
    fn probabilities_from_secure_epoch_sum_to_k() {
        let dists = clients(200, 5);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng).unwrap();
        let expected: f64 = epoch
            .registrations
            .iter()
            .map(|r| participation_probability(&epoch.overall_registry, r.position, config.k))
            .sum();
        assert!(
            (expected - config.k as f64).abs() < 1.0,
            "expected participation {expected}"
        );
    }

    #[test]
    fn clients_compute_their_own_probabilities() {
        // Step 4 of Fig. 4 happens inside the client role: after the
        // broadcast, every client knows its own probability and they all
        // agree with Eq. 6 evaluated on the decrypted total.
        let dists = clients(40, 21);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut transport = InMemoryTransport::new();
        let run =
            run_registration(&dists, &config, TEST_KEY_BITS, &mut transport, &mut rng).unwrap();
        let overall = run.overall_registry().to_vec();
        for client in &run.clients {
            let p = client.participation_probability().expect("epoch complete");
            let expected = participation_probability(
                &overall,
                client.registration().unwrap().position,
                config.k,
            );
            assert_eq!(p, expected, "client {} probability", client.id());
        }
    }

    #[test]
    fn ciphertext_expansion_is_reported() {
        let dists = clients(5, 7);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng).unwrap();
        assert_eq!(epoch.registry_plaintext_bytes, 56 * 8);
        assert!(epoch.registry_ciphertext_bytes > epoch.registry_plaintext_bytes);
    }

    #[test]
    fn secure_try_matches_plaintext_population() {
        let dists = clients(40, 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let keypair = Keypair::generate(TEST_KEY_BITS, &mut rng);
        let (pk, sk) = keypair.split();
        let selected: Vec<usize> = vec![0, 3, 7, 21, 33];
        let outcome = secure_evaluate_try(&selected, &dists, &pk, &sk, &mut rng).unwrap();
        let plaintext = crate::selector::population_distribution(&selected, &dists).unwrap();
        for (a, b) in outcome.population.iter().zip(&plaintext) {
            assert!((a - b).abs() < 1e-5, "secure {a} vs plaintext {b}");
        }
        let plain_dist = crate::selector::population_unbiasedness(&selected, &dists).unwrap();
        assert!((outcome.distance_to_uniform - plain_dist).abs() < 1e-4);
        assert_eq!(outcome.messages, 5);
        assert!(outcome.ciphertext_bytes > 0);
    }

    #[test]
    fn empty_secure_try_is_an_error_not_a_panic() {
        let dists = clients(5, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let keypair = Keypair::generate(TEST_KEY_BITS, &mut rng);
        let (pk, sk) = keypair.split();
        assert_eq!(
            secure_evaluate_try(&[], &dists, &pk, &sk, &mut rng),
            Err(SelectError::EmptySelection)
        );
    }

    #[test]
    fn registration_of_zero_clients_is_an_error() {
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let err = secure_registration(&[], &config, TEST_KEY_BITS, &mut rng).unwrap_err();
        assert_eq!(err, SelectError::NoClients);
    }
}
