//! The secure protocol: what actually travels between clients, server and
//! agent, and the guarantee that the server only ever handles ciphertexts.
//!
//! Per registration epoch (Fig. 4):
//!
//! 1. a randomly selected *agent* client generates a Paillier keypair and
//!    dispatches it to all clients; the server receives only the public key;
//! 2. every client fills its registry (Algorithm 1), encrypts it element-wise
//!    and sends the ciphertext vector to the server;
//! 3. the server homomorphically adds all encrypted registries and broadcasts
//!    the encrypted total;
//! 4. every client decrypts the total with the shared secret key and computes
//!    its own participation probability (Eq. 6).
//!
//! The multi-time selection exchanges encrypted label distributions the same
//! way: tentatively selected clients send `Enc(p_l)`, the server adds them and
//! forwards `Enc(Σ p_l)` to the agent, which decrypts and evaluates
//! `‖p_o,h − p_u‖₁` — the server never sees a plaintext distribution.

use dubhe_data::ClassDistribution;
use dubhe_he::{
    ciphertext_size_bytes, sum_vectors, transport::plaintext_vector_bytes, EncryptedVector,
    FixedPointCodec, Keypair, PrecomputedEncryptor, PrivateKey, PublicKey,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::codebook::RegistryLayout;
use crate::config::DubheConfig;
use crate::registry::{register_all_encrypted, Registration};

/// What the honest-but-curious server observes during one registration epoch.
///
/// The struct deliberately stores *only* ciphertext material and sizes; there
/// is no way to construct it with plaintext registries, which is the
/// compile-time embodiment of the paper's threat model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerView {
    /// The epoch public key (the server may legitimately hold this).
    pub public_key: PublicKey,
    /// The encrypted registries received from clients, in arrival order.
    pub encrypted_registries: Vec<EncryptedVector>,
    /// The encrypted overall registry the server broadcasts back.
    pub encrypted_total: Option<EncryptedVector>,
    /// Bytes received from clients (ciphertext payloads only).
    pub bytes_received: usize,
    /// Number of client → server messages observed.
    pub messages_received: usize,
}

impl ServerView {
    fn new(public_key: PublicKey) -> Self {
        ServerView {
            public_key,
            encrypted_registries: Vec::new(),
            encrypted_total: None,
            bytes_received: 0,
            messages_received: 0,
        }
    }

    /// The server's aggregation step: homomorphic sum of everything received,
    /// parallel across registry positions (`dubhe-he`'s `parallel` feature).
    fn aggregate(&mut self) {
        self.encrypted_total =
            sum_vectors(&self.encrypted_registries).expect("same epoch key and registry length");
    }
}

/// The result of a full secure registration epoch.
#[derive(Debug, Clone)]
pub struct SecureRegistrationEpoch {
    /// Per-client registrations (each client knows its own, the server none).
    pub registrations: Vec<Registration>,
    /// The overall registry as decrypted by the clients.
    pub overall_registry: Vec<u64>,
    /// Everything the server saw.
    pub server_view: ServerView,
    /// Index of the client acting as the key-dispatching agent.
    pub agent: usize,
    /// Plaintext size of one registry in bytes (overhead reporting).
    pub registry_plaintext_bytes: usize,
    /// Ciphertext size of one registry in bytes (overhead reporting).
    pub registry_ciphertext_bytes: usize,
}

/// Runs one secure registration epoch end-to-end.
///
/// `key_bits` is configurable so tests can run with small keys while the
/// overhead experiments use the paper's 2048-bit setting.
pub fn secure_registration<R: Rng + ?Sized>(
    client_distributions: &[ClassDistribution],
    config: &DubheConfig,
    key_bits: u64,
    rng: &mut R,
) -> SecureRegistrationEpoch {
    assert!(!client_distributions.is_empty(), "need at least one client");
    let layout = config.validate();
    let thresholds = config.effective_thresholds();

    // 1. A random agent generates and dispatches the keypair, paying the
    //    epoch's one-time fixed-base precomputation up front so every
    //    client's encryption runs the short-exponent fast path.
    let agent = rng.gen_range(0..client_distributions.len());
    let keypair = Keypair::generate(key_bits, rng);
    let (public_key, private_key) = keypair.split();
    let encryptor = PrecomputedEncryptor::new(&public_key, rng);

    let mut server = ServerView::new(public_key.clone());

    // 2. Clients register, encrypt and send.
    let (registrations, encrypted_registries) =
        register_all_encrypted(client_distributions, &layout, &thresholds, &encryptor, rng);
    for encrypted in encrypted_registries {
        server.bytes_received += encrypted.byte_len();
        server.messages_received += 1;
        server.encrypted_registries.push(encrypted);
    }

    // 3. Server aggregates blindly and broadcasts.
    server.aggregate();
    let encrypted_total = server
        .encrypted_total
        .clone()
        .expect("at least one client registered");

    // 4. Clients decrypt the broadcast total.
    let overall_registry = encrypted_total.decrypt_u64(&private_key);

    SecureRegistrationEpoch {
        registrations,
        overall_registry,
        server_view: server,
        agent,
        registry_plaintext_bytes: plaintext_vector_bytes(layout.len()),
        registry_ciphertext_bytes: layout.len() * ciphertext_size_bytes(&public_key),
    }
}

/// The agent-side view of one multi-time tentative try performed securely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecureTryOutcome {
    /// The decrypted population distribution `p_o,h` of this try.
    pub population: Vec<f64>,
    /// `‖p_o,h − p_u‖₁`.
    pub distance_to_uniform: f64,
    /// Ciphertext bytes that crossed the network for this try.
    pub ciphertext_bytes: usize,
    /// Number of encrypted distribution messages (one per selected client).
    pub messages: usize,
}

/// Securely evaluates one tentative client set: the selected clients encrypt
/// their scaled label distributions, the server adds the ciphertexts, the agent
/// decrypts the sum and measures the distance to uniform.
pub fn secure_evaluate_try<R: Rng + ?Sized>(
    selected: &[usize],
    client_distributions: &[ClassDistribution],
    public_key: &PublicKey,
    private_key: &PrivateKey,
    rng: &mut R,
) -> SecureTryOutcome {
    assert!(
        !selected.is_empty(),
        "cannot evaluate an empty tentative selection"
    );
    let codec = FixedPointCodec::default();
    let classes = client_distributions[0].classes();

    // Every tentatively selected client shares the epoch key's fixed-base
    // table; encryption of the scaled distributions is the fast path.
    let encryptor = PrecomputedEncryptor::new(public_key, rng);
    let mut encrypted_distributions = Vec::with_capacity(selected.len());
    let mut bytes = 0usize;
    for &id in selected {
        let proportions = client_distributions[id].proportions();
        let scaled = codec.encode_vec(&proportions);
        let encrypted = EncryptedVector::encrypt_u64_with(&encryptor, &scaled, rng);
        bytes += encrypted.byte_len();
        encrypted_distributions.push(encrypted);
    }
    let encrypted_sum = sum_vectors(&encrypted_distributions)
        .expect("same key and length")
        .expect("non-empty selection");

    // Agent side: decrypt and average.
    let decrypted = encrypted_sum.decrypt_u64(private_key);
    let population = codec.decode_average(&decrypted, selected.len());
    let p_u = vec![1.0 / classes as f64; classes];
    let distance = dubhe_data::l1_distance(&population, &p_u);

    SecureTryOutcome {
        population,
        distance_to_uniform: distance,
        ciphertext_bytes: bytes,
        messages: selected.len(),
    }
}

/// Returns the registry layout used by `config` — re-exported here so callers
/// of the secure API need only this module.
pub fn layout_of(config: &DubheConfig) -> RegistryLayout {
    config.validate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probability::participation_probability;
    use crate::registry::register_all;
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use rand::SeedableRng;

    const TEST_KEY_BITS: u64 = 256;

    fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: n,
            samples_per_client: 100,
            test_samples_per_class: 1,
            seed,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        spec.build_partition(&mut rng).client_distributions()
    }

    #[test]
    fn secure_registration_matches_plaintext_aggregation() {
        let dists = clients(30, 1);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng);

        // The decrypted overall registry equals the plaintext sum.
        let layout = config.validate();
        let (_, plaintext_overall) = register_all(&dists, &layout, &config.effective_thresholds());
        assert_eq!(epoch.overall_registry, plaintext_overall);
        assert_eq!(epoch.registrations.len(), 30);
        assert!(epoch.agent < 30);
    }

    #[test]
    fn server_only_sees_ciphertexts() {
        let dists = clients(10, 3);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng);

        // Every registry the server received is an EncryptedVector whose raw
        // ciphertexts differ from the one-hot plaintext (the plaintext never
        // appears on the wire), and two clients in the same category still send
        // different ciphertexts thanks to encryption randomness.
        let view = &epoch.server_view;
        assert_eq!(view.messages_received, 10);
        assert!(view.bytes_received > 0);
        for (enc, reg) in view.encrypted_registries.iter().zip(&epoch.registrations) {
            assert_eq!(enc.len(), reg.registry.len());
            // Each transmitted element is a full-size ciphertext, not a 0/1 bit.
            for ct in enc.elements() {
                assert!(ct.byte_len() > 8, "ciphertext suspiciously small");
            }
        }
        // Two clients (even in the same category) never send identical
        // ciphertexts thanks to fresh encryption randomness.
        let a = &view.encrypted_registries[0];
        let b = &view.encrypted_registries[1];
        assert_ne!(a.elements()[0].raw(), b.elements()[0].raw());
    }

    #[test]
    fn probabilities_from_secure_epoch_sum_to_k() {
        let dists = clients(200, 5);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng);
        let expected: f64 = epoch
            .registrations
            .iter()
            .map(|r| participation_probability(&epoch.overall_registry, r.position, config.k))
            .sum();
        assert!(
            (expected - config.k as f64).abs() < 1.0,
            "expected participation {expected}"
        );
    }

    #[test]
    fn ciphertext_expansion_is_reported() {
        let dists = clients(5, 7);
        let config = DubheConfig::group1();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let epoch = secure_registration(&dists, &config, TEST_KEY_BITS, &mut rng);
        assert_eq!(epoch.registry_plaintext_bytes, 56 * 8);
        assert!(epoch.registry_ciphertext_bytes > epoch.registry_plaintext_bytes);
    }

    #[test]
    fn secure_try_matches_plaintext_population() {
        let dists = clients(40, 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let keypair = Keypair::generate(TEST_KEY_BITS, &mut rng);
        let (pk, sk) = keypair.split();
        let selected: Vec<usize> = vec![0, 3, 7, 21, 33];
        let outcome = secure_evaluate_try(&selected, &dists, &pk, &sk, &mut rng);
        let plaintext = crate::selector::population_distribution(&selected, &dists);
        for (a, b) in outcome.population.iter().zip(&plaintext) {
            assert!((a - b).abs() < 1e-5, "secure {a} vs plaintext {b}");
        }
        let plain_dist = crate::selector::population_unbiasedness(&selected, &dists);
        assert!((outcome.distance_to_uniform - plain_dist).abs() < 1e-4);
        assert_eq!(outcome.messages, 5);
        assert!(outcome.ciphertext_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "empty tentative selection")]
    fn empty_secure_try_panics() {
        let dists = clients(5, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let keypair = Keypair::generate(TEST_KEY_BITS, &mut rng);
        let (pk, sk) = keypair.split();
        let _ = secure_evaluate_try(&[], &dists, &pk, &sk, &mut rng);
    }
}
