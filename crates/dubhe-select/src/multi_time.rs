//! Multi-time selection (§5.3): repeat the tentative selection `H` times,
//! evaluate each try's population distribution, and keep the best.
//!
//! Two consumers use the machinery:
//!
//! * **Client determination** (§5.3.1): the agent picks the try `h*` whose
//!   population distribution is closest to uniform,
//!   `h* = argmin_h ‖p_o,h − p_u‖₁`, and the clients of that try train.
//! * **Parameter search** (§5.3.2): for a candidate threshold set, the agent
//!   computes the *expected* population distribution over the `H` tries and the
//!   server scans the parameter space for the thresholds minimising
//!   `‖E_h(p_o,h) − p_u‖₁`.
//!
//! The secure variant drives the exchanges through the role-separated actor
//! API of [`crate::protocol`]: tentatively selected clients upload
//! `Enc(p_l)`, the coordinator folds per-try sums, the agent decrypts and
//! issues the verdict.

use dubhe_data::{l1_distance, mean_proportions, ClassDistribution};
use dubhe_he::{PrivateKey, PublicKey};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SelectError;
use crate::protocol::{run_try, InMemoryTransport};
use crate::secure::{keyed_session, SecureTryOutcome};
use crate::selector::{population_distribution, ClientId, ClientSelector};

/// The outcome of one multi-time selection round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTimeOutcome {
    /// The clients of the winning try `h*`.
    pub selected: Vec<ClientId>,
    /// Index of the winning try.
    pub best_try: usize,
    /// `EMD* = ‖p_o,h* − p_u‖₁`, the paper's Table 2 metric.
    pub best_distance: f64,
    /// `‖p_o,h − p_u‖₁` for every try, in order.
    pub all_distances: Vec<f64>,
    /// `‖E_h(p_o,h) − p_u‖₁` — the parameter-search objective.
    pub expectation_distance: f64,
}

/// Runs `h` tentative selections with `selector` and returns the best.
///
/// Returns [`SelectError::ZeroTries`] for `h == 0` and propagates any
/// selection error (empty or out-of-range tentative sets).
pub fn multi_time_select<S, R>(
    selector: &mut S,
    client_distributions: &[ClassDistribution],
    h: usize,
    rng: &mut R,
) -> Result<MultiTimeOutcome, SelectError>
where
    S: ClientSelector + ?Sized,
    R: Rng,
{
    if h == 0 {
        return Err(SelectError::ZeroTries);
    }
    let classes = client_distributions
        .first()
        .ok_or(SelectError::NoClients)?
        .classes();
    let p_u = vec![1.0 / classes as f64; classes];

    let mut tries: Vec<Vec<ClientId>> = Vec::with_capacity(h);
    let mut populations: Vec<Vec<f64>> = Vec::with_capacity(h);
    let mut distances: Vec<f64> = Vec::with_capacity(h);
    for _ in 0..h {
        let selected = selector.select(rng);
        let p_o = population_distribution(&selected, client_distributions)?;
        distances.push(l1_distance(&p_o, &p_u));
        populations.push(p_o);
        tries.push(selected);
    }
    let best_try = distances
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("h >= 1");
    let expectation = mean_proportions(&populations);
    Ok(MultiTimeOutcome {
        selected: tries[best_try].clone(),
        best_try,
        best_distance: distances[best_try],
        all_distances: distances,
        expectation_distance: l1_distance(&expectation, &p_u),
    })
}

/// The outcome of one *secure* multi-time selection round: the plaintext
/// decision plus everything that crossed the network encrypted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecureMultiTimeOutcome {
    /// The clients of the winning try `h*`.
    pub selected: Vec<ClientId>,
    /// Index of the winning try.
    pub best_try: usize,
    /// `EMD* = ‖p_o,h* − p_u‖₁` as measured by the agent on decrypted sums.
    pub best_distance: f64,
    /// The per-try secure evaluations, in order.
    pub tries: Vec<SecureTryOutcome>,
    /// Total ciphertext bytes across all tries (≈ `H·K` encrypted
    /// distributions, the paper's §6.4 multi-time overhead).
    pub ciphertext_bytes: usize,
}

/// Runs `h` tentative selections with the *secure* §5.3.1 exchange through
/// the actor API: each try's tentatively selected clients encrypt their
/// scaled label distributions under the epoch key (fast precomputed-base
/// path), the coordinator folds each try's sum incrementally, and the agent
/// decrypts only the sums and announces `h* = argmin_h ‖p_o,h − p_u‖₁`.
///
/// Functionally equivalent to [`multi_time_select`] (the agent learns the
/// same winning try); the difference is what the server sees — ciphertexts
/// only — and what this costs, which the outcome reports.
///
/// Returns [`SelectError::ZeroTries`] for `h == 0` and
/// [`SelectError::EmptySelection`] if any try selects no clients.
pub fn secure_multi_time_select<S, R>(
    selector: &mut S,
    client_distributions: &[ClassDistribution],
    h: usize,
    public_key: &PublicKey,
    private_key: &PrivateKey,
    rng: &mut R,
) -> Result<SecureMultiTimeOutcome, SelectError>
where
    S: ClientSelector + ?Sized,
    R: Rng,
{
    if h == 0 {
        return Err(SelectError::ZeroTries);
    }
    let (mut agent, mut clients, mut server) =
        keyed_session(client_distributions, public_key, private_key)?;
    agent.expect_tries(h);
    let mut transport = InMemoryTransport::new();

    let mut tries: Vec<Vec<ClientId>> = Vec::with_capacity(h);
    for try_index in 0..h {
        let selected = selector.select(rng);
        run_try(
            try_index,
            &selected,
            &mut agent,
            &mut clients,
            &mut server,
            &mut transport,
            rng,
        )?;
        tries.push(selected);
    }

    let (best_try, best_distance) = agent.verdict().expect("all tries evaluated");
    let outcomes = agent.try_outcomes();
    debug_assert_eq!(server.last_verdict(), Some((best_try, best_distance)));
    Ok(SecureMultiTimeOutcome {
        selected: tries[best_try].clone(),
        best_try,
        best_distance,
        ciphertext_bytes: outcomes.iter().map(|o| o.ciphertext_bytes).sum(),
        tries: outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DubheConfig;
    use crate::dubhe::DubheSelector;
    use crate::selector::RandomSelector;
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use dubhe_he::Keypair;
    use rand::SeedableRng;

    fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: n,
            samples_per_client: 100,
            test_samples_per_class: 1,
            seed,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        spec.build_partition(&mut rng).client_distributions()
    }

    #[test]
    fn best_try_minimises_the_distance() {
        let dists = clients(300, 1);
        let mut sel = RandomSelector::new(300, 20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let outcome = multi_time_select(&mut sel, &dists, 10, &mut rng).unwrap();
        assert_eq!(outcome.all_distances.len(), 10);
        assert_eq!(outcome.selected.len(), 20);
        let min = outcome
            .all_distances
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((outcome.best_distance - min).abs() < 1e-12);
        assert!((outcome.all_distances[outcome.best_try] - min).abs() < 1e-12);
    }

    #[test]
    fn single_try_is_equivalent_to_one_off_selection() {
        let dists = clients(100, 3);
        let mut sel = RandomSelector::new(100, 20);
        let outcome = multi_time_select(
            &mut sel,
            &dists,
            1,
            &mut rand::rngs::StdRng::seed_from_u64(4),
        )
        .unwrap();
        let mut sel2 = RandomSelector::new(100, 20);
        let direct = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let sel_dyn: &mut dyn crate::selector::ClientSelector = &mut sel2;
            sel_dyn.select(&mut rng)
        };
        assert_eq!(outcome.selected, direct);
        assert_eq!(outcome.best_try, 0);
    }

    #[test]
    fn more_tries_never_hurt_on_average() {
        // Table 2: EMD* decreases as H grows. Check the trend statistically.
        let dists = clients(500, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let average_best = |h: usize, rng: &mut rand::rngs::StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..15 {
                let mut sel = DubheSelector::new(&dists, DubheConfig::group1());
                total += multi_time_select(&mut sel, &dists, h, rng)
                    .unwrap()
                    .best_distance;
            }
            total / 15.0
        };
        let h1 = average_best(1, &mut rng);
        let h10 = average_best(10, &mut rng);
        assert!(
            h10 < h1,
            "H=10 ({h10:.4}) should achieve lower EMD* than H=1 ({h1:.4}) on average"
        );
    }

    #[test]
    fn expectation_distance_is_reported() {
        let dists = clients(200, 7);
        let mut sel = DubheSelector::new(&dists, DubheConfig::group1());
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let outcome = multi_time_select(&mut sel, &dists, 5, &mut rng).unwrap();
        assert!(outcome.expectation_distance >= 0.0 && outcome.expectation_distance <= 2.0);
        // The expectation over tries is at least as balanced as the average try.
        let mean_try: f64 =
            outcome.all_distances.iter().sum::<f64>() / outcome.all_distances.len() as f64;
        assert!(outcome.expectation_distance <= mean_try + 1e-9);
    }

    #[test]
    fn secure_multi_time_picks_the_argmin_try_over_decrypted_sums() {
        let dists = clients(80, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let (pk, sk) = Keypair::generate(256, &mut rng).split();

        let mut sel = DubheSelector::new(&dists, DubheConfig::group1());
        let secure = secure_multi_time_select(&mut sel, &dists, 5, &pk, &sk, &mut rng).unwrap();

        assert_eq!(secure.tries.len(), 5);
        let min = secure
            .tries
            .iter()
            .map(|t| t.distance_to_uniform)
            .fold(f64::INFINITY, f64::min);
        assert!((secure.best_distance - min).abs() < 1e-12);
        assert!(
            (secure.tries[secure.best_try].distance_to_uniform - min).abs() < 1e-12,
            "best_try must index the minimising try"
        );
        // Every try's decrypted population is a probability distribution.
        for t in &secure.tries {
            assert!((t.population.iter().sum::<f64>() - 1.0).abs() < 1e-4);
        }
        assert!(secure.ciphertext_bytes > 0);
        let per_try_messages: usize = secure.tries.iter().map(|t| t.messages).sum();
        assert_eq!(per_try_messages, 5 * 20, "H tries x K clients");
        assert_eq!(secure.selected.len(), 20);
    }

    #[test]
    fn zero_tries_is_an_error() {
        let dists = clients(50, 9);
        let mut sel = RandomSelector::new(50, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        assert_eq!(
            multi_time_select(&mut sel, &dists, 0, &mut rng).unwrap_err(),
            SelectError::ZeroTries
        );
    }
}
