//! Parameter search (§5.3.2): finding the registration thresholds σᵢ.
//!
//! Whenever the structure of the FL system changes (global data pattern, total
//! client number, participation rate), the current thresholds may stop being
//! appropriate. The search walks a grid of candidate thresholds; for each
//! candidate the clients re-register, `H` tentative selections are performed
//! and the *expected* population distribution over the tries is compared to the
//! uniform distribution. The candidate minimising `‖E_h(p_o,h) − p_u‖₁` wins.
//! The threshold for the fallback block (`i = C`) is always 0.

use dubhe_data::ClassDistribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::DubheConfig;
use crate::dubhe::DubheSelector;
use crate::multi_time::multi_time_select;

/// One evaluated candidate of the parameter search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The thresholds σᵢ (ordered like the sorted reference set).
    pub thresholds: Vec<f64>,
    /// The search objective `‖E_h(p_o,h) − p_u‖₁`.
    pub objective: f64,
    /// The best single-try distance observed while evaluating this candidate.
    pub best_try_distance: f64,
}

/// The result of a full parameter search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The winning thresholds.
    pub best_thresholds: Vec<f64>,
    /// The winning objective value.
    pub best_objective: f64,
    /// Every evaluated candidate, in evaluation order.
    pub candidates: Vec<Candidate>,
}

/// Grid definition for the parameter search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchGrid {
    /// Candidate values tried for every non-fallback threshold.
    pub values: Vec<f64>,
    /// Number of tentative selections `H` per candidate.
    pub tries_per_candidate: usize,
}

impl Default for SearchGrid {
    fn default() -> Self {
        SearchGrid {
            values: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            tries_per_candidate: 5,
        }
    }
}

/// Enumerates the full Cartesian grid over the non-fallback thresholds.
fn enumerate_grid(values: &[f64], slots: usize) -> Vec<Vec<f64>> {
    assert!(slots >= 1, "need at least one threshold slot");
    let mut out: Vec<Vec<f64>> = vec![Vec::new()];
    for _ in 0..slots {
        let mut next = Vec::with_capacity(out.len() * values.len());
        for prefix in &out {
            for &v in values {
                let mut candidate = prefix.clone();
                candidate.push(v);
                next.push(candidate);
            }
        }
        out = next;
    }
    out
}

/// Runs the parameter search for `config` over `grid`, returning the best
/// thresholds (σ_C fixed to 0 is appended automatically).
pub fn parameter_search<R: Rng>(
    client_distributions: &[ClassDistribution],
    config: &DubheConfig,
    grid: &SearchGrid,
    rng: &mut R,
) -> SearchOutcome {
    assert!(
        !grid.values.is_empty(),
        "the search grid must contain candidate values"
    );
    assert!(
        grid.tries_per_candidate >= 1,
        "need at least one try per candidate"
    );
    let layout = config.validate();
    // One free threshold per reference-set entry except the fallback (i = C).
    let free_slots = layout
        .reference_set()
        .iter()
        .filter(|&&i| i != config.classes)
        .count();
    assert!(
        free_slots >= 1,
        "the reference set has no searchable thresholds"
    );

    let mut candidates = Vec::new();
    let mut best: Option<(Vec<f64>, f64)> = None;

    for free in enumerate_grid(&grid.values, free_slots) {
        // Reassemble the full threshold vector in reference-set order.
        let mut thresholds = Vec::with_capacity(layout.reference_set().len());
        let mut it = free.iter();
        for &i in layout.reference_set() {
            if i == config.classes {
                thresholds.push(0.0);
            } else {
                thresholds.push(*it.next().expect("one value per free slot"));
            }
        }
        let candidate_config = config.with_thresholds(thresholds.clone());
        let mut selector = DubheSelector::new(client_distributions, candidate_config);
        let outcome = multi_time_select(
            &mut selector,
            client_distributions,
            grid.tries_per_candidate,
            rng,
        )
        .expect("a Dubhe selector always proposes K >= 1 clients per try");
        let objective = outcome.expectation_distance;
        candidates.push(Candidate {
            thresholds: thresholds.clone(),
            objective,
            best_try_distance: outcome.best_distance,
        });
        let better = match &best {
            None => true,
            Some((_, best_obj)) => objective < *best_obj,
        };
        if better {
            best = Some((thresholds, objective));
        }
    }

    let (best_thresholds, best_objective) = best.expect("grid is non-empty");
    SearchOutcome {
        best_thresholds,
        best_objective,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{population_unbiasedness, ClientSelector, RandomSelector};
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use rand::SeedableRng;

    fn clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: n,
            samples_per_client: 100,
            test_samples_per_class: 1,
            seed,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        spec.build_partition(&mut rng).client_distributions()
    }

    #[test]
    fn grid_enumeration_is_cartesian() {
        let grid = enumerate_grid(&[0.1, 0.5], 2);
        assert_eq!(grid.len(), 4);
        assert!(grid.contains(&vec![0.1, 0.1]));
        assert!(grid.contains(&vec![0.5, 0.1]));
    }

    #[test]
    fn search_explores_the_full_grid_and_picks_the_minimum() {
        let dists = clients(300, 1);
        let config = DubheConfig::group1();
        let grid = SearchGrid {
            values: vec![0.3, 0.7],
            tries_per_candidate: 3,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let outcome = parameter_search(&dists, &config, &grid, &mut rng);
        // Two free slots (i = 1, 2) with two values each -> 4 candidates.
        assert_eq!(outcome.candidates.len(), 4);
        let min = outcome
            .candidates
            .iter()
            .map(|c| c.objective)
            .fold(f64::INFINITY, f64::min);
        assert!((outcome.best_objective - min).abs() < 1e-12);
        // The winning thresholds keep sigma_C = 0.
        assert_eq!(outcome.best_thresholds.len(), 3);
        assert_eq!(*outcome.best_thresholds.last().unwrap(), 0.0);
    }

    #[test]
    fn searched_thresholds_beat_random_selection() {
        let dists = clients(500, 3);
        let config = DubheConfig::group1();
        let grid = SearchGrid {
            values: vec![0.1, 0.5, 0.7, 0.9],
            tries_per_candidate: 3,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let outcome = parameter_search(&dists, &config, &grid, &mut rng);

        let tuned = config.with_thresholds(outcome.best_thresholds.clone());
        let mut dubhe = DubheSelector::new(&dists, tuned);
        let mut random = RandomSelector::new(500, 20);
        let mut dubhe_sum = 0.0;
        let mut random_sum = 0.0;
        for _ in 0..20 {
            dubhe_sum += population_unbiasedness(&dubhe.select(&mut rng), &dists).unwrap();
            random_sum += population_unbiasedness(&random.select(&mut rng), &dists).unwrap();
        }
        assert!(
            dubhe_sum < random_sum,
            "tuned Dubhe ({dubhe_sum:.3}) vs random ({random_sum:.3})"
        );
    }

    #[test]
    fn group2_search_has_single_free_slot() {
        let spec = FederatedSpec {
            family: DatasetFamily::FemnistLike,
            rho: 13.64,
            emd_avg: 0.554,
            clients: 200,
            samples_per_client: 60,
            test_samples_per_class: 1,
            seed: 5,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dists = spec.build_partition(&mut rng).client_distributions();
        let config = DubheConfig::group2();
        let grid = SearchGrid {
            values: vec![0.3, 0.6],
            tries_per_candidate: 2,
        };
        let outcome = parameter_search(&dists, &config, &grid, &mut rng);
        assert_eq!(outcome.candidates.len(), 2);
        assert_eq!(outcome.best_thresholds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "candidate values")]
    fn empty_grid_panics() {
        let dists = clients(50, 6);
        let config = DubheConfig::group1();
        let grid = SearchGrid {
            values: vec![],
            tries_per_candidate: 2,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let _ = parameter_search(&dists, &config, &grid, &mut rng);
    }
}
