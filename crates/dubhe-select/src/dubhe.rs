//! The Dubhe selector: registration + self-computed participation probability +
//! replenish/trim to exactly `K` participants.
//!
//! The plaintext fast path in this module models the *decisions* each party
//! takes; the [`crate::secure`] module wires the identical decisions through
//! Paillier ciphertexts and asserts that the server only ever touches encrypted
//! data. Keeping the two separated lets the large-scale experiments (1000–8962
//! clients, hundreds of repetitions) run at full speed while the secure path is
//! exercised end-to-end in its own tests and in the overhead study.

use dubhe_data::ClassDistribution;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::codebook::RegistryLayout;
use crate::config::DubheConfig;
use crate::probability::participation_probability;
use crate::registry::{register_all, Registration};
use crate::selector::{ClientId, ClientSelector};

/// The Dubhe client-selection system (plaintext decision model).
#[derive(Debug, Clone)]
pub struct DubheSelector {
    config: DubheConfig,
    layout: RegistryLayout,
    registrations: Vec<Registration>,
    overall_registry: Vec<u64>,
    population: usize,
}

impl DubheSelector {
    /// Builds the selector by running a registration epoch over every client's
    /// label distribution.
    pub fn new(client_distributions: &[ClassDistribution], config: DubheConfig) -> Self {
        assert!(!client_distributions.is_empty(), "need at least one client");
        assert!(
            config.k <= client_distributions.len(),
            "K = {} exceeds the client population {}",
            config.k,
            client_distributions.len()
        );
        let layout = config.validate();
        let thresholds = config.effective_thresholds();
        let (registrations, overall_registry) =
            register_all(client_distributions, &layout, &thresholds);
        DubheSelector {
            config,
            layout,
            registrations,
            overall_registry,
            population: client_distributions.len(),
        }
    }

    /// The overall registry `R_A` (what every client decrypts).
    pub fn overall_registry(&self) -> &[u64] {
        &self.overall_registry
    }

    /// The registry layout in use.
    pub fn layout(&self) -> &RegistryLayout {
        &self.layout
    }

    /// The per-client registrations.
    pub fn registrations(&self) -> &[Registration] {
        &self.registrations
    }

    /// The participation probability of one client (Eq. 6).
    pub fn client_probability(&self, client: ClientId) -> f64 {
        participation_probability(
            &self.overall_registry,
            self.registrations[client].position,
            self.config.k,
        )
    }

    /// Re-runs registration with new thresholds (used by the parameter search,
    /// which redistributes the registry form and codebook to all clients).
    pub fn reregister(&mut self, client_distributions: &[ClassDistribution], thresholds: Vec<f64>) {
        self.config = self.config.with_thresholds(thresholds);
        let thresholds = self.config.effective_thresholds();
        let (registrations, overall) =
            register_all(client_distributions, &self.layout, &thresholds);
        self.registrations = registrations;
        self.overall_registry = overall;
    }

    /// One *proactive participation* pass: every client flips its own coin with
    /// its own probability. The result may have any size; Dubhe then fixes it
    /// up to exactly `K` (replenish or trim uniformly, §5.2).
    pub fn proactive_participation<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<ClientId> {
        (0..self.population)
            .filter(|&id| rng.gen::<f64>() < self.client_probability(id))
            .collect()
    }

    /// Adjusts a participation set to exactly `K` clients: uniformly add
    /// non-participating clients if too few volunteered, uniformly drop
    /// participants if too many did.
    pub fn adjust_to_k<R: Rng + ?Sized>(
        &self,
        mut selected: Vec<ClientId>,
        rng: &mut R,
    ) -> Vec<ClientId> {
        let k = self.config.k;
        if selected.len() > k {
            selected.shuffle(rng);
            selected.truncate(k);
        } else if selected.len() < k {
            let chosen: std::collections::HashSet<ClientId> = selected.iter().copied().collect();
            let mut others: Vec<ClientId> = (0..self.population)
                .filter(|id| !chosen.contains(id))
                .collect();
            others.shuffle(rng);
            selected.extend(others.into_iter().take(k - selected.len()));
        }
        selected.sort_unstable();
        selected
    }

    /// The configuration in use.
    pub fn config(&self) -> &DubheConfig {
        &self.config
    }
}

impl ClientSelector for DubheSelector {
    fn select(&mut self, rng: &mut dyn rand::RngCore) -> Vec<ClientId> {
        let volunteers = self.proactive_participation(rng);
        self.adjust_to_k(volunteers, rng)
    }

    fn name(&self) -> &'static str {
        "Dubhe"
    }

    fn population(&self) -> usize {
        self.population
    }

    fn target_participants(&self) -> usize {
        self.config.k
    }

    fn registry_len(&self) -> Option<usize> {
        Some(self.layout.len())
    }

    fn secure_config(&self) -> Option<&DubheConfig> {
        Some(&self.config)
    }

    fn overall_registry(&self) -> Option<&[u64]> {
        Some(&self.overall_registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{population_unbiasedness, RandomSelector};
    use dubhe_data::federated::{DatasetFamily, FederatedSpec};
    use rand::SeedableRng;

    fn skewed_clients(n: usize, seed: u64) -> Vec<ClassDistribution> {
        let spec = FederatedSpec {
            family: DatasetFamily::MnistLike,
            rho: 10.0,
            emd_avg: 1.5,
            clients: n,
            samples_per_client: 100,
            test_samples_per_class: 1,
            seed,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        spec.build_partition(&mut rng).client_distributions()
    }

    #[test]
    fn selection_returns_exactly_k_distinct_clients() {
        let dists = skewed_clients(300, 1);
        let mut sel = DubheSelector::new(&dists, DubheConfig::group1());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let s = sel.select(&mut rng);
            assert_eq!(s.len(), 20);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "distinct and sorted");
            assert!(s.iter().all(|&id| id < 300));
        }
        assert_eq!(sel.name(), "Dubhe");
    }

    #[test]
    fn expected_volunteers_close_to_k() {
        let dists = skewed_clients(1000, 3);
        let sel = DubheSelector::new(&dists, DubheConfig::group1());
        let expected: f64 = (0..1000).map(|id| sel.client_probability(id)).sum();
        // Eq. (7): the expectation equals K when no probability saturates.
        assert!(
            (expected - 20.0).abs() < 1.0,
            "expected volunteers {expected}"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mean_volunteers: f64 = (0..50)
            .map(|_| sel.proactive_participation(&mut rng).len() as f64)
            .sum::<f64>()
            / 50.0;
        assert!(
            (mean_volunteers - 20.0).abs() < 4.0,
            "observed volunteers {mean_volunteers}"
        );
    }

    #[test]
    fn dubhe_is_more_balanced_than_random() {
        let dists = skewed_clients(1000, 5);
        let mut dubhe = DubheSelector::new(&dists, DubheConfig::group1());
        let mut random = RandomSelector::new(1000, 20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let reps = 30;
        let mut dubhe_sum = 0.0;
        let mut random_sum = 0.0;
        for _ in 0..reps {
            dubhe_sum += population_unbiasedness(&dubhe.select(&mut rng), &dists).unwrap();
            random_sum += population_unbiasedness(&random.select(&mut rng), &dists).unwrap();
        }
        // §6.3.1: Dubhe reduces ‖p_o − p_u‖₁ vs random at rho = 10, EMD = 1.5
        // (the paper reports up to 64.4% with H-time selection; the single-shot
        // selector tested here achieves a smaller but still clear reduction).
        assert!(
            dubhe_sum < random_sum * 0.85,
            "Dubhe ({dubhe_sum:.3}) should clearly beat random ({random_sum:.3})"
        );
    }

    #[test]
    fn probabilities_equalise_categories() {
        let dists = skewed_clients(1000, 7);
        let sel = DubheSelector::new(&dists, DubheConfig::group1());
        // Every client in the same category has the same probability.
        let mut by_position: std::collections::HashMap<usize, Vec<f64>> = Default::default();
        for (id, reg) in sel.registrations().iter().enumerate() {
            by_position
                .entry(reg.position)
                .or_default()
                .push(sel.client_probability(id));
        }
        for (pos, probs) in by_position {
            let first = probs[0];
            assert!(
                probs.iter().all(|&p| (p - first).abs() < 1e-12),
                "category at {pos} has inconsistent probabilities"
            );
        }
    }

    #[test]
    fn adjust_to_k_replenishes_and_trims() {
        let dists = skewed_clients(100, 8);
        let sel = DubheSelector::new(&dists, DubheConfig::group1());
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        // Too few volunteers.
        let adjusted = sel.adjust_to_k(vec![1, 2, 3], &mut rng);
        assert_eq!(adjusted.len(), 20);
        assert!([1, 2, 3].iter().all(|id| adjusted.contains(id)));
        // Too many volunteers.
        let many: Vec<ClientId> = (0..60).collect();
        let adjusted = sel.adjust_to_k(many, &mut rng);
        assert_eq!(adjusted.len(), 20);
        // Exactly K is left untouched (up to ordering).
        let exact: Vec<ClientId> = (10..30).collect();
        assert_eq!(sel.adjust_to_k(exact.clone(), &mut rng), exact);
    }

    #[test]
    fn reregister_changes_thresholds_and_registry() {
        let dists = skewed_clients(200, 10);
        let mut sel = DubheSelector::new(&dists, DubheConfig::group1());
        let before = sel.overall_registry().to_vec();
        // Absurdly strict sigma_1 pushes everyone out of the single-class block.
        sel.reregister(&dists, vec![1.0, 1.0, 0.0]);
        let after = sel.overall_registry().to_vec();
        assert_ne!(before, after);
        // With sigma = 1.0 nobody can have a dominating class unless it is 100%.
        let singles_after: u64 = after[..10].iter().sum();
        let singles_before: u64 = before[..10].iter().sum();
        assert!(singles_after <= singles_before);
    }

    #[test]
    #[should_panic(expected = "exceeds the client population")]
    fn k_larger_than_population_panics() {
        let dists = skewed_clients(10, 11);
        let _ = DubheSelector::new(&dists, DubheConfig::group1());
    }
}
