//! Error types of the selection crate.
//!
//! Selection runs inside long-lived simulations (hundreds of rounds, many
//! scenarios); a misconfigured selector must surface as a recoverable error
//! at the API boundary, never as a process abort. The two layers are:
//!
//! * [`SelectError`] — what the selection / evaluation functions return
//!   (empty selections, zero tries, out-of-range clients);
//! * [`ProtocolError`] — what a protocol role returns when it receives a
//!   message that violates the exchange (wrong destination, missing key
//!   material, a private key offered to the server). It converts into
//!   [`SelectError`] so drivers expose a single error type.

use dubhe_he::HeError;

use crate::protocol::message::MsgKind;

/// Errors returned by selection and secure-evaluation entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// A population quantity was requested for an empty client selection.
    EmptySelection,
    /// No client distributions were supplied.
    NoClients,
    /// Multi-time selection was asked to run zero tries.
    ZeroTries,
    /// A selected client id falls outside the population.
    ClientOutOfRange {
        /// The offending client id.
        id: usize,
        /// The population size it was checked against.
        population: usize,
    },
    /// A protocol role rejected a message during the encrypted exchange.
    Protocol(ProtocolError),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::EmptySelection => {
                write!(
                    f,
                    "population distribution of an empty selection is undefined"
                )
            }
            SelectError::NoClients => write!(f, "need at least one client distribution"),
            SelectError::ZeroTries => {
                write!(f, "multi-time selection needs at least one try")
            }
            SelectError::ClientOutOfRange { id, population } => {
                write!(
                    f,
                    "selected client {id} out of range (population {population})"
                )
            }
            SelectError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for SelectError {}

impl From<ProtocolError> for SelectError {
    fn from(e: ProtocolError) -> Self {
        SelectError::Protocol(e)
    }
}

/// Errors raised by protocol roles while handling messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A role received a message kind it does not handle.
    UnexpectedMessage {
        /// The receiving role ("agent", "client", "server").
        role: &'static str,
        /// The offending message kind.
        kind: MsgKind,
    },
    /// A key dispatch destined for the server carried the private key — the
    /// one flow the threat model forbids. The server refuses it outright.
    PrivateKeyAtServer,
    /// A role needed key material it has not received yet.
    MissingKeyMaterial {
        /// The role missing its keys.
        role: &'static str,
    },
    /// A distribution referenced a tentative try the server never announced.
    UnknownTry {
        /// The unannounced try index.
        try_index: usize,
    },
    /// A contribution arrived from a client outside the expected set (the
    /// registered population, or a try's announced participants).
    UnknownContributor {
        /// The unexpected client id.
        client: usize,
        /// The tentative try, or `None` for a registration upload.
        try_index: Option<usize>,
    },
    /// A client contributed twice to the same aggregation — folding it
    /// again would silently corrupt the homomorphic sum.
    DuplicateContribution {
        /// The repeating client id.
        client: usize,
        /// The tentative try, or `None` for a registration upload.
        try_index: Option<usize>,
    },
    /// A coordinator and a contributor disagree about ciphertext packing: a
    /// packed frame reached a coordinator with no packing policy, or an
    /// element-wise frame reached one configured for packed folds. Folding
    /// across the two layouts would corrupt lanes, so the frame is refused.
    PackingDisagreement {
        /// The refusing role.
        role: &'static str,
        /// `true` if the receiver expected packed ciphertexts and got
        /// element-wise ones; `false` for the reverse.
        expected_packed: bool,
        /// The offending message kind.
        kind: MsgKind,
    },
    /// A registry arrived after the epoch total was already broadcast.
    EpochComplete {
        /// The late client id.
        client: usize,
    },
    /// A frame stamped with an epoch older than the receiver's current one —
    /// a straggler from before a key rotation, or a replay. Folding it would
    /// mix ciphertexts across keypairs, so it is refused outright.
    StaleEpoch {
        /// The epoch the frame was stamped with.
        received: u64,
        /// The receiver's current epoch.
        current: u64,
    },
    /// A non-key-dispatch frame stamped with an epoch the receiver has not
    /// entered yet. Only a key dispatch may advance a party's epoch.
    FutureEpoch {
        /// The epoch the frame was stamped with.
        received: u64,
        /// The receiver's current epoch.
        current: u64,
    },
    /// A partial-cohort close was requested but there is nothing to close:
    /// no contribution ever arrived, so no fold exists to publish.
    NothingToClose {
        /// What was asked to close ("registration", "try").
        what: &'static str,
    },
    /// An encrypted registration epoch decrypted to a different overall
    /// registry than the plaintext decision model it was checked against.
    RegistryDivergence,
    /// A homomorphic operation failed (mismatched key or vector length).
    He(HeError),
    /// A socket operation failed (connect, read or write). The error is
    /// captured as its [`std::io::ErrorKind`] name plus detail text so the
    /// protocol error stays `Clone`/`Eq`-comparable in tests.
    Io {
        /// What the transport was doing ("connect", "read frame", ...).
        context: &'static str,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A frame arrived that is not a valid protocol frame: wrong magic, a
    /// payload that is not valid UTF-8/JSON, or a message of the wrong shape
    /// for the state the connection is in.
    MalformedFrame {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A frame header announced a payload larger than the transport accepts —
    /// either garbage bytes parsed as a length, or a hostile peer trying to
    /// make the receiver allocate unboundedly.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The transport's limit.
        max: usize,
    },
    /// The peer closed the connection in the middle of a frame — some bytes
    /// of the header or payload arrived and then the stream ended.
    TruncatedFrame {
        /// Which part of the frame was cut off ("header", "payload").
        context: &'static str,
    },
    /// The peer closed the connection cleanly between frames while more
    /// exchange was expected (a mid-exchange disconnect).
    Disconnected,
    /// A connection's bounded write queue crossed its high-water mark: the
    /// peer stopped reading while replies kept accumulating. The listener
    /// disconnects rather than buffer without bound or block the event loop.
    Backpressure {
        /// Bytes queued for the connection when it was cut.
        queued: usize,
        /// The configured high-water mark.
        high_water: usize,
    },
    /// The remote coordinator rejected a message; its own [`ProtocolError`]
    /// is relayed as text across the wire.
    Remote {
        /// The coordinator-side error, rendered.
        detail: String,
    },
    /// Channel authentication failed: a handshake message did not verify,
    /// a sealed frame's AEAD tag was wrong (tampering or a ciphertext bit
    /// flip), or a peer presented a different identity than the session was
    /// bound to (a hijack attempt). The connection is cut — decrypting or
    /// folding anything after an authentication failure is unsound.
    AuthFailure {
        /// What failed to authenticate.
        detail: String,
    },
    /// A sealed frame arrived with the wrong nonce sequence number — a
    /// replayed, reordered or dropped frame on an authenticated channel.
    /// The channel's framing is strictly ordered, so this is always an
    /// attack or a broken peer, never a benign race.
    ReplayDetected {
        /// The sequence number the receiver expected next.
        expected: u64,
        /// The sequence number the frame carried.
        got: u64,
    },
    /// A plaintext protocol frame arrived on a connection whose policy
    /// requires the authenticated channel — a downgrade attempt (or a
    /// misconfigured peer). Refused before any payload is decoded.
    DowngradeRefused {
        /// The plaintext frame magic that was refused.
        magic: [u8; 4],
    },
    /// Every connect/handshake attempt failed within the configured retry
    /// budget; the transport gave up after backing off between attempts.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnexpectedMessage { role, kind } => {
                write!(f, "{role} cannot handle a {kind:?} message")
            }
            ProtocolError::PrivateKeyAtServer => {
                write!(f, "refusing to deliver a private key to the server")
            }
            ProtocolError::MissingKeyMaterial { role } => {
                write!(f, "{role} has no key material for this epoch yet")
            }
            ProtocolError::UnknownTry { try_index } => {
                write!(f, "encrypted distribution for unannounced try {try_index}")
            }
            ProtocolError::UnknownContributor { client, try_index } => match try_index {
                Some(t) => write!(f, "client {client} is not a participant of try {t}"),
                None => write!(
                    f,
                    "client {client} is not part of the registering population"
                ),
            },
            ProtocolError::DuplicateContribution { client, try_index } => match try_index {
                Some(t) => write!(f, "client {client} already contributed to try {t}"),
                None => write!(f, "client {client} already uploaded its registry"),
            },
            ProtocolError::PackingDisagreement {
                role,
                expected_packed,
                kind,
            } => {
                if *expected_packed {
                    write!(
                        f,
                        "{role} is configured for packed ciphertexts but received an \
                         element-wise {kind:?} frame"
                    )
                } else {
                    write!(
                        f,
                        "{role} received a packed {kind:?} frame but has no packing policy"
                    )
                }
            }
            ProtocolError::EpochComplete { client } => {
                write!(
                    f,
                    "client {client} uploaded a registry after the total was broadcast"
                )
            }
            ProtocolError::StaleEpoch { received, current } => {
                write!(
                    f,
                    "stale frame from epoch {received} (current epoch is {current})"
                )
            }
            ProtocolError::FutureEpoch { received, current } => {
                write!(
                    f,
                    "frame from future epoch {received} (current epoch is {current}; only a key dispatch advances an epoch)"
                )
            }
            ProtocolError::NothingToClose { what } => {
                write!(f, "cannot close {what}: no contribution has arrived")
            }
            ProtocolError::RegistryDivergence => {
                write!(
                    f,
                    "decrypted overall registry disagrees with the plaintext decision model"
                )
            }
            ProtocolError::He(e) => write!(f, "homomorphic operation failed: {e}"),
            ProtocolError::Io { context, detail } => {
                write!(
                    f,
                    "transport I/O failed while trying to {context}: {detail}"
                )
            }
            ProtocolError::MalformedFrame { detail } => {
                write!(f, "malformed protocol frame: {detail}")
            }
            ProtocolError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame announces a {len}-byte payload, above the {max}-byte limit"
                )
            }
            ProtocolError::TruncatedFrame { context } => {
                write!(f, "connection closed mid-frame (truncated {context})")
            }
            ProtocolError::Disconnected => {
                write!(f, "peer disconnected mid-exchange")
            }
            ProtocolError::Backpressure { queued, high_water } => {
                write!(
                    f,
                    "write queue reached {queued} bytes (high-water mark {high_water}); \
                     disconnecting stalled reader"
                )
            }
            ProtocolError::Remote { detail } => {
                write!(f, "remote coordinator rejected the message: {detail}")
            }
            ProtocolError::AuthFailure { detail } => {
                write!(f, "channel authentication failed: {detail}")
            }
            ProtocolError::ReplayDetected { expected, got } => {
                write!(
                    f,
                    "sealed frame out of sequence: expected nonce {expected}, got {got} \
                     (replayed, reordered or dropped frame)"
                )
            }
            ProtocolError::DowngradeRefused { magic } => {
                write!(
                    f,
                    "plaintext frame {} refused: this connection requires the \
                     authenticated channel",
                    String::from_utf8_lossy(magic)
                )
            }
            ProtocolError::RetriesExhausted { attempts } => {
                write!(
                    f,
                    "gave up after {attempts} connect/handshake attempts (bounded backoff \
                     exhausted)"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<HeError> for ProtocolError {
    fn from(e: HeError) -> Self {
        ProtocolError::He(e)
    }
}

impl From<HeError> for SelectError {
    fn from(e: HeError) -> Self {
        SelectError::Protocol(ProtocolError::He(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        let e: SelectError = ProtocolError::PrivateKeyAtServer.into();
        assert!(matches!(e, SelectError::Protocol(_)));
        assert!(e.to_string().contains("private key"));
        assert!(SelectError::EmptySelection.to_string().contains("empty"));
        let he: SelectError = HeError::KeyMismatch.into();
        assert!(he.to_string().contains("homomorphic"));
        assert!(ProtocolError::UnknownTry { try_index: 3 }
            .to_string()
            .contains('3'));
        let stale = ProtocolError::StaleEpoch {
            received: 1,
            current: 2,
        };
        assert!(stale.to_string().contains("stale"));
        let future = ProtocolError::FutureEpoch {
            received: 5,
            current: 2,
        };
        assert!(future.to_string().contains("future"));
        assert!(ProtocolError::NothingToClose { what: "try" }
            .to_string()
            .contains("close"));
    }

    #[test]
    fn channel_errors_display() {
        let auth = ProtocolError::AuthFailure {
            detail: "bad tag".to_string(),
        };
        assert!(auth.to_string().contains("authentication failed"));
        let replay = ProtocolError::ReplayDetected {
            expected: 4,
            got: 2,
        };
        assert!(replay.to_string().contains("expected nonce 4"));
        assert!(replay.to_string().contains("got 2"));
        let downgrade = ProtocolError::DowngradeRefused { magic: *b"DBH2" };
        assert!(downgrade.to_string().contains("DBH2"));
        assert!(downgrade.to_string().contains("authenticated channel"));
        let retries = ProtocolError::RetriesExhausted { attempts: 5 };
        assert!(retries.to_string().contains("5 connect/handshake attempts"));
    }
}
