//! The three protocol roles and their step-wise message handlers.
//!
//! Each role is a state machine exposing `handle(msg) → outgoing envelopes`.
//! What a role *can* know is a property of its struct definition:
//!
//! * [`CoordinatorServer`] has fields for a [`PublicKey`] and ciphertext
//!   folds only — there is no field that could store a [`PrivateKey`] or a
//!   plaintext registry/distribution, and its handler returns
//!   [`ProtocolError::PrivateKeyAtServer`] if a key dispatch tries to smuggle
//!   one in. This is the compile-time embodiment of the paper's
//!   honest-but-curious threat model (§5.3.3).
//! * [`AgentNode`] owns the epoch keypair, decrypts the per-try sums the
//!   server forwards and evaluates the L1 try-test.
//! * [`SelectClientNode`] holds the dispatched key material, fills and
//!   encrypts its own registry (Algorithm 1) and computes its own
//!   participation probability (Eq. 6) from the decrypted overall registry.

use std::collections::BTreeMap;

use dubhe_data::ClassDistribution;
use dubhe_he::{
    EncryptedVector, EpochEncryptor, FixedPointCodec, Keypair, PrecomputedEncryptor, PrivateKey,
    PublicKey, RunningFold,
};
use rand::Rng;

use super::message::{ciphertext_width, Envelope, Party, ProtocolMsg};
use crate::codebook::RegistryLayout;
use crate::config::DubheConfig;
use crate::error::ProtocolError;
use crate::probability::participation_probability;
use crate::registry::{register, Registration};
use crate::secure::SecureTryOutcome;
use crate::selector::ClientId;

/// The coordinator slot of the protocol drivers: where server-bound messages
/// are delivered and tentative tries are announced.
///
/// Three implementations cover the deployment spectrum:
///
/// * [`CoordinatorServer`] — the single in-process coordinator;
/// * [`ShardedCoordinator`](crate::protocol::ShardedCoordinator) — registry
///   positions partitioned across N shard folds, merged on completion;
/// * [`TcpTransport`](crate::protocol::TcpTransport) — a client-side
///   connector that carries every server-bound message over a framed TCP
///   stream to a remote [`CoordinatorListener`](crate::protocol::CoordinatorListener).
///
/// The drivers ([`pump`](crate::protocol::pump),
/// [`run_registration_with`](crate::protocol::run_registration_with),
/// [`run_try`](crate::protocol::run_try)) are generic over this trait, so the
/// same `AgentNode`/`SelectClientNode` exchange runs unchanged against any of
/// the three.
pub trait Coordinator {
    /// Delivers one server-bound envelope, returning the messages it
    /// triggers. Local coordinators unwrap the message; networked ones ship
    /// the whole envelope so the remote side still sees who sent it.
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError>;

    /// Announces one tentative try (§5.3.1): the coordinator will accept
    /// exactly one encrypted distribution from each of `participants` for
    /// `try_index`. Networked implementations carry this over the wire.
    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[ClientId],
    ) -> Result<(), ProtocolError>;
}

/// Advances a running Montgomery-domain fold by one vector (seeding it from
/// the first arrival). Bit-identical to an [`EncryptedVector::add`] chain —
/// see [`RunningFold`] — with one CIOS multiply per position instead of a
/// full multiply + division.
fn fold_in(acc: &mut Option<RunningFold>, v: &EncryptedVector) -> Result<(), ProtocolError> {
    match acc {
        None => {
            *acc = Some(RunningFold::new(v));
            Ok(())
        }
        Some(fold) => Ok(fold.fold(v)?),
    }
}

/// Per-try aggregation state on the server.
#[derive(Debug, Clone)]
struct TryFold {
    /// The announced participant set, sorted.
    participants: Vec<ClientId>,
    /// Which announced participants have contributed so far.
    contributed: Vec<bool>,
    received: usize,
    fold: Option<RunningFold>,
}

/// The honest-but-curious coordinator. Holds the epoch [`PublicKey`] and
/// running ciphertext folds — nothing else. Registries are folded into the
/// running homomorphic sum *as they arrive*, so server memory is
/// `O(registry_len)` regardless of the client count.
#[derive(Debug)]
pub struct CoordinatorServer {
    public_key: Option<PublicKey>,
    /// Which client ids have registered (length = expected registrations).
    registered: Vec<bool>,
    registrations_received: usize,
    registry_fold: Option<RunningFold>,
    tries: BTreeMap<usize, TryFold>,
    last_verdict: Option<(usize, f64)>,
    bytes_received: usize,
    messages_received: usize,
}

impl CoordinatorServer {
    /// A server expecting `expected_registrations` registry uploads this
    /// epoch (0 for a pure multi-time session).
    pub fn new(expected_registrations: usize) -> Self {
        CoordinatorServer {
            public_key: None,
            registered: vec![false; expected_registrations],
            registrations_received: 0,
            registry_fold: None,
            tries: BTreeMap::new(),
            last_verdict: None,
            bytes_received: 0,
            messages_received: 0,
        }
    }

    /// A server that already learned the epoch public key out-of-band (used
    /// by sessions that skip the key-dispatch step).
    pub fn with_public_key(public_key: PublicKey, expected_registrations: usize) -> Self {
        CoordinatorServer {
            public_key: Some(public_key),
            ..CoordinatorServer::new(expected_registrations)
        }
    }

    /// The epoch public key, once dispatched.
    pub fn public_key(&self) -> Option<&PublicKey> {
        self.public_key.as_ref()
    }

    /// The running encrypted overall registry (complete once every expected
    /// registry arrived), converted out of the fold's Montgomery domain on
    /// demand.
    pub fn encrypted_total(&self) -> Option<EncryptedVector> {
        self.registry_fold.as_ref().map(RunningFold::total)
    }

    /// Canonical wire bytes received so far.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Messages received so far.
    pub fn messages_received(&self) -> usize {
        self.messages_received
    }

    /// The agent's verdict for the last multi-time round, if any.
    pub fn last_verdict(&self) -> Option<(usize, f64)> {
        self.last_verdict
    }

    /// Announces one tentative try (§5.3.1: the server performs the `H`
    /// tentative selections): the server will fold exactly one encrypted
    /// distribution from each of `participants` for `try_index` and then
    /// forward the sum to the agent. Contributions from anyone else — or a
    /// second contribution from the same client — are rejected.
    pub fn announce_try(&mut self, try_index: usize, participants: &[ClientId]) {
        let mut sorted = participants.to_vec();
        sorted.sort_unstable();
        let contributed = vec![false; sorted.len()];
        self.tries.insert(
            try_index,
            TryFold {
                participants: sorted,
                contributed,
                received: 0,
                fold: None,
            },
        );
    }

    /// Handles one incoming message, returning the messages it triggers.
    pub fn handle(&mut self, msg: ProtocolMsg) -> Result<Vec<Envelope>, ProtocolError> {
        self.messages_received += 1;
        self.bytes_received += msg.wire_bytes();
        match msg {
            ProtocolMsg::PublicKeyDispatch {
                public_key,
                private_key,
            } => {
                if private_key.is_some() {
                    return Err(ProtocolError::PrivateKeyAtServer);
                }
                self.public_key = Some(public_key);
                Ok(Vec::new())
            }
            ProtocolMsg::EncryptedRegistry { client, registry } => {
                // Exactly one registry per known client, and none once the
                // epoch total has been broadcast: duplicates, strangers and
                // stragglers would silently corrupt the homomorphic sum
                // (a real concern once a retrying networked transport sits
                // underneath), so they are protocol errors instead.
                if self.registrations_received == self.registered.len() {
                    return Err(ProtocolError::EpochComplete { client });
                }
                match self.registered.get_mut(client) {
                    None => {
                        return Err(ProtocolError::UnknownContributor {
                            client,
                            try_index: None,
                        })
                    }
                    Some(seen) if *seen => {
                        return Err(ProtocolError::DuplicateContribution {
                            client,
                            try_index: None,
                        })
                    }
                    Some(seen) => *seen = true,
                }
                fold_in(&mut self.registry_fold, &registry)?;
                self.registrations_received += 1;
                if self.registrations_received == self.registered.len() {
                    let total = self
                        .registry_fold
                        .as_ref()
                        .expect("at least one registry folded")
                        .total();
                    // Fig. 4 step 3: broadcast Enc(R_A) to every client and
                    // the agent; nobody but the key holders can open it.
                    let mut out = Vec::with_capacity(self.registered.len() + 1);
                    for id in 0..self.registered.len() {
                        out.push(Envelope {
                            from: Party::Server,
                            to: Party::Client(id),
                            msg: ProtocolMsg::EncryptedTotalBroadcast {
                                total: total.clone(),
                            },
                        });
                    }
                    out.push(Envelope {
                        from: Party::Server,
                        to: Party::Agent,
                        msg: ProtocolMsg::EncryptedTotalBroadcast { total },
                    });
                    Ok(out)
                } else {
                    Ok(Vec::new())
                }
            }
            ProtocolMsg::EncryptedDistribution {
                client,
                try_index,
                distribution,
            } => {
                let slot = self
                    .tries
                    .get_mut(&try_index)
                    .ok_or(ProtocolError::UnknownTry { try_index })?;
                let idx = slot.participants.binary_search(&client).map_err(|_| {
                    ProtocolError::UnknownContributor {
                        client,
                        try_index: Some(try_index),
                    }
                })?;
                if slot.contributed[idx] {
                    return Err(ProtocolError::DuplicateContribution {
                        client,
                        try_index: Some(try_index),
                    });
                }
                slot.contributed[idx] = true;
                fold_in(&mut slot.fold, &distribution)?;
                slot.received += 1;
                if slot.received == slot.participants.len() {
                    let slot = self.tries.remove(&try_index).expect("present");
                    Ok(vec![Envelope {
                        from: Party::Server,
                        to: Party::Agent,
                        msg: ProtocolMsg::EncryptedDistributionSum {
                            try_index,
                            contributors: slot.received,
                            sum: slot.fold.expect("non-empty try").total(),
                        },
                    }])
                } else {
                    Ok(Vec::new())
                }
            }
            ProtocolMsg::TryVerdict { best_try, distance } => {
                self.last_verdict = Some((best_try, distance));
                Ok(Vec::new())
            }
            other => Err(ProtocolError::UnexpectedMessage {
                role: "server",
                kind: other.kind(),
            }),
        }
    }
}

impl Coordinator for CoordinatorServer {
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError> {
        CoordinatorServer::handle(self, envelope.msg)
    }

    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[ClientId],
    ) -> Result<(), ProtocolError> {
        CoordinatorServer::announce_try(self, try_index, participants);
        Ok(())
    }
}

/// The keypair-owning agent: dispatches the epoch key, decrypts the per-try
/// sums the server forwards, and issues the L1 try-test verdict.
#[derive(Debug)]
pub struct AgentNode {
    keypair: Keypair,
    codec: FixedPointCodec,
    classes: usize,
    overall_registry: Option<Vec<u64>>,
    expected_tries: usize,
    try_outcomes: BTreeMap<usize, SecureTryOutcome>,
    verdict: Option<(usize, f64)>,
}

impl AgentNode {
    /// Generates a fresh epoch keypair (and pays the key's one-time
    /// fixed-base precomputation so every client encrypts on the fast path).
    pub fn new<R: Rng + ?Sized>(key_bits: u64, classes: usize, rng: &mut R) -> Self {
        let keypair = Keypair::generate(key_bits, rng);
        let _ = PrecomputedEncryptor::new(&keypair.public, rng);
        AgentNode::from_keypair(keypair, classes)
    }

    /// Wraps existing key material (used by compatibility drivers whose
    /// callers generated the keypair themselves).
    pub fn from_keypair(keypair: Keypair, classes: usize) -> Self {
        AgentNode {
            keypair,
            codec: FixedPointCodec::default(),
            classes,
            overall_registry: None,
            expected_tries: 0,
            try_outcomes: BTreeMap::new(),
            verdict: None,
        }
    }

    /// The epoch public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.keypair.public
    }

    /// The epoch private key (the agent is its only protocol-level owner
    /// besides the clients it dispatches to).
    pub fn private_key(&self) -> &PrivateKey {
        &self.keypair.private
    }

    /// Fig. 4 step 1: key dispatch. Clients receive the full keypair (they
    /// decrypt the total themselves); the server receives the public key
    /// only. The server copy is emitted first so it can verify uploads.
    pub fn dispatch_keys(&self, clients: usize) -> Vec<Envelope> {
        let mut out = Vec::with_capacity(clients + 1);
        out.push(Envelope {
            from: Party::Agent,
            to: Party::Server,
            msg: ProtocolMsg::PublicKeyDispatch {
                public_key: self.keypair.public.clone(),
                private_key: None,
            },
        });
        for id in 0..clients {
            out.push(Envelope {
                from: Party::Agent,
                to: Party::Client(id),
                msg: ProtocolMsg::PublicKeyDispatch {
                    public_key: self.keypair.public.clone(),
                    private_key: Some(self.keypair.private.clone()),
                },
            });
        }
        out
    }

    /// Starts a multi-time round of `h` tries: clears previous outcomes; the
    /// verdict is emitted after the `h`-th sum is decrypted.
    pub fn expect_tries(&mut self, h: usize) {
        self.expected_tries = h;
        self.try_outcomes.clear();
        self.verdict = None;
    }

    /// The overall registry decrypted from the server broadcast, if seen.
    pub fn overall_registry(&self) -> Option<&[u64]> {
        self.overall_registry.as_deref()
    }

    /// The per-try outcomes decrypted so far, in try order.
    pub fn try_outcomes(&self) -> Vec<SecureTryOutcome> {
        self.try_outcomes.values().cloned().collect()
    }

    /// The verdict of the completed multi-time round, if all tries arrived.
    pub fn verdict(&self) -> Option<(usize, f64)> {
        self.verdict
    }

    /// Handles one incoming message, returning the messages it triggers.
    pub fn handle(&mut self, msg: ProtocolMsg) -> Result<Vec<Envelope>, ProtocolError> {
        match msg {
            ProtocolMsg::EncryptedTotalBroadcast { total } => {
                self.overall_registry = Some(total.decrypt_u64(&self.keypair.private)?);
                Ok(Vec::new())
            }
            ProtocolMsg::EncryptedDistributionSum {
                try_index,
                contributors,
                sum,
            } => {
                let ciphertext_bytes =
                    contributors * self.classes * ciphertext_width(&self.keypair.public);
                let decrypted = sum.decrypt_u64(&self.keypair.private)?;
                let population = self.codec.decode_average(&decrypted, contributors);
                let p_u = vec![1.0 / self.classes as f64; self.classes];
                let distance = dubhe_data::l1_distance(&population, &p_u);
                self.try_outcomes.insert(
                    try_index,
                    SecureTryOutcome {
                        population,
                        distance_to_uniform: distance,
                        ciphertext_bytes,
                        messages: contributors,
                    },
                );
                if self.expected_tries > 0 && self.try_outcomes.len() == self.expected_tries {
                    let (best_try, distance) = self
                        .try_outcomes
                        .iter()
                        .min_by(|a, b| {
                            a.1.distance_to_uniform
                                .partial_cmp(&b.1.distance_to_uniform)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(&i, o)| (i, o.distance_to_uniform))
                        .expect("expected_tries > 0");
                    self.verdict = Some((best_try, distance));
                    return Ok(vec![Envelope {
                        from: Party::Agent,
                        to: Party::Server,
                        msg: ProtocolMsg::TryVerdict { best_try, distance },
                    }]);
                }
                Ok(Vec::new())
            }
            other => Err(ProtocolError::UnexpectedMessage {
                role: "agent",
                kind: other.kind(),
            }),
        }
    }
}

/// The registration plan a full selection client executes on key receipt.
#[derive(Debug, Clone)]
struct RegistrationPlan {
    layout: RegistryLayout,
    thresholds: Vec<f64>,
    k: usize,
}

/// An ordinary selection client: fills and encrypts its registry, decrypts
/// the broadcast total with the dispatched key, and computes its own
/// participation probability.
#[derive(Debug)]
pub struct SelectClientNode {
    id: ClientId,
    distribution: ClassDistribution,
    codec: FixedPointCodec,
    plan: Option<RegistrationPlan>,
    public_key: Option<PublicKey>,
    private_key: Option<PrivateKey>,
    encryptor: Option<EpochEncryptor>,
    registration: Option<Registration>,
    overall_registry: Option<Vec<u64>>,
}

impl SelectClientNode {
    /// A client that will register (Algorithm 1) under `config` as soon as
    /// the epoch key arrives.
    pub fn new(id: ClientId, distribution: ClassDistribution, config: &DubheConfig) -> Self {
        let plan = RegistrationPlan {
            layout: config.validate(),
            thresholds: config.effective_thresholds(),
            k: config.k,
        };
        SelectClientNode {
            plan: Some(plan),
            ..SelectClientNode::without_registration(id, distribution)
        }
    }

    /// A client that only takes part in multi-time distribution exchanges
    /// (no registration phase).
    pub fn without_registration(id: ClientId, distribution: ClassDistribution) -> Self {
        SelectClientNode {
            id,
            distribution,
            codec: FixedPointCodec::default(),
            plan: None,
            public_key: None,
            private_key: None,
            encryptor: None,
            registration: None,
            overall_registry: None,
        }
    }

    /// The client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Installs epoch key material without going through a dispatch message
    /// (used by compatibility drivers).
    pub fn install_keys(&mut self, public: PublicKey, private: PrivateKey) {
        self.public_key = Some(public);
        self.private_key = Some(private);
    }

    /// The client's registration, once the key arrived and Algorithm 1 ran.
    pub fn registration(&self) -> Option<&Registration> {
        self.registration.as_ref()
    }

    /// The overall registry this client decrypted from the broadcast.
    pub fn overall_registry(&self) -> Option<&[u64]> {
        self.overall_registry.as_deref()
    }

    /// Eq. 6: the participation probability this client computes *for
    /// itself* from the decrypted overall registry and its own category.
    pub fn participation_probability(&self) -> Option<f64> {
        let overall = self.overall_registry.as_ref()?;
        let registration = self.registration.as_ref()?;
        let k = self.plan.as_ref()?.k;
        Some(participation_probability(overall, registration.position, k))
    }

    /// The client's epoch encryptor, built on first use. Clients hold the
    /// dispatched *keypair*, so this is normally the CRT-split
    /// [`CrtEncryptor`](dubhe_he::CrtEncryptor) fast path; a client that
    /// somehow only has the public half falls back to the
    /// [`PrecomputedEncryptor`] — the ciphertexts are bit-identical either
    /// way.
    fn encryptor<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<&EpochEncryptor, ProtocolError> {
        if self.encryptor.is_none() {
            let pk = self
                .public_key
                .clone()
                .ok_or(ProtocolError::MissingKeyMaterial { role: "client" })?;
            self.encryptor = Some(EpochEncryptor::for_key_material(
                &pk,
                self.private_key.as_ref(),
                rng,
            ));
        }
        Ok(self.encryptor.as_ref().expect("just installed"))
    }

    /// §5.3.1: encrypts this client's scaled label distribution for one
    /// tentative try and addresses it to the server.
    pub fn encrypt_distribution<R: Rng + ?Sized>(
        &mut self,
        try_index: usize,
        rng: &mut R,
    ) -> Result<Envelope, ProtocolError> {
        let scaled = self.codec.encode_vec(&self.distribution.proportions());
        let encryptor = self.encryptor(rng)?;
        let distribution = EncryptedVector::encrypt_u64_with(encryptor, &scaled, rng);
        Ok(Envelope {
            from: Party::Client(self.id),
            to: Party::Server,
            msg: ProtocolMsg::EncryptedDistribution {
                client: self.id,
                try_index,
                distribution,
            },
        })
    }

    /// Handles one incoming message, returning the messages it triggers.
    pub fn handle<R: Rng + ?Sized>(
        &mut self,
        msg: ProtocolMsg,
        rng: &mut R,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        match msg {
            ProtocolMsg::PublicKeyDispatch {
                public_key,
                private_key,
            } => {
                let private_key =
                    private_key.ok_or(ProtocolError::MissingKeyMaterial { role: "client" })?;
                self.install_keys(public_key, private_key);
                if let Some(plan) = self.plan.clone() {
                    // Fig. 4 step 2: register, encrypt, upload.
                    let registration = register(&self.distribution, &plan.layout, &plan.thresholds);
                    let encryptor = self.encryptor(rng)?;
                    let encrypted =
                        EncryptedVector::encrypt_u64_with(encryptor, &registration.registry, rng);
                    self.registration = Some(registration);
                    Ok(vec![Envelope {
                        from: Party::Client(self.id),
                        to: Party::Server,
                        msg: ProtocolMsg::EncryptedRegistry {
                            client: self.id,
                            registry: encrypted,
                        },
                    }])
                } else {
                    Ok(Vec::new())
                }
            }
            ProtocolMsg::EncryptedTotalBroadcast { total } => {
                let sk = self
                    .private_key
                    .as_ref()
                    .ok_or(ProtocolError::MissingKeyMaterial { role: "client" })?;
                self.overall_registry = Some(total.decrypt_u64(sk)?);
                Ok(Vec::new())
            }
            other => Err(ProtocolError::UnexpectedMessage {
                role: "client",
                kind: other.kind(),
            }),
        }
    }
}
