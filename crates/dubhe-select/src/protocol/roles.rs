//! The three protocol roles and their step-wise message handlers.
//!
//! Each role is a state machine exposing `handle(msg) → outgoing envelopes`.
//! What a role *can* know is a property of its struct definition:
//!
//! * [`CoordinatorServer`] has fields for a [`PublicKey`] and ciphertext
//!   folds only — there is no field that could store a [`PrivateKey`] or a
//!   plaintext registry/distribution, and its handler returns
//!   [`ProtocolError::PrivateKeyAtServer`] if a key dispatch tries to smuggle
//!   one in. This is the compile-time embodiment of the paper's
//!   honest-but-curious threat model (§5.3.3).
//! * [`AgentNode`] owns the epoch keypair, decrypts the per-try sums the
//!   server forwards and evaluates the L1 try-test.
//! * [`SelectClientNode`] holds the dispatched key material, fills and
//!   encrypts its own registry (Algorithm 1) and computes its own
//!   participation probability (Eq. 6) from the decrypted overall registry.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dubhe_data::ClassDistribution;
use dubhe_he::{
    codec as he_codec, packed_vector_wire_bytes, EncryptedVector, EpochEncryptor, FixedPointCodec,
    HeadroomModel, Keypair, PackedEncryptedVector, PackedRunningFold, PrecomputedEncryptor,
    PrivateKey, PublicKey, RunningFold,
};
use rand::Rng;

use super::codec::RegistryFrame;
use super::message::{ciphertext_width, Envelope, MsgKind, Party, ProtocolMsg};
use super::packing::PackingPolicy;
use crate::codebook::RegistryLayout;
use crate::config::DubheConfig;
use crate::error::ProtocolError;
use crate::probability::participation_probability;
use crate::registry::{register, Registration};
use crate::secure::SecureTryOutcome;
use crate::selector::ClientId;

/// The coordinator slot of the protocol drivers: where server-bound messages
/// are delivered and tentative tries are announced.
///
/// Three implementations cover the deployment spectrum:
///
/// * [`CoordinatorServer`] — the single in-process coordinator;
/// * [`ShardedCoordinator`](crate::protocol::ShardedCoordinator) — registry
///   positions partitioned across N shard folds, merged on completion;
/// * [`TcpTransport`](crate::protocol::TcpTransport) — a client-side
///   connector that carries every server-bound message over a framed TCP
///   stream to a remote [`CoordinatorListener`](crate::protocol::CoordinatorListener).
///
/// The drivers ([`pump`](crate::protocol::pump),
/// [`run_registration_with`](crate::protocol::run_registration_with),
/// [`run_try`](crate::protocol::run_try)) are generic over this trait, so the
/// same `AgentNode`/`SelectClientNode` exchange runs unchanged against any of
/// the three.
pub trait Coordinator {
    /// Delivers one server-bound envelope, returning the messages it
    /// triggers. Local coordinators unwrap the message; networked ones ship
    /// the whole envelope so the remote side still sees who sent it.
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError>;

    /// Announces one tentative try (§5.3.1): the coordinator will accept
    /// exactly one encrypted distribution from each of `participants` for
    /// `try_index`. Networked implementations carry this over the wire.
    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[ClientId],
    ) -> Result<(), ProtocolError>;

    /// Opens a new registration epoch with a (possibly resized) cohort:
    /// clients may have joined or left since the last epoch. Resets every
    /// registration and try fold; frames from older epochs are refused with
    /// [`ProtocolError::StaleEpoch`] afterwards.
    fn begin_epoch(
        &mut self,
        epoch: u64,
        expected_registrations: usize,
    ) -> Result<(), ProtocolError>;

    /// Closes the registration phase with whatever registries have arrived —
    /// the explicit partial-cohort fold a straggler deadline triggers. The
    /// total is broadcast to the clients that did register (and the agent);
    /// later registries are refused. Errs with
    /// [`ProtocolError::NothingToClose`] if no registry ever arrived.
    fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError>;

    /// Closes one tentative try with whatever contributions have arrived,
    /// forwarding the partial sum (and its true contributor count, which is
    /// what the agent divides by) to the agent. Errs with
    /// [`ProtocolError::UnknownTry`] for a try never announced and
    /// [`ProtocolError::NothingToClose`] if nobody contributed (the try is
    /// abandoned either way — never a hang).
    fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError>;

    /// Delivers one deferred `DBH2` registry upload (see [`RegistryFrame`]).
    ///
    /// The default materialises the envelope and routes through
    /// [`deliver`](Self::deliver) — correct for every implementation. Local
    /// coordinators override it to decode the ciphertext block as a
    /// borrowed view and fold residues straight out of the frame bytes,
    /// with the same epoch/slot/packing checks and the same typed errors
    /// as the eager path.
    fn deliver_registry_frame(
        &mut self,
        frame: RegistryFrame,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        self.deliver(frame.materialize()?)
    }
}

/// The record a coordinator keeps of every closed aggregation: who was
/// expected, who actually contributed, and whether the close was partial
/// (straggler deadline / explicit churn) or natural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortOutcome {
    /// The epoch the aggregation ran in.
    pub epoch: u64,
    /// The tentative try, or `None` for the registration fold.
    pub try_index: Option<usize>,
    /// How many contributions were expected.
    pub expected: usize,
    /// How many actually arrived before the close.
    pub contributed: usize,
    /// `true` if the cohort was closed before everyone contributed.
    pub partial: bool,
}

/// Advances a running Montgomery-domain fold by one vector (seeding it from
/// the first arrival). Bit-identical to an [`EncryptedVector::add`] chain —
/// see [`RunningFold`] — with one CIOS multiply per position instead of a
/// full multiply + division.
fn fold_in(acc: &mut Option<RunningFold>, v: &EncryptedVector) -> Result<(), ProtocolError> {
    match acc {
        None => {
            *acc = Some(RunningFold::new(v));
            Ok(())
        }
        Some(fold) => Ok(fold.fold(v)?),
    }
}

/// The zero-copy counterpart of [`fold_in`]: seeds or advances the fold
/// straight from a borrowed frame view — no per-element ciphertext is ever
/// materialised. Bit-identical to [`fold_in`] of the decoded vector.
fn fold_in_view(
    acc: &mut Option<RunningFold>,
    v: &he_codec::EncryptedVectorView<'_>,
) -> Result<(), ProtocolError> {
    match acc {
        None => {
            *acc = Some(RunningFold::from_view(v));
            Ok(())
        }
        Some(fold) => Ok(fold.fold_view(v)?),
    }
}

/// The packed counterpart of [`fold_in`]: seeds or advances a
/// [`PackedRunningFold`], whose [`HeadroomModel`] refuses foreign slot
/// layouts and any contribution past the declared client budget *before*
/// the multiply — a refused fold leaves the running state untouched.
fn fold_in_packed(
    acc: &mut Option<PackedRunningFold>,
    v: &PackedEncryptedVector,
    model: HeadroomModel,
) -> Result<(), ProtocolError> {
    match acc {
        None => {
            *acc = Some(PackedRunningFold::new(v, model)?);
            Ok(())
        }
        Some(fold) => Ok(fold.fold(v)?),
    }
}

/// Per-try aggregation state on the server.
#[derive(Debug, Clone)]
struct TryFold {
    /// The announced participant set, sorted.
    participants: Vec<ClientId>,
    /// Which announced participants have contributed so far.
    contributed: Vec<bool>,
    received: usize,
    fold: Option<RunningFold>,
    /// The packed fold when the coordinator's policy packs tries (the plain
    /// `fold` stays `None` then, and vice versa).
    packed_fold: Option<PackedRunningFold>,
    /// When the try was announced — the straggler clock.
    opened: Instant,
}

/// The honest-but-curious coordinator. Holds the epoch [`PublicKey`] and
/// running ciphertext folds — nothing else. Registries are folded into the
/// running homomorphic sum *as they arrive*, so server memory is
/// `O(registry_len)` regardless of the client count.
#[derive(Debug)]
pub struct CoordinatorServer {
    public_key: Option<PublicKey>,
    /// Which client ids have registered (length = expected registrations).
    registered: Vec<bool>,
    registrations_received: usize,
    registry_fold: Option<RunningFold>,
    /// The packed registry fold when a [`PackingPolicy`] is configured (the
    /// plain `registry_fold` stays `None` then, and vice versa).
    packed_registry_fold: Option<PackedRunningFold>,
    /// When set, the coordinator accepts **only** packed frames for the
    /// phases the policy covers, validates every arrival against the
    /// policy's slot layout, and refuses any fold past the declared client
    /// budget — the executable headroom model.
    packing: Option<PackingPolicy>,
    /// `true` once the registration total has been broadcast — naturally or
    /// by a partial close. Later registries are refused either way.
    registration_closed: bool,
    /// The current key-rotation epoch. Advanced by a key dispatch stamped
    /// with a newer epoch, or explicitly via [`begin_epoch`](Self::begin_epoch).
    epoch: u64,
    /// When the current registration phase opened — the straggler clock.
    registration_opened: Instant,
    /// If set, [`close_expired`](Self::close_expired) partially closes any
    /// aggregation open longer than this.
    straggler_deadline: Option<Duration>,
    tries: BTreeMap<usize, TryFold>,
    cohort_outcomes: Vec<CohortOutcome>,
    last_verdict: Option<(usize, f64)>,
    bytes_received: usize,
    messages_received: usize,
}

impl CoordinatorServer {
    /// A server expecting `expected_registrations` registry uploads this
    /// epoch (0 for a pure multi-time session).
    pub fn new(expected_registrations: usize) -> Self {
        CoordinatorServer {
            public_key: None,
            registered: vec![false; expected_registrations],
            registrations_received: 0,
            registry_fold: None,
            packed_registry_fold: None,
            packing: None,
            registration_closed: false,
            epoch: 0,
            registration_opened: Instant::now(),
            straggler_deadline: None,
            tries: BTreeMap::new(),
            cohort_outcomes: Vec::new(),
            last_verdict: None,
            bytes_received: 0,
            messages_received: 0,
        }
    }

    /// Builder: sets the straggler deadline after which
    /// [`close_expired`](Self::close_expired) partially closes an open
    /// aggregation. No deadline (the default) means aggregations stay open
    /// until closed explicitly.
    pub fn with_straggler_deadline(mut self, deadline: Duration) -> Self {
        self.straggler_deadline = Some(deadline);
        self
    }

    /// Builder: installs a [`PackingPolicy`]. From here on the coordinator
    /// accepts only packed registries (and, if the policy packs tries, only
    /// packed distributions), folds them lane-wise under the policy's
    /// headroom budget, and emits packed broadcasts/sums. Element-wise
    /// frames for a packed phase — and packed frames without a policy — are
    /// [`ProtocolError::PackingDisagreement`].
    pub fn with_packing(mut self, policy: PackingPolicy) -> Self {
        self.packing = Some(policy);
        self
    }

    /// The installed packing policy, if any.
    pub fn packing(&self) -> Option<&PackingPolicy> {
        self.packing.as_ref()
    }

    /// A server that already learned the epoch public key out-of-band (used
    /// by sessions that skip the key-dispatch step).
    pub fn with_public_key(public_key: PublicKey, expected_registrations: usize) -> Self {
        CoordinatorServer {
            public_key: Some(public_key),
            ..CoordinatorServer::new(expected_registrations)
        }
    }

    /// The epoch public key, once dispatched.
    pub fn public_key(&self) -> Option<&PublicKey> {
        self.public_key.as_ref()
    }

    /// The running encrypted overall registry (complete once every expected
    /// registry arrived), converted out of the fold's Montgomery domain on
    /// demand.
    pub fn encrypted_total(&self) -> Option<EncryptedVector> {
        self.registry_fold.as_ref().map(RunningFold::total)
    }

    /// The running **packed** encrypted overall registry, when a packing
    /// policy is installed and at least one packed registry arrived.
    pub fn packed_encrypted_total(&self) -> Option<PackedEncryptedVector> {
        self.packed_registry_fold
            .as_ref()
            .map(PackedRunningFold::total)
    }

    /// Canonical wire bytes received so far.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Messages received so far.
    pub fn messages_received(&self) -> usize {
        self.messages_received
    }

    /// The agent's verdict for the last multi-time round, if any.
    pub fn last_verdict(&self) -> Option<(usize, f64)> {
        self.last_verdict
    }

    /// The coordinator's current key-rotation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Every closed aggregation so far (registrations and tries, partial and
    /// natural), in close order.
    pub fn cohort_outcomes(&self) -> &[CohortOutcome] {
        &self.cohort_outcomes
    }

    /// Checks an incoming envelope's epoch stamp. A key dispatch from a
    /// newer epoch advances the coordinator (same cohort size); anything
    /// else from the wrong epoch is a typed error.
    fn check_epoch(&mut self, envelope: &Envelope) -> Result<(), ProtocolError> {
        match envelope.epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Equal => Ok(()),
            std::cmp::Ordering::Less => Err(ProtocolError::StaleEpoch {
                received: envelope.epoch,
                current: self.epoch,
            }),
            std::cmp::Ordering::Greater => {
                if matches!(envelope.msg, ProtocolMsg::PublicKeyDispatch { .. }) {
                    let expected = self.registered.len();
                    self.enter_epoch(envelope.epoch, expected);
                    Ok(())
                } else {
                    Err(ProtocolError::FutureEpoch {
                        received: envelope.epoch,
                        current: self.epoch,
                    })
                }
            }
        }
    }

    /// Resets all per-epoch aggregation state for `epoch` with a cohort of
    /// `expected_registrations`.
    fn enter_epoch(&mut self, epoch: u64, expected_registrations: usize) {
        self.epoch = epoch;
        self.registered = vec![false; expected_registrations];
        self.registrations_received = 0;
        self.registry_fold = None;
        self.packed_registry_fold = None;
        self.registration_closed = false;
        self.registration_opened = Instant::now();
        self.tries.clear();
        self.last_verdict = None;
    }

    /// Explicitly opens a new epoch with a resized cohort (clients joined or
    /// left). The [`Coordinator`] trait routes here.
    pub fn begin_epoch(&mut self, epoch: u64, expected_registrations: usize) {
        self.enter_epoch(epoch, expected_registrations);
    }

    /// The registration broadcast for the current fold: `Enc(R_A)` to every
    /// *contributing* client plus the agent, stamped with the current epoch.
    /// Packed folds broadcast packed totals — same addressees, same order.
    fn registration_broadcast(&self) -> Vec<Envelope> {
        let msg = match (&self.registry_fold, &self.packed_registry_fold) {
            (Some(fold), _) => ProtocolMsg::EncryptedTotalBroadcast {
                total: fold.total(),
            },
            (None, Some(fold)) => ProtocolMsg::PackedTotalBroadcast {
                total: fold.total(),
            },
            (None, None) => unreachable!("caller checked a fold exists"),
        };
        let mut out = Vec::with_capacity(self.registrations_received + 1);
        for (id, seen) in self.registered.iter().enumerate() {
            if *seen {
                out.push(Envelope {
                    from: Party::Server,
                    to: Party::Client(id),
                    epoch: self.epoch,
                    msg: msg.clone(),
                });
            }
        }
        out.push(Envelope {
            from: Party::Server,
            to: Party::Agent,
            epoch: self.epoch,
            msg,
        });
        out
    }

    /// Closes registration with whatever registries arrived — the explicit
    /// partial-cohort fold. See [`Coordinator::close_registration`].
    pub fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        if self.registration_closed
            || (self.registry_fold.is_none() && self.packed_registry_fold.is_none())
        {
            return Err(ProtocolError::NothingToClose {
                what: "registration",
            });
        }
        self.registration_closed = true;
        self.cohort_outcomes.push(CohortOutcome {
            epoch: self.epoch,
            try_index: None,
            expected: self.registered.len(),
            contributed: self.registrations_received,
            partial: true,
        });
        Ok(self.registration_broadcast())
    }

    /// Closes one tentative try with whatever contributions arrived. See
    /// [`Coordinator::close_try`].
    pub fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        let slot = self
            .tries
            .remove(&try_index)
            .ok_or(ProtocolError::UnknownTry { try_index })?;
        self.cohort_outcomes.push(CohortOutcome {
            epoch: self.epoch,
            try_index: Some(try_index),
            expected: slot.participants.len(),
            contributed: slot.received,
            partial: true,
        });
        let msg = match (slot.fold, slot.packed_fold) {
            (None, None) => return Err(ProtocolError::NothingToClose { what: "try" }),
            (Some(fold), _) => ProtocolMsg::EncryptedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: fold.total(),
            },
            (None, Some(fold)) => ProtocolMsg::PackedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: fold.total(),
            },
        };
        Ok(vec![Envelope {
            from: Party::Server,
            to: Party::Agent,
            epoch: self.epoch,
            msg,
        }])
    }

    /// Partially closes every aggregation open longer than the configured
    /// straggler deadline (a no-op without one): expired tries forward their
    /// partial sums, an expired registration broadcasts its partial total.
    /// Expired tries nobody contributed to are abandoned (recorded, no
    /// envelope). This is what guarantees a round **never hangs** on a
    /// silently dropped client.
    pub fn close_expired(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        let Some(deadline) = self.straggler_deadline else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let expired: Vec<usize> = self
            .tries
            .iter()
            .filter(|(_, slot)| slot.opened.elapsed() >= deadline)
            .map(|(&i, _)| i)
            .collect();
        for try_index in expired {
            match self.close_try(try_index) {
                Ok(envelopes) => out.extend(envelopes),
                Err(ProtocolError::NothingToClose { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        if !self.registration_closed
            && self.registry_fold.is_some()
            && self.registration_opened.elapsed() >= deadline
        {
            out.extend(self.close_registration()?);
        }
        Ok(out)
    }

    /// Serializes the coordinator's registration-phase state for crash
    /// recovery: epoch, cohort bitmap, accounting, public key and the
    /// registry fold (via [`RunningFold::snapshot`] — raw in-domain
    /// residues, no re-folding on restore). In-flight tries are *not*
    /// captured: a restarted coordinator re-announces them.
    pub fn snapshot(&self) -> Result<Vec<u8>, ProtocolError> {
        let mut out = Vec::new();
        he_codec::put_u64(&mut out, self.epoch);
        out.push(self.registration_closed as u8);
        he_codec::put_u32(&mut out, self.registered.len() as u32);
        out.extend(self.registered.iter().map(|&b| b as u8));
        he_codec::put_u64(&mut out, self.registrations_received as u64);
        he_codec::put_u64(&mut out, self.bytes_received as u64);
        he_codec::put_u64(&mut out, self.messages_received as u64);
        match &self.public_key {
            None => out.push(0),
            Some(pk) => {
                out.push(1);
                he_codec::encode_public_key(pk, &mut out);
            }
        }
        match &self.packing {
            None => out.push(0),
            Some(policy) => {
                out.push(1);
                policy.encode(&mut out);
            }
        }
        // Fold discriminator: 0 = no fold yet, 1 = element-wise
        // `RunningFold`, 2 = `PackedRunningFold` (which embeds its own
        // headroom model, re-validated on restore).
        match (&self.registry_fold, &self.packed_registry_fold) {
            (None, None) => out.push(0),
            (Some(fold), None) => {
                out.push(1);
                let snap = fold.snapshot().map_err(ProtocolError::He)?;
                he_codec::put_u32(&mut out, snap.len() as u32);
                out.extend_from_slice(&snap);
            }
            (None, Some(fold)) => {
                out.push(2);
                let snap = fold.snapshot().map_err(ProtocolError::He)?;
                he_codec::put_u32(&mut out, snap.len() as u32);
                out.extend_from_slice(&snap);
            }
            (Some(_), Some(_)) => {
                unreachable!("a coordinator folds either packed or element-wise registries")
            }
        }
        Ok(out)
    }

    /// Rebuilds a coordinator from a [`snapshot`](Self::snapshot). The
    /// restored fold is bit-identical to the one that was serialized, so
    /// resuming mid-registration and finishing produces exactly the total an
    /// uninterrupted coordinator would have broadcast.
    pub fn restore(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let cur = &mut &bytes[..];
        let take_flag = |cur: &mut &[u8]| -> Result<bool, ProtocolError> {
            let b = he_codec::take_bytes(cur, 1).map_err(ProtocolError::He)?[0];
            match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(ProtocolError::MalformedFrame {
                    detail: "snapshot flag byte is not 0 or 1".into(),
                }),
            }
        };
        let epoch = he_codec::take_u64(cur).map_err(ProtocolError::He)?;
        let registration_closed = take_flag(cur)?;
        let expected = he_codec::take_u32(cur).map_err(ProtocolError::He)? as usize;
        if expected > cur.len() {
            return Err(ProtocolError::MalformedFrame {
                detail: "snapshot cohort bitmap overruns the payload".into(),
            });
        }
        let registered: Vec<bool> = he_codec::take_bytes(cur, expected)
            .map_err(ProtocolError::He)?
            .iter()
            .map(|&b| b != 0)
            .collect();
        let registrations_received = he_codec::take_u64(cur).map_err(ProtocolError::He)? as usize;
        if registrations_received != registered.iter().filter(|&&b| b).count() {
            return Err(ProtocolError::MalformedFrame {
                detail: "snapshot registration count disagrees with its cohort bitmap".into(),
            });
        }
        let bytes_received = he_codec::take_u64(cur).map_err(ProtocolError::He)? as usize;
        let messages_received = he_codec::take_u64(cur).map_err(ProtocolError::He)? as usize;
        let public_key = if take_flag(cur)? {
            Some(he_codec::decode_public_key(cur).map_err(ProtocolError::He)?)
        } else {
            None
        };
        let packing = if take_flag(cur)? {
            Some(PackingPolicy::decode(cur)?)
        } else {
            None
        };
        let fold_kind = he_codec::take_bytes(cur, 1).map_err(ProtocolError::He)?[0];
        let mut registry_fold = None;
        let mut packed_registry_fold = None;
        match fold_kind {
            0 => {}
            1 => {
                if packing.is_some() {
                    return Err(ProtocolError::MalformedFrame {
                        detail: "snapshot has an element-wise fold under a packing policy".into(),
                    });
                }
                let len = he_codec::take_u32(cur).map_err(ProtocolError::He)? as usize;
                let snap = he_codec::take_bytes(cur, len).map_err(ProtocolError::He)?;
                registry_fold = Some(RunningFold::restore(snap).map_err(ProtocolError::He)?);
            }
            2 => {
                let Some(policy) = &packing else {
                    return Err(ProtocolError::MalformedFrame {
                        detail: "snapshot has a packed fold but no packing policy".into(),
                    });
                };
                let len = he_codec::take_u32(cur).map_err(ProtocolError::He)? as usize;
                let snap = he_codec::take_bytes(cur, len).map_err(ProtocolError::He)?;
                let fold = PackedRunningFold::restore(snap).map_err(ProtocolError::He)?;
                if *fold.model() != policy.registry_model() {
                    return Err(ProtocolError::MalformedFrame {
                        detail: "snapshot packed fold disagrees with the packing policy".into(),
                    });
                }
                packed_registry_fold = Some(fold);
            }
            _ => {
                return Err(ProtocolError::MalformedFrame {
                    detail: "snapshot fold discriminator is not 0, 1 or 2".into(),
                })
            }
        }
        let mut server = CoordinatorServer::new(0);
        server.epoch = epoch;
        server.registration_closed = registration_closed;
        server.registered = registered;
        server.registrations_received = registrations_received;
        server.bytes_received = bytes_received;
        server.messages_received = messages_received;
        server.public_key = public_key;
        server.packing = packing;
        server.registry_fold = registry_fold;
        server.packed_registry_fold = packed_registry_fold;
        Ok(server)
    }

    /// Announces one tentative try (§5.3.1: the server performs the `H`
    /// tentative selections): the server will fold exactly one encrypted
    /// distribution from each of `participants` for `try_index` and then
    /// forward the sum to the agent. Contributions from anyone else — or a
    /// second contribution from the same client — are rejected.
    pub fn announce_try(&mut self, try_index: usize, participants: &[ClientId]) {
        let mut sorted = participants.to_vec();
        sorted.sort_unstable();
        let contributed = vec![false; sorted.len()];
        self.tries.insert(
            try_index,
            TryFold {
                participants: sorted,
                contributed,
                received: 0,
                fold: None,
                packed_fold: None,
                opened: Instant::now(),
            },
        );
    }

    /// Shared registration bookkeeping for the packed and element-wise arms:
    /// exactly one registry per known client, and none once the epoch total
    /// has been broadcast (naturally or by a partial close) — duplicates,
    /// strangers and stragglers would silently corrupt the homomorphic sum
    /// (a real concern once a retrying networked transport sits underneath),
    /// so they are protocol errors instead. Marks the client's one slot.
    fn claim_registration_slot(&mut self, client: ClientId) -> Result<(), ProtocolError> {
        if self.registration_closed || self.registrations_received == self.registered.len() {
            return Err(ProtocolError::EpochComplete { client });
        }
        match self.registered.get_mut(client) {
            None => Err(ProtocolError::UnknownContributor {
                client,
                try_index: None,
            }),
            Some(seen) if *seen => Err(ProtocolError::DuplicateContribution {
                client,
                try_index: None,
            }),
            Some(seen) => {
                *seen = true;
                Ok(())
            }
        }
    }

    /// Counts one accepted registration; when the cohort completes, performs
    /// Fig. 4 step 3 — broadcast `Enc(R_A)` to every client and the agent;
    /// nobody but the key holders can open it.
    fn finish_registration(&mut self) -> Vec<Envelope> {
        self.registrations_received += 1;
        if self.registrations_received == self.registered.len() {
            self.registration_closed = true;
            self.cohort_outcomes.push(CohortOutcome {
                epoch: self.epoch,
                try_index: None,
                expected: self.registered.len(),
                contributed: self.registrations_received,
                partial: false,
            });
            self.registration_broadcast()
        } else {
            Vec::new()
        }
    }

    /// Shared per-try bookkeeping: the try must be announced, the client one
    /// of its participants, and this its first contribution. Marks the
    /// contribution and returns the participant index (so a rejected fold
    /// can un-mark it).
    fn claim_try_slot(
        &mut self,
        try_index: usize,
        client: ClientId,
    ) -> Result<usize, ProtocolError> {
        let slot = self
            .tries
            .get_mut(&try_index)
            .ok_or(ProtocolError::UnknownTry { try_index })?;
        let idx = slot.participants.binary_search(&client).map_err(|_| {
            ProtocolError::UnknownContributor {
                client,
                try_index: Some(try_index),
            }
        })?;
        if slot.contributed[idx] {
            return Err(ProtocolError::DuplicateContribution {
                client,
                try_index: Some(try_index),
            });
        }
        slot.contributed[idx] = true;
        Ok(idx)
    }

    /// If every announced participant of `try_index` has contributed,
    /// removes the try and forwards its sum (packed or element-wise,
    /// whichever fold ran) to the agent.
    fn finish_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        let done = {
            let slot = self.tries.get(&try_index).expect("claimed above");
            slot.received == slot.participants.len()
        };
        if !done {
            return Ok(Vec::new());
        }
        let slot = self.tries.remove(&try_index).expect("present");
        self.cohort_outcomes.push(CohortOutcome {
            epoch: self.epoch,
            try_index: Some(try_index),
            expected: slot.participants.len(),
            contributed: slot.received,
            partial: false,
        });
        let msg = match (slot.fold, slot.packed_fold) {
            (Some(fold), _) => ProtocolMsg::EncryptedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: fold.total(),
            },
            (None, Some(fold)) => ProtocolMsg::PackedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: fold.total(),
            },
            (None, None) => unreachable!("non-empty try"),
        };
        Ok(vec![Envelope {
            from: Party::Server,
            to: Party::Agent,
            epoch: self.epoch,
            msg,
        }])
    }

    /// Handles one incoming message, returning the messages it triggers.
    pub fn handle(&mut self, msg: ProtocolMsg) -> Result<Vec<Envelope>, ProtocolError> {
        self.messages_received += 1;
        self.bytes_received += msg.wire_bytes();
        match msg {
            ProtocolMsg::PublicKeyDispatch {
                public_key,
                private_key,
            } => {
                if private_key.is_some() {
                    return Err(ProtocolError::PrivateKeyAtServer);
                }
                self.public_key = Some(public_key);
                Ok(Vec::new())
            }
            ProtocolMsg::EncryptedRegistry { client, registry } => {
                if self.packing.is_some() {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: true,
                        kind: MsgKind::Registry,
                    });
                }
                self.claim_registration_slot(client)?;
                // A payload the fold rejects (wrong shape, foreign key) must
                // not burn the client's one registration slot: unmark it so
                // a well-formed retry is still possible.
                if let Err(e) = fold_in(&mut self.registry_fold, &registry) {
                    self.registered[client] = false;
                    return Err(e);
                }
                Ok(self.finish_registration())
            }
            ProtocolMsg::PackedRegistry { client, registry } => {
                let Some(policy) = self.packing else {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: false,
                        kind: MsgKind::Registry,
                    });
                };
                self.claim_registration_slot(client)?;
                // Same un-burn discipline as the element-wise arm; the
                // headroom model additionally refuses foreign slot layouts
                // and any fold past the declared client budget *before* the
                // multiply, so a refused registry leaves the sum untouched.
                if let Err(e) = fold_in_packed(
                    &mut self.packed_registry_fold,
                    &registry,
                    policy.registry_model(),
                ) {
                    self.registered[client] = false;
                    return Err(e);
                }
                Ok(self.finish_registration())
            }
            ProtocolMsg::EncryptedDistribution {
                client,
                try_index,
                distribution,
            } => {
                if self.packing.is_some_and(|p| p.packs_tries()) {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: true,
                        kind: MsgKind::Distribution,
                    });
                }
                let idx = self.claim_try_slot(try_index, client)?;
                let slot = self.tries.get_mut(&try_index).expect("claimed above");
                if let Err(e) = fold_in(&mut slot.fold, &distribution) {
                    slot.contributed[idx] = false;
                    return Err(e);
                }
                slot.received += 1;
                self.finish_try(try_index)
            }
            ProtocolMsg::PackedDistribution {
                client,
                try_index,
                distribution,
            } => {
                let Some(model) = self.packing.and_then(|p| p.try_model()) else {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: false,
                        kind: MsgKind::Distribution,
                    });
                };
                let idx = self.claim_try_slot(try_index, client)?;
                let slot = self.tries.get_mut(&try_index).expect("claimed above");
                if let Err(e) = fold_in_packed(&mut slot.packed_fold, &distribution, model) {
                    slot.contributed[idx] = false;
                    return Err(e);
                }
                slot.received += 1;
                self.finish_try(try_index)
            }
            ProtocolMsg::TryVerdict { best_try, distance } => {
                self.last_verdict = Some((best_try, distance));
                Ok(Vec::new())
            }
            other => Err(ProtocolError::UnexpectedMessage {
                role: "server",
                kind: other.kind(),
            }),
        }
    }
}

impl Coordinator for CoordinatorServer {
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError> {
        self.check_epoch(&envelope)?;
        CoordinatorServer::handle(self, envelope.msg)
    }

    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[ClientId],
    ) -> Result<(), ProtocolError> {
        CoordinatorServer::announce_try(self, try_index, participants);
        Ok(())
    }

    fn begin_epoch(
        &mut self,
        epoch: u64,
        expected_registrations: usize,
    ) -> Result<(), ProtocolError> {
        CoordinatorServer::begin_epoch(self, epoch, expected_registrations);
        Ok(())
    }

    fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        CoordinatorServer::close_registration(self)
    }

    fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        CoordinatorServer::close_try(self, try_index)
    }

    fn deliver_registry_frame(
        &mut self,
        frame: RegistryFrame,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        // The vector decode happens first: a malformed ciphertext block
        // surfaces before any delivery bookkeeping, exactly where the eager
        // path's frame decode would have refused the frame.
        let view = frame.view()?;
        // `check_epoch` for a message that is never a key dispatch.
        match frame.epoch().cmp(&self.epoch) {
            std::cmp::Ordering::Equal => {}
            std::cmp::Ordering::Less => {
                return Err(ProtocolError::StaleEpoch {
                    received: frame.epoch(),
                    current: self.epoch,
                })
            }
            std::cmp::Ordering::Greater => {
                return Err(ProtocolError::FutureEpoch {
                    received: frame.epoch(),
                    current: self.epoch,
                })
            }
        }
        self.messages_received += 1;
        // `ProtocolMsg::wire_bytes` for a registry: the client scalar plus
        // the canonical ciphertext payload — which is the view's block.
        self.bytes_received += 8 + view.ciphertext_payload_bytes();
        if self.packing.is_some() {
            return Err(ProtocolError::PackingDisagreement {
                role: "server",
                expected_packed: true,
                kind: MsgKind::Registry,
            });
        }
        let client = frame.client();
        self.claim_registration_slot(client)?;
        // Same un-burn discipline as the eager arm.
        if let Err(e) = fold_in_view(&mut self.registry_fold, &view) {
            self.registered[client] = false;
            return Err(e);
        }
        Ok(self.finish_registration())
    }
}

/// The keypair-owning agent: dispatches the epoch key, decrypts the per-try
/// sums the server forwards, and issues the L1 try-test verdict.
#[derive(Debug)]
pub struct AgentNode {
    keypair: Keypair,
    key_bits: u64,
    epoch: u64,
    codec: FixedPointCodec,
    classes: usize,
    overall_registry: Option<Vec<u64>>,
    expected_tries: usize,
    try_outcomes: BTreeMap<usize, SecureTryOutcome>,
    verdict: Option<(usize, f64)>,
}

impl AgentNode {
    /// Generates a fresh epoch keypair (and pays the key's one-time
    /// fixed-base precomputation so every client encrypts on the fast path).
    pub fn new<R: Rng + ?Sized>(key_bits: u64, classes: usize, rng: &mut R) -> Self {
        let keypair = Keypair::generate(key_bits, rng);
        let _ = PrecomputedEncryptor::new(&keypair.public, rng);
        AgentNode {
            key_bits,
            ..AgentNode::from_keypair(keypair, classes)
        }
    }

    /// Wraps existing key material (used by compatibility drivers whose
    /// callers generated the keypair themselves).
    pub fn from_keypair(keypair: Keypair, classes: usize) -> Self {
        let key_bits = keypair.public.n().bits();
        AgentNode {
            keypair,
            key_bits,
            epoch: 0,
            codec: FixedPointCodec::default(),
            classes,
            overall_registry: None,
            expected_tries: 0,
            try_outcomes: BTreeMap::new(),
            verdict: None,
        }
    }

    /// The agent's current key-rotation epoch (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rotates the epoch keypair: generates a fresh keypair at the same key
    /// size, advances the epoch, forgets everything derived from the old key
    /// (overall registry, try outcomes, verdict) and returns the key
    /// dispatches — stamped with the new epoch — that drive cohort
    /// re-registration. Stale frames from the old epoch are refused by every
    /// receiver from here on.
    pub fn rotate_epoch<R: Rng + ?Sized>(&mut self, clients: usize, rng: &mut R) -> Vec<Envelope> {
        let keypair = Keypair::generate(self.key_bits, rng);
        let _ = PrecomputedEncryptor::new(&keypair.public, rng);
        self.keypair = keypair;
        self.epoch += 1;
        self.overall_registry = None;
        self.try_outcomes.clear();
        self.verdict = None;
        self.dispatch_keys(clients)
    }

    /// Delivers one envelope, checking its epoch stamp first. The agent is
    /// the epoch's author: nothing another party sends may advance it, so
    /// both directions of disagreement are typed errors.
    pub fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError> {
        match envelope.epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Equal => self.handle(envelope.msg),
            std::cmp::Ordering::Less => Err(ProtocolError::StaleEpoch {
                received: envelope.epoch,
                current: self.epoch,
            }),
            std::cmp::Ordering::Greater => Err(ProtocolError::FutureEpoch {
                received: envelope.epoch,
                current: self.epoch,
            }),
        }
    }

    /// The epoch public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.keypair.public
    }

    /// The epoch private key (the agent is its only protocol-level owner
    /// besides the clients it dispatches to).
    pub fn private_key(&self) -> &PrivateKey {
        &self.keypair.private
    }

    /// Fig. 4 step 1: key dispatch. Clients receive the full keypair (they
    /// decrypt the total themselves); the server receives the public key
    /// only. The server copy is emitted first so it can verify uploads.
    pub fn dispatch_keys(&self, clients: usize) -> Vec<Envelope> {
        let mut out = Vec::with_capacity(clients + 1);
        out.push(Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: self.epoch,
            msg: ProtocolMsg::PublicKeyDispatch {
                public_key: self.keypair.public.clone(),
                private_key: None,
            },
        });
        for id in 0..clients {
            out.push(Envelope {
                from: Party::Agent,
                to: Party::Client(id),
                epoch: self.epoch,
                msg: ProtocolMsg::PublicKeyDispatch {
                    public_key: self.keypair.public.clone(),
                    private_key: Some(self.keypair.private.clone()),
                },
            });
        }
        out
    }

    /// Starts a multi-time round of `h` tries: clears previous outcomes; the
    /// verdict is emitted after the `h`-th sum is decrypted.
    pub fn expect_tries(&mut self, h: usize) {
        self.expected_tries = h;
        self.try_outcomes.clear();
        self.verdict = None;
    }

    /// The overall registry decrypted from the server broadcast, if seen.
    pub fn overall_registry(&self) -> Option<&[u64]> {
        self.overall_registry.as_deref()
    }

    /// The per-try outcomes decrypted so far, in try order.
    pub fn try_outcomes(&self) -> Vec<SecureTryOutcome> {
        self.try_outcomes.values().cloned().collect()
    }

    /// The verdict of the completed multi-time round, if all tries arrived.
    pub fn verdict(&self) -> Option<(usize, f64)> {
        self.verdict
    }

    /// Records one decrypted try sum (however it travelled — element-wise or
    /// packed), scores it against the uniform distribution, and emits the
    /// verdict once every expected try has arrived.
    fn record_try_outcome(
        &mut self,
        try_index: usize,
        contributors: usize,
        decrypted: Vec<u64>,
        ciphertext_bytes: usize,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        let population = self.codec.decode_average(&decrypted, contributors);
        let p_u = vec![1.0 / self.classes as f64; self.classes];
        let distance = dubhe_data::l1_distance(&population, &p_u);
        self.try_outcomes.insert(
            try_index,
            SecureTryOutcome {
                population,
                distance_to_uniform: distance,
                ciphertext_bytes,
                messages: contributors,
            },
        );
        if self.expected_tries > 0 && self.try_outcomes.len() == self.expected_tries {
            let (best_try, distance) = self
                .try_outcomes
                .iter()
                .min_by(|a, b| {
                    a.1.distance_to_uniform
                        .partial_cmp(&b.1.distance_to_uniform)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(&i, o)| (i, o.distance_to_uniform))
                .expect("expected_tries > 0");
            self.verdict = Some((best_try, distance));
            return Ok(vec![Envelope {
                from: Party::Agent,
                to: Party::Server,
                epoch: self.epoch,
                msg: ProtocolMsg::TryVerdict { best_try, distance },
            }]);
        }
        Ok(Vec::new())
    }

    /// Handles one incoming message, returning the messages it triggers.
    pub fn handle(&mut self, msg: ProtocolMsg) -> Result<Vec<Envelope>, ProtocolError> {
        match msg {
            ProtocolMsg::EncryptedTotalBroadcast { total } => {
                self.overall_registry = Some(total.decrypt_u64(&self.keypair.private)?);
                Ok(Vec::new())
            }
            ProtocolMsg::PackedTotalBroadcast { total } => {
                self.overall_registry = Some(total.decrypt_u64(&self.keypair.private));
                Ok(Vec::new())
            }
            ProtocolMsg::EncryptedDistributionSum {
                try_index,
                contributors,
                sum,
            } => {
                let ciphertext_bytes =
                    contributors * self.classes * ciphertext_width(&self.keypair.public);
                let decrypted = sum.decrypt_u64(&self.keypair.private)?;
                self.record_try_outcome(try_index, contributors, decrypted, ciphertext_bytes)
            }
            ProtocolMsg::PackedDistributionSum {
                try_index,
                contributors,
                sum,
            } => {
                // Each contributor uploaded one packed vector shaped like the
                // sum, so the uplink ciphertext traffic of the try is
                // `contributors ×` the sum's own packed wire size.
                let ciphertext_bytes = contributors * packed_vector_wire_bytes(&sum);
                let decrypted = sum.decrypt_u64(&self.keypair.private);
                self.record_try_outcome(try_index, contributors, decrypted, ciphertext_bytes)
            }
            other => Err(ProtocolError::UnexpectedMessage {
                role: "agent",
                kind: other.kind(),
            }),
        }
    }
}

/// The registration plan a full selection client executes on key receipt.
#[derive(Debug, Clone)]
struct RegistrationPlan {
    layout: RegistryLayout,
    thresholds: Vec<f64>,
    k: usize,
}

/// An ordinary selection client: fills and encrypts its registry, decrypts
/// the broadcast total with the dispatched key, and computes its own
/// participation probability.
#[derive(Debug)]
pub struct SelectClientNode {
    id: ClientId,
    distribution: ClassDistribution,
    codec: FixedPointCodec,
    plan: Option<RegistrationPlan>,
    /// When set, the client uploads packed registries (and, if the policy
    /// packs tries, packed distributions) under the policy's slot layout.
    packing: Option<PackingPolicy>,
    epoch: u64,
    public_key: Option<PublicKey>,
    private_key: Option<PrivateKey>,
    encryptor: Option<EpochEncryptor>,
    registration: Option<Registration>,
    overall_registry: Option<Vec<u64>>,
}

impl SelectClientNode {
    /// A client that will register (Algorithm 1) under `config` as soon as
    /// the epoch key arrives.
    pub fn new(id: ClientId, distribution: ClassDistribution, config: &DubheConfig) -> Self {
        let plan = RegistrationPlan {
            layout: config.validate(),
            thresholds: config.effective_thresholds(),
            k: config.k,
        };
        SelectClientNode {
            plan: Some(plan),
            ..SelectClientNode::without_registration(id, distribution)
        }
    }

    /// A client that only takes part in multi-time distribution exchanges
    /// (no registration phase).
    pub fn without_registration(id: ClientId, distribution: ClassDistribution) -> Self {
        SelectClientNode {
            id,
            distribution,
            codec: FixedPointCodec::default(),
            plan: None,
            packing: None,
            epoch: 0,
            public_key: None,
            private_key: None,
            encryptor: None,
            registration: None,
            overall_registry: None,
        }
    }

    /// Builder: uploads under a [`PackingPolicy`] — the registry (and, when
    /// the policy packs tries, each distribution) is slot-packed before
    /// encryption. The coordinator must hold the *same* policy: a mismatched
    /// layout is refused on its side with a typed error.
    pub fn with_packing(mut self, policy: PackingPolicy) -> Self {
        self.packing = Some(policy);
        self
    }

    /// The client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The client's current key-rotation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Installs epoch key material without going through a dispatch message
    /// (used by compatibility drivers). Any encryptor built for a previous
    /// key is discarded.
    pub fn install_keys(&mut self, public: PublicKey, private: PrivateKey) {
        self.public_key = Some(public);
        self.private_key = Some(private);
        self.encryptor = None;
    }

    /// Delivers one envelope, checking its epoch stamp first. A key dispatch
    /// from a *newer* epoch is how the client learns of a rotation: it adopts
    /// the epoch, forgets the old key material and (if it holds a
    /// registration plan) re-registers under the new key. Anything else from
    /// the wrong epoch is a typed error.
    pub fn deliver<R: Rng + ?Sized>(
        &mut self,
        envelope: Envelope,
        rng: &mut R,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        match envelope.epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Equal => self.handle(envelope.msg, rng),
            std::cmp::Ordering::Less => Err(ProtocolError::StaleEpoch {
                received: envelope.epoch,
                current: self.epoch,
            }),
            std::cmp::Ordering::Greater => {
                if matches!(envelope.msg, ProtocolMsg::PublicKeyDispatch { .. }) {
                    self.epoch = envelope.epoch;
                    self.encryptor = None;
                    self.overall_registry = None;
                    self.handle(envelope.msg, rng)
                } else {
                    Err(ProtocolError::FutureEpoch {
                        received: envelope.epoch,
                        current: self.epoch,
                    })
                }
            }
        }
    }

    /// The client's registration, once the key arrived and Algorithm 1 ran.
    pub fn registration(&self) -> Option<&Registration> {
        self.registration.as_ref()
    }

    /// The overall registry this client decrypted from the broadcast.
    pub fn overall_registry(&self) -> Option<&[u64]> {
        self.overall_registry.as_deref()
    }

    /// Eq. 6: the participation probability this client computes *for
    /// itself* from the decrypted overall registry and its own category.
    pub fn participation_probability(&self) -> Option<f64> {
        let overall = self.overall_registry.as_ref()?;
        let registration = self.registration.as_ref()?;
        let k = self.plan.as_ref()?.k;
        Some(participation_probability(overall, registration.position, k))
    }

    /// The client's epoch encryptor, built on first use. Clients hold the
    /// dispatched *keypair*, so this is normally the CRT-split
    /// [`CrtEncryptor`](dubhe_he::CrtEncryptor) fast path; a client that
    /// somehow only has the public half falls back to the
    /// [`PrecomputedEncryptor`] — the ciphertexts are bit-identical either
    /// way.
    fn encryptor<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<&EpochEncryptor, ProtocolError> {
        if self.encryptor.is_none() {
            let pk = self
                .public_key
                .clone()
                .ok_or(ProtocolError::MissingKeyMaterial { role: "client" })?;
            self.encryptor = Some(EpochEncryptor::for_key_material(
                &pk,
                self.private_key.as_ref(),
                rng,
            ));
        }
        Ok(self.encryptor.as_ref().expect("just installed"))
    }

    /// §5.3.1: encrypts this client's scaled label distribution for one
    /// tentative try and addresses it to the server.
    pub fn encrypt_distribution<R: Rng + ?Sized>(
        &mut self,
        try_index: usize,
        rng: &mut R,
    ) -> Result<Envelope, ProtocolError> {
        let scaled = self.codec.encode_vec(&self.distribution.proportions());
        let packer = self.packing.filter(|p| p.packs_tries()).map(|p| p.packer());
        let id = self.id;
        let encryptor = self.encryptor(rng)?;
        let msg = match packer {
            Some(packer) => ProtocolMsg::PackedDistribution {
                client: id,
                try_index,
                distribution: PackedEncryptedVector::encrypt_with(packer, encryptor, &scaled, rng)?,
            },
            None => ProtocolMsg::EncryptedDistribution {
                client: id,
                try_index,
                distribution: EncryptedVector::encrypt_u64_with(encryptor, &scaled, rng),
            },
        };
        Ok(Envelope {
            from: Party::Client(self.id),
            to: Party::Server,
            epoch: self.epoch,
            msg,
        })
    }

    /// Handles one incoming message, returning the messages it triggers.
    pub fn handle<R: Rng + ?Sized>(
        &mut self,
        msg: ProtocolMsg,
        rng: &mut R,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        match msg {
            ProtocolMsg::PublicKeyDispatch {
                public_key,
                private_key,
            } => {
                let private_key =
                    private_key.ok_or(ProtocolError::MissingKeyMaterial { role: "client" })?;
                self.install_keys(public_key, private_key);
                if let Some(plan) = self.plan.clone() {
                    // Fig. 4 step 2: register, encrypt, upload — slot-packed
                    // when a packing policy is installed.
                    let registration = register(&self.distribution, &plan.layout, &plan.thresholds);
                    let packer = self.packing.map(|p| p.packer());
                    let id = self.id;
                    let encryptor = self.encryptor(rng)?;
                    let msg = match packer {
                        Some(packer) => ProtocolMsg::PackedRegistry {
                            client: id,
                            registry: PackedEncryptedVector::encrypt_with(
                                packer,
                                encryptor,
                                &registration.registry,
                                rng,
                            )?,
                        },
                        None => ProtocolMsg::EncryptedRegistry {
                            client: id,
                            registry: EncryptedVector::encrypt_u64_with(
                                encryptor,
                                &registration.registry,
                                rng,
                            ),
                        },
                    };
                    self.registration = Some(registration);
                    Ok(vec![Envelope {
                        from: Party::Client(self.id),
                        to: Party::Server,
                        epoch: self.epoch,
                        msg,
                    }])
                } else {
                    Ok(Vec::new())
                }
            }
            ProtocolMsg::EncryptedTotalBroadcast { total } => {
                let sk = self
                    .private_key
                    .as_ref()
                    .ok_or(ProtocolError::MissingKeyMaterial { role: "client" })?;
                self.overall_registry = Some(total.decrypt_u64(sk)?);
                Ok(Vec::new())
            }
            ProtocolMsg::PackedTotalBroadcast { total } => {
                let sk = self
                    .private_key
                    .as_ref()
                    .ok_or(ProtocolError::MissingKeyMaterial { role: "client" })?;
                self.overall_registry = Some(total.decrypt_u64(sk));
                Ok(Vec::new())
            }
            other => Err(ProtocolError::UnexpectedMessage {
                role: "client",
                kind: other.kind(),
            }),
        }
    }
}
