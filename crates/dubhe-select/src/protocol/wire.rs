//! The framed wire layer of the networked transport.
//!
//! Every message on a protocol socket is one *frame*:
//!
//! ```text
//! +-----------------+-----------------+----------------------+
//! | magic           | payload length  | payload              |
//! | "DBH1" / "DBH2" | u32, big-endian | codec-encoded WireMsg|
//! +-----------------+-----------------+----------------------+
//! ```
//!
//! The magic names the payload codec ([`CodecKind`]): `DBH1` frames carry
//! JSON, `DBH2` frames carry the canonical binary encoding — see
//! [`super::codec`]. [`read_frame_negotiated`] dispatches on the magic, which
//! is what lets one listener serve both formats per connection.
//!
//! The framing is std-only (`std::io::Read`/`Write` over any byte stream —
//! `std::net::TcpStream` in production, `&[u8]` cursors in tests) and
//! defensive by construction:
//!
//! * a frame that does not start with a known magic is rejected as
//!   [`ProtocolError::MalformedFrame`] before any allocation happens;
//! * the announced payload length is checked against [`MAX_FRAME_BYTES`]
//!   ([`ProtocolError::FrameTooLarge`]) so garbage or hostile headers cannot
//!   make the receiver allocate unboundedly;
//! * a stream that ends mid-frame surfaces
//!   [`ProtocolError::TruncatedFrame`]; a stream that ends cleanly *between*
//!   frames surfaces [`ProtocolError::Disconnected`] — callers that expected
//!   more exchange treat both as errors, never as silence.
//!
//! [`WireMsg`] wraps the protocol-level [`Envelope`] with the small control
//! vocabulary a client ↔ coordinator session needs (try announcements,
//! reply batches, relayed errors, shutdown).

use std::io::{ErrorKind, Read, Write};

use serde::{Deserialize, Serialize};

use super::codec::{CodecKind, RegistryFrame};
use super::message::Envelope;
use crate::error::ProtocolError;
use crate::selector::ClientId;

/// The 4-byte preamble of a JSON (`DBH1`) frame: protocol name + wire-format
/// version. Equal to [`CodecKind::Json.magic()`](CodecKind::magic).
pub const FRAME_MAGIC: [u8; 4] = *b"DBH1";

/// The 4-byte preamble of a canonical-binary (`DBH2`) frame. Equal to
/// [`CodecKind::Binary.magic()`](CodecKind::magic).
pub const FRAME_MAGIC_V2: [u8; 4] = *b"DBH2";

/// Upper bound on a frame payload. Generous: the largest legitimate message
/// is a broadcast batch of full-length encrypted registries under 2048-bit
/// keys (tens of KB each); 64 MiB leaves three orders of magnitude headroom
/// while still refusing absurd lengths parsed out of garbage bytes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One message of the client ↔ coordinator wire session.
// Envelope wraps ProtocolMsg, whose key-dispatch variant is deliberately
// large (see the note there); the same trade-off applies here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMsg {
    /// A protocol envelope travelling to the coordinator.
    Envelope {
        /// The addressed protocol message.
        envelope: Envelope,
    },
    /// Control plane: announce the participant set of one tentative try
    /// (§5.3.1) ahead of the encrypted distribution uploads.
    AnnounceTry {
        /// Which of the `H` tries is being announced.
        try_index: usize,
        /// The tentatively selected client ids.
        participants: Vec<ClientId>,
    },
    /// Control plane: open a new key-rotation epoch with a (possibly
    /// resized) cohort. The coordinator resets its per-epoch folds and
    /// refuses frames stamped with older epochs afterwards.
    BeginEpoch {
        /// The new epoch id.
        epoch: u64,
        /// The new cohort size.
        expected_registrations: usize,
    },
    /// Control plane: close the registration phase with whatever registries
    /// arrived — the explicit partial-cohort fold a straggler deadline
    /// triggers. The reply is a [`Batch`](WireMsg::Batch) of the triggered
    /// broadcast envelopes.
    CloseRegistration,
    /// Control plane: close one tentative try with whatever contributions
    /// arrived. The reply is a [`Batch`](WireMsg::Batch) carrying the
    /// partial sum.
    CloseTry {
        /// The try to close.
        try_index: usize,
    },
    /// The coordinator's reply to an [`Envelope`](WireMsg::Envelope): every
    /// message the delivery triggered (possibly empty), in emission order.
    Batch {
        /// The triggered envelopes.
        envelopes: Vec<Envelope>,
    },
    /// The coordinator's acknowledgement of a control message.
    Ack,
    /// The coordinator rejected the message; its [`ProtocolError`] rendered
    /// as text.
    Error {
        /// The rendered coordinator-side error.
        detail: String,
    },
    /// Ends the session: the peer will close the connection after reading
    /// this frame.
    Shutdown,
}

fn io_error(context: &'static str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Io {
        context,
        detail: e.to_string(),
    }
}

/// Writes one frame in the given codec, returning the total bytes put on
/// the wire (header included) so callers can meter real frame traffic.
/// Enforces the default [`MAX_FRAME_BYTES`]; use
/// [`write_frame_limited`] to enforce a configured limit.
pub fn write_frame_with<W: Write>(
    w: &mut W,
    msg: &WireMsg,
    codec: CodecKind,
) -> Result<usize, ProtocolError> {
    write_frame_limited(w, msg, codec, MAX_FRAME_BYTES)
}

/// [`write_frame_with`] with a caller-configured payload ceiling (see
/// [`TcpConfig`](super::tcp::TcpConfig)): a payload above `max_frame_bytes`
/// is refused *before* anything is written, so an oversized message never
/// leaves a half-frame on the stream.
pub fn write_frame_limited<W: Write>(
    w: &mut W,
    msg: &WireMsg,
    codec: CodecKind,
    max_frame_bytes: usize,
) -> Result<usize, ProtocolError> {
    let payload = codec.encode(msg)?;
    if payload.len() > max_frame_bytes {
        return Err(ProtocolError::FrameTooLarge {
            len: payload.len(),
            max: max_frame_bytes,
        });
    }
    let magic = codec.magic();
    w.write_all(&magic)
        .map_err(|e| io_error("write frame header", e))?;
    w.write_all(&(payload.len() as u32).to_be_bytes())
        .map_err(|e| io_error("write frame header", e))?;
    w.write_all(&payload)
        .map_err(|e| io_error("write frame payload", e))?;
    w.flush().map_err(|e| io_error("flush frame", e))?;
    Ok(magic.len() + 4 + payload.len())
}

/// Writes one `DBH1` (JSON) frame — the compatibility default (see
/// [`JsonCodec`](super::codec::JsonCodec) for the exact compatibility
/// scope).
pub fn write_frame<W: Write>(w: &mut W, msg: &WireMsg) -> Result<usize, ProtocolError> {
    write_frame_with(w, msg, CodecKind::Json)
}

/// Reads exactly `buf.len()` bytes. `at_frame_start` distinguishes a clean
/// close (EOF before any byte of this frame → [`ProtocolError::Disconnected`])
/// from a cut-off frame ([`ProtocolError::TruncatedFrame`]).
pub(crate) fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
    at_frame_start: bool,
) -> Result<(), ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_frame_start && filled == 0 {
                    ProtocolError::Disconnected
                } else {
                    ProtocolError::TruncatedFrame { context }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                return Err(if at_frame_start && filled == 0 {
                    ProtocolError::Disconnected
                } else {
                    ProtocolError::TruncatedFrame { context }
                });
            }
            Err(e) => return Err(io_error("read frame", e)),
        }
    }
    Ok(())
}

/// Reads one frame in whichever known codec its magic announces, returning
/// the message, the total bytes consumed, and the negotiated codec — the
/// listener replies in the same codec, which is the whole per-connection
/// negotiation protocol.
///
/// Never panics and never reads past the frame: unknown magics, oversized
/// lengths, truncation, disconnects and undecodable payloads each map to
/// their own [`ProtocolError`] variant. With a read timeout set on the
/// underlying stream, a silent peer surfaces as [`ProtocolError::Io`] when
/// the timeout elapses — a caller is never stuck forever.
pub fn read_frame_negotiated<R: Read>(
    r: &mut R,
) -> Result<(WireMsg, usize, CodecKind), ProtocolError> {
    read_frame_limited(r, MAX_FRAME_BYTES)
}

/// [`read_frame_negotiated`] with a caller-configured payload ceiling (see
/// [`TcpConfig`](super::tcp::TcpConfig)). The announced length is checked
/// against `max_frame_bytes` before the payload buffer is allocated.
pub fn read_frame_limited<R: Read>(
    r: &mut R,
    max_frame_bytes: usize,
) -> Result<(WireMsg, usize, CodecKind), ProtocolError> {
    let mut magic = [0u8; 4];
    read_exact_or(r, &mut magic, "header", true)?;
    let Some(codec) = CodecKind::from_magic(magic) else {
        return Err(ProtocolError::MalformedFrame {
            detail: format!("bad magic {magic:02x?}, expected DBH1, DBH2 or DBHZ"),
        });
    };
    let mut len_bytes = [0u8; 4];
    read_exact_or(r, &mut len_bytes, "header", false)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > max_frame_bytes {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "payload", false)?;
    let msg = codec.decode(&payload)?;
    Ok((msg, magic.len() + 4 + len, codec))
}

/// Reads one frame of either codec, returning the message and the total
/// bytes consumed. Use [`read_frame_negotiated`] when the caller needs to
/// know which codec the peer speaks.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(WireMsg, usize), ProtocolError> {
    read_frame_negotiated(r).map(|(msg, n, _)| (msg, n))
}

/// A frame read whose payload decoding may have been *deferred*.
///
/// `DBH2` registry uploads — the coordinator's hot path — are recognised by
/// their constant-size envelope prefix and shipped to the router as raw
/// payload bytes ([`RegistryFrame`]); the router folds their ciphertext
/// block through a borrowed view with zero per-element allocation. Every
/// other frame decodes eagerly, exactly as [`read_frame_limited`] would.
// The size gap between variants is irrelevant: a `LazyMsg` lives for one
// dispatch — decoded off the socket, matched, and consumed — never stored
// in collections, so boxing `WireMsg` would add an allocation to the hot
// path to save stack bytes nobody keeps.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LazyMsg {
    /// A fully decoded message (everything that is not a `DBH2` registry).
    Eager(WireMsg),
    /// A recognised `DBH2` registry upload, still in frame-payload form.
    DeferredRegistry(RegistryFrame),
}

impl LazyMsg {
    /// Forces the message: deferred registries are materialised through the
    /// eager decoder (same validation, same errors), decoded messages pass
    /// through unchanged.
    pub fn force(self) -> Result<WireMsg, ProtocolError> {
        match self {
            LazyMsg::Eager(msg) => Ok(msg),
            LazyMsg::DeferredRegistry(frame) => Ok(WireMsg::Envelope {
                envelope: frame.materialize()?,
            }),
        }
    }
}

/// [`read_frame_limited`], but `DBH2` registry payloads are returned
/// *undecoded* as [`LazyMsg::DeferredRegistry`] so the receiver can fold
/// them straight out of the payload bytes. All other payloads (and every
/// malformed prefix) go through the eager decoder, keeping its exact error
/// behaviour; note a deferred registry's ciphertext block is validated
/// only when the receiver decodes its view.
pub fn read_frame_lazy<R: Read>(
    r: &mut R,
    max_frame_bytes: usize,
) -> Result<(LazyMsg, usize, CodecKind), ProtocolError> {
    let mut magic = [0u8; 4];
    read_exact_or(r, &mut magic, "header", true)?;
    let Some(codec) = CodecKind::from_magic(magic) else {
        return Err(ProtocolError::MalformedFrame {
            detail: format!("bad magic {magic:02x?}, expected DBH1, DBH2 or DBHZ"),
        });
    };
    let mut len_bytes = [0u8; 4];
    read_exact_or(r, &mut len_bytes, "header", false)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > max_frame_bytes {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "payload", false)?;
    let total = magic.len() + 4 + len;
    if codec == CodecKind::Binary {
        match RegistryFrame::try_from_payload(payload) {
            Ok(frame) => return Ok((LazyMsg::DeferredRegistry(frame), total, codec)),
            Err(returned) => payload = returned,
        }
    }
    let msg = codec.decode(&payload)?;
    Ok((LazyMsg::Eager(msg), total, codec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::message::{Party, ProtocolMsg};

    fn verdict_envelope() -> Envelope {
        Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 3,
            msg: ProtocolMsg::TryVerdict {
                best_try: 1,
                distance: 0.5,
            },
        }
    }

    #[test]
    fn frames_round_trip() {
        let msgs = vec![
            WireMsg::Envelope {
                envelope: verdict_envelope(),
            },
            WireMsg::AnnounceTry {
                try_index: 2,
                participants: vec![0, 3, 7],
            },
            WireMsg::BeginEpoch {
                epoch: 4,
                expected_registrations: 12,
            },
            WireMsg::CloseRegistration,
            WireMsg::CloseTry { try_index: 5 },
            WireMsg::Batch {
                envelopes: vec![verdict_envelope(), verdict_envelope()],
            },
            WireMsg::Ack,
            WireMsg::Error {
                detail: "nope".to_string(),
            },
            WireMsg::Shutdown,
        ];
        let mut buf = Vec::new();
        let mut written = 0;
        for m in &msgs {
            written += write_frame(&mut buf, m).unwrap();
        }
        assert_eq!(written, buf.len());
        let mut cursor = &buf[..];
        for m in &msgs {
            let (back, _) = read_frame(&mut cursor).unwrap();
            assert_eq!(&back, m);
        }
        // The stream ends cleanly between frames.
        assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Disconnected));
    }

    #[test]
    fn bad_magic_is_malformed_not_a_panic() {
        let garbage = b"HTTP/1.1 200 OK\r\n\r\n";
        let err = read_frame(&mut &garbage[..]).unwrap_err();
        assert!(matches!(err, ProtocolError::MalformedFrame { .. }), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::FrameTooLarge {
                len: u32::MAX as usize,
                max: MAX_FRAME_BYTES,
            }
        );
    }

    #[test]
    fn truncation_points_are_distinguished_from_clean_close() {
        let mut full = Vec::new();
        write_frame(&mut full, &WireMsg::Ack).unwrap();
        // Cut inside the magic, inside the length, and inside the payload.
        for cut in [2, 6, full.len() - 1] {
            let err = read_frame(&mut &full[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::TruncatedFrame { .. }),
                "cut at {cut}: {err}"
            );
        }
        // Zero bytes: a clean close.
        assert_eq!(
            read_frame(&mut &full[..0]),
            Err(ProtocolError::Disconnected)
        );
    }

    #[test]
    fn undecodable_payload_is_malformed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        let payload = b"{\"not\": \"a wire message\"}";
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, ProtocolError::MalformedFrame { .. }), "{err}");
    }

    #[test]
    fn frames_negotiate_their_codec_from_the_magic() {
        let msg = WireMsg::AnnounceTry {
            try_index: 1,
            participants: vec![2, 4],
        };
        let mut buf = Vec::new();
        let n1 = write_frame_with(&mut buf, &msg, CodecKind::Json).unwrap();
        let n2 = write_frame_with(&mut buf, &msg, CodecKind::Binary).unwrap();
        assert_eq!(buf[..4], FRAME_MAGIC);
        assert_eq!(buf[n1..n1 + 4], FRAME_MAGIC_V2);

        let mut cursor = &buf[..];
        let (m1, r1, c1) = read_frame_negotiated(&mut cursor).unwrap();
        let (m2, r2, c2) = read_frame_negotiated(&mut cursor).unwrap();
        assert_eq!((m1, r1, c1), (msg.clone(), n1, CodecKind::Json));
        assert_eq!((m2, r2, c2), (msg, n2, CodecKind::Binary));
        assert_eq!(
            read_frame_negotiated(&mut cursor),
            Err(ProtocolError::Disconnected)
        );
    }

    #[test]
    fn lazy_reads_defer_binary_registries_and_nothing_else() {
        use dubhe_he::{EncryptedVector, Keypair};
        use rand::SeedableRng;

        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let registry = WireMsg::Envelope {
            envelope: Envelope {
                from: Party::Client(2),
                to: Party::Server,
                epoch: 1,
                msg: ProtocolMsg::EncryptedRegistry {
                    client: 2,
                    registry: EncryptedVector::encrypt_u64(&kp.public, &[1, 0, 3], &mut rng),
                },
            },
        };

        // A DBH2 registry comes back deferred, with the same byte count the
        // eager reader charges, and forces to the identical message.
        let mut buf = Vec::new();
        let written = write_frame_with(&mut buf, &registry, CodecKind::Binary).unwrap();
        let (lazy, bytes, codec) = read_frame_lazy(&mut &buf[..], MAX_FRAME_BYTES).unwrap();
        assert_eq!((bytes, codec), (written, CodecKind::Binary));
        assert!(matches!(lazy, LazyMsg::DeferredRegistry(_)));
        assert_eq!(lazy.force().unwrap(), registry);

        // The same message over DBH1 decodes eagerly — deferral is a
        // binary-layout optimisation, never a JSON one.
        let mut buf = Vec::new();
        write_frame_with(&mut buf, &registry, CodecKind::Json).unwrap();
        let (lazy, _, codec) = read_frame_lazy(&mut &buf[..], MAX_FRAME_BYTES).unwrap();
        assert_eq!(codec, CodecKind::Json);
        assert!(matches!(lazy, LazyMsg::Eager(ref m) if *m == registry));

        // Non-registry binary frames decode eagerly too.
        let mut buf = Vec::new();
        write_frame_with(
            &mut buf,
            &WireMsg::Envelope {
                envelope: verdict_envelope(),
            },
            CodecKind::Binary,
        )
        .unwrap();
        let (lazy, _, _) = read_frame_lazy(&mut &buf[..], MAX_FRAME_BYTES).unwrap();
        assert!(matches!(lazy, LazyMsg::Eager(WireMsg::Envelope { .. })));

        // Error paths are byte-for-byte the eager reader's: truncation,
        // oversized lengths, bad magic.
        let mut full = Vec::new();
        write_frame_with(&mut full, &registry, CodecKind::Binary).unwrap();
        for cut in [2, 6, full.len() - 1] {
            let lazy_err = read_frame_lazy(&mut &full[..cut], MAX_FRAME_BYTES).unwrap_err();
            let eager_err = read_frame_limited(&mut &full[..cut], MAX_FRAME_BYTES).unwrap_err();
            assert_eq!(lazy_err, eager_err, "cut at {cut}");
        }
        assert_eq!(
            read_frame_lazy(&mut &full[..], 16).unwrap_err(),
            ProtocolError::FrameTooLarge {
                len: full.len() - 8,
                max: 16
            }
        );
    }

    #[test]
    fn dbh2_error_paths_mirror_the_dbh1_suite() {
        // Oversized length: rejected before allocating.
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC_V2);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err(),
            ProtocolError::FrameTooLarge {
                len: u32::MAX as usize,
                max: MAX_FRAME_BYTES,
            }
        );

        // Truncation inside magic, length, and payload.
        let mut full = Vec::new();
        write_frame_with(&mut full, &WireMsg::Ack, CodecKind::Binary).unwrap();
        for cut in [2, 6, full.len() - 1] {
            let err = read_frame(&mut &full[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::TruncatedFrame { .. }),
                "cut at {cut}: {err}"
            );
        }

        // A DBH2 magic carrying a JSON payload is malformed, not a panic:
        // the magic commits the decoder to the binary layout.
        let payload = serde_json::to_string(&WireMsg::Ack).unwrap().into_bytes();
        let mut mixed = Vec::new();
        mixed.extend_from_slice(&FRAME_MAGIC_V2);
        mixed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        mixed.extend_from_slice(&payload);
        let err = read_frame(&mut &mixed[..]).unwrap_err();
        assert!(matches!(err, ProtocolError::MalformedFrame { .. }), "{err}");

        // An unknown magic version is refused by name.
        let err = read_frame(&mut &b"DBH3\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, ProtocolError::MalformedFrame { .. }), "{err}");
    }

    #[test]
    fn configured_frame_limits_bound_both_directions() {
        // A frame that fits the default limit but not a configured one is
        // refused on read, before the payload buffer is allocated…
        let mut full = Vec::new();
        write_frame_with(
            &mut full,
            &WireMsg::Error {
                detail: "x".repeat(100),
            },
            CodecKind::Binary,
        )
        .unwrap();
        let err = read_frame_limited(&mut &full[..], 16).unwrap_err();
        assert!(
            matches!(err, ProtocolError::FrameTooLarge { max: 16, .. }),
            "{err}"
        );

        // …and on write, before anything reaches the stream.
        let mut sink = Vec::new();
        let err = write_frame_limited(
            &mut sink,
            &WireMsg::Error {
                detail: "y".repeat(100),
            },
            CodecKind::Binary,
            16,
        )
        .unwrap_err();
        assert!(
            matches!(err, ProtocolError::FrameTooLarge { max: 16, .. }),
            "{err}"
        );
        assert!(sink.is_empty(), "nothing may be written before the check");

        // A generous configured limit behaves like the default.
        let (msg, _, _) = read_frame_limited(&mut &full[..], MAX_FRAME_BYTES).unwrap();
        assert!(matches!(msg, WireMsg::Error { .. }));
    }
}
