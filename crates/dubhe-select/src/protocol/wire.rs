//! The framed wire codec of the networked transport.
//!
//! Every message on a protocol socket is one *frame*:
//!
//! ```text
//! +----------+-----------------+------------------+
//! | magic    | payload length  | payload          |
//! | "DBH1"   | u32, big-endian | JSON of WireMsg  |
//! +----------+-----------------+------------------+
//! ```
//!
//! The codec is std-only (`std::io::Read`/`Write` over any byte stream —
//! `std::net::TcpStream` in production, `&[u8]` cursors in tests) and
//! defensive by construction:
//!
//! * a frame that does not start with the magic is rejected as
//!   [`ProtocolError::MalformedFrame`] before any allocation happens;
//! * the announced payload length is checked against [`MAX_FRAME_BYTES`]
//!   ([`ProtocolError::FrameTooLarge`]) so garbage or hostile headers cannot
//!   make the receiver allocate unboundedly;
//! * a stream that ends mid-frame surfaces
//!   [`ProtocolError::TruncatedFrame`]; a stream that ends cleanly *between*
//!   frames surfaces [`ProtocolError::Disconnected`] — callers that expected
//!   more exchange treat both as errors, never as silence.
//!
//! [`WireMsg`] wraps the protocol-level [`Envelope`] with the small control
//! vocabulary a client ↔ coordinator session needs (try announcements,
//! reply batches, relayed errors, shutdown).

use std::io::{ErrorKind, Read, Write};

use serde::{Deserialize, Serialize};

use super::message::Envelope;
use crate::error::ProtocolError;
use crate::selector::ClientId;

/// The 4-byte frame preamble: protocol name + wire-format version.
pub const FRAME_MAGIC: [u8; 4] = *b"DBH1";

/// Upper bound on a frame payload. Generous: the largest legitimate message
/// is a broadcast batch of full-length encrypted registries under 2048-bit
/// keys (tens of KB each); 64 MiB leaves three orders of magnitude headroom
/// while still refusing absurd lengths parsed out of garbage bytes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// One message of the client ↔ coordinator wire session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMsg {
    /// A protocol envelope travelling to the coordinator.
    Envelope {
        /// The addressed protocol message.
        envelope: Envelope,
    },
    /// Control plane: announce the participant set of one tentative try
    /// (§5.3.1) ahead of the encrypted distribution uploads.
    AnnounceTry {
        /// Which of the `H` tries is being announced.
        try_index: usize,
        /// The tentatively selected client ids.
        participants: Vec<ClientId>,
    },
    /// The coordinator's reply to an [`Envelope`](WireMsg::Envelope): every
    /// message the delivery triggered (possibly empty), in emission order.
    Batch {
        /// The triggered envelopes.
        envelopes: Vec<Envelope>,
    },
    /// The coordinator's acknowledgement of a control message.
    Ack,
    /// The coordinator rejected the message; its [`ProtocolError`] rendered
    /// as text.
    Error {
        /// The rendered coordinator-side error.
        detail: String,
    },
    /// Ends the session: the peer will close the connection after reading
    /// this frame.
    Shutdown,
}

fn io_error(context: &'static str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Io {
        context,
        detail: e.to_string(),
    }
}

/// Writes one frame, returning the total bytes put on the wire (header
/// included) so callers can meter real frame traffic.
pub fn write_frame<W: Write>(w: &mut W, msg: &WireMsg) -> Result<usize, ProtocolError> {
    let payload = serde_json::to_string(msg).map_err(|e| ProtocolError::MalformedFrame {
        detail: format!("could not serialize frame payload: {e}"),
    })?;
    let payload = payload.as_bytes();
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge {
            len: payload.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&FRAME_MAGIC)
        .map_err(|e| io_error("write frame header", e))?;
    w.write_all(&(payload.len() as u32).to_be_bytes())
        .map_err(|e| io_error("write frame header", e))?;
    w.write_all(payload)
        .map_err(|e| io_error("write frame payload", e))?;
    w.flush().map_err(|e| io_error("flush frame", e))?;
    Ok(FRAME_MAGIC.len() + 4 + payload.len())
}

/// Reads exactly `buf.len()` bytes. `at_frame_start` distinguishes a clean
/// close (EOF before any byte of this frame → [`ProtocolError::Disconnected`])
/// from a cut-off frame ([`ProtocolError::TruncatedFrame`]).
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
    at_frame_start: bool,
) -> Result<(), ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_frame_start && filled == 0 {
                    ProtocolError::Disconnected
                } else {
                    ProtocolError::TruncatedFrame { context }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                return Err(if at_frame_start && filled == 0 {
                    ProtocolError::Disconnected
                } else {
                    ProtocolError::TruncatedFrame { context }
                });
            }
            Err(e) => return Err(io_error("read frame", e)),
        }
    }
    Ok(())
}

/// Reads one frame, returning the message and the total bytes consumed.
///
/// Never panics and never reads past the frame: malformed magic, oversized
/// lengths, truncation, disconnects and undecodable payloads each map to
/// their own [`ProtocolError`] variant. With a read timeout set on the
/// underlying stream, a silent peer surfaces as [`ProtocolError::Io`] when
/// the timeout elapses — a caller is never stuck forever.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(WireMsg, usize), ProtocolError> {
    let mut magic = [0u8; 4];
    read_exact_or(r, &mut magic, "header", true)?;
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::MalformedFrame {
            detail: format!("bad magic {magic:02x?}, expected {FRAME_MAGIC:02x?}"),
        });
    }
    let mut len_bytes = [0u8; 4];
    read_exact_or(r, &mut len_bytes, "header", false)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "payload", false)?;
    let text = std::str::from_utf8(&payload).map_err(|e| ProtocolError::MalformedFrame {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    let msg: WireMsg = serde_json::from_str(text).map_err(|e| ProtocolError::MalformedFrame {
        detail: format!("payload is not a wire message: {e}"),
    })?;
    Ok((msg, FRAME_MAGIC.len() + 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::message::{Party, ProtocolMsg};

    fn verdict_envelope() -> Envelope {
        Envelope {
            from: Party::Agent,
            to: Party::Server,
            msg: ProtocolMsg::TryVerdict {
                best_try: 1,
                distance: 0.5,
            },
        }
    }

    #[test]
    fn frames_round_trip() {
        let msgs = vec![
            WireMsg::Envelope {
                envelope: verdict_envelope(),
            },
            WireMsg::AnnounceTry {
                try_index: 2,
                participants: vec![0, 3, 7],
            },
            WireMsg::Batch {
                envelopes: vec![verdict_envelope(), verdict_envelope()],
            },
            WireMsg::Ack,
            WireMsg::Error {
                detail: "nope".to_string(),
            },
            WireMsg::Shutdown,
        ];
        let mut buf = Vec::new();
        let mut written = 0;
        for m in &msgs {
            written += write_frame(&mut buf, m).unwrap();
        }
        assert_eq!(written, buf.len());
        let mut cursor = &buf[..];
        for m in &msgs {
            let (back, _) = read_frame(&mut cursor).unwrap();
            assert_eq!(&back, m);
        }
        // The stream ends cleanly between frames.
        assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Disconnected));
    }

    #[test]
    fn bad_magic_is_malformed_not_a_panic() {
        let garbage = b"HTTP/1.1 200 OK\r\n\r\n";
        let err = read_frame(&mut &garbage[..]).unwrap_err();
        assert!(matches!(err, ProtocolError::MalformedFrame { .. }), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::FrameTooLarge {
                len: u32::MAX as usize,
                max: MAX_FRAME_BYTES,
            }
        );
    }

    #[test]
    fn truncation_points_are_distinguished_from_clean_close() {
        let mut full = Vec::new();
        write_frame(&mut full, &WireMsg::Ack).unwrap();
        // Cut inside the magic, inside the length, and inside the payload.
        for cut in [2, 6, full.len() - 1] {
            let err = read_frame(&mut &full[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::TruncatedFrame { .. }),
                "cut at {cut}: {err}"
            );
        }
        // Zero bytes: a clean close.
        assert_eq!(
            read_frame(&mut &full[..0]),
            Err(ProtocolError::Disconnected)
        );
    }

    #[test]
    fn undecodable_payload_is_malformed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        let payload = b"{\"not\": \"a wire message\"}";
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, ProtocolError::MalformedFrame { .. }), "{err}");
    }
}
