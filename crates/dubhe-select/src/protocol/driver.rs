//! Deterministic drivers that pump messages between the roles.
//!
//! A driver owns no protocol knowledge beyond *sequencing*: it seeds the
//! first messages (key dispatch, tentative-try announcements), then delivers
//! queued envelopes to their addressees until the transport is drained.
//! Everything cryptographic happens inside the roles; everything observable
//! happens on the [`Transport`].
//!
//! Delivery is strictly FIFO and clients are dispatched to in id order, so a
//! driver run consumes its RNG in exactly the order the pre-actor
//! implementation did — which is what makes the compatibility wrappers in
//! [`crate::secure`] bit-identical to the legacy functions on the same seed.

use dubhe_data::ClassDistribution;
use rand::Rng;

use super::message::Party;
use super::packing::PackingPolicy;
use super::roles::{AgentNode, Coordinator, CoordinatorServer, SelectClientNode};
use super::transport::Transport;
use crate::config::DubheConfig;
use crate::error::SelectError;
use crate::registry::Registration;
use crate::selector::ClientId;

/// Delivers queued messages to their addressees until the transport drains.
///
/// The coordinator slot is any [`Coordinator`]: the in-process
/// [`CoordinatorServer`], a
/// [`ShardedCoordinator`](super::shard::ShardedCoordinator), or a
/// [`TcpTransport`](super::tcp::TcpTransport) that ships every server-bound
/// envelope across a real socket. The agent and client roles never know the
/// difference — which is the point.
pub fn pump<T, C, R>(
    transport: &mut T,
    agent: &mut AgentNode,
    clients: &mut [SelectClientNode],
    server: &mut C,
    rng: &mut R,
) -> Result<(), SelectError>
where
    T: Transport,
    C: Coordinator,
    R: Rng + ?Sized,
{
    while let Some(envelope) = transport.deliver() {
        let outgoing = match envelope.to {
            Party::Server => server.deliver(envelope)?,
            Party::Agent => agent.deliver(envelope)?,
            Party::Client(id) => {
                let population = clients.len();
                let client = clients
                    .get_mut(id)
                    .ok_or(SelectError::ClientOutOfRange { id, population })?;
                client.deliver(envelope, rng)?
            }
        };
        for e in outgoing {
            transport.send(e);
        }
    }
    Ok(())
}

/// The actors of one completed registration epoch. The agent keeps the
/// epoch keypair, the clients keep their key material and registrations —
/// reuse them for the round's multi-time exchanges via [`run_try`].
///
/// Generic over the coordinator slot (`C`): `run_registration` fills it with
/// the in-process [`CoordinatorServer`]; [`run_registration_with`] threads
/// through whatever [`Coordinator`] the caller supplies (a sharded one, or a
/// TCP connector to a remote listener).
#[derive(Debug)]
pub struct RegistrationRun<C = CoordinatorServer> {
    /// Index of the client that played the key-dispatching agent.
    pub agent_id: ClientId,
    /// The agent role (keypair owner).
    pub agent: AgentNode,
    /// Every selection client, indexed by id.
    pub clients: Vec<SelectClientNode>,
    /// The coordinator slot (ciphertexts and the public key only — or a
    /// connector to a remote process holding exactly that).
    pub server: C,
}

impl<C> RegistrationRun<C> {
    /// The overall registry as decrypted by the clients (all clients hold
    /// the same copy; this returns client 0's).
    pub fn overall_registry(&self) -> &[u64] {
        self.clients[0]
            .overall_registry()
            .expect("registration epoch completed")
    }

    /// The per-client registrations, in client order.
    pub fn registrations(&self) -> Vec<Registration> {
        self.clients
            .iter()
            .map(|c| c.registration().expect("registered").clone())
            .collect()
    }
}

/// Runs one full registration epoch (Fig. 4 steps 1–4) over `transport`.
///
/// A random agent is drawn from the population, generates the epoch keypair,
/// dispatches it (public key to the server, keypair to the clients); every
/// client registers with Algorithm 1, encrypts and uploads; the server folds
/// the arriving registries into one running homomorphic sum and broadcasts
/// it; clients and agent decrypt the total.
pub fn run_registration<T, R>(
    client_distributions: &[ClassDistribution],
    config: &DubheConfig,
    key_bits: u64,
    transport: &mut T,
    rng: &mut R,
) -> Result<RegistrationRun, SelectError>
where
    T: Transport,
    R: Rng + ?Sized,
{
    let server = CoordinatorServer::new(client_distributions.len());
    run_registration_with(
        client_distributions,
        config,
        key_bits,
        server,
        transport,
        rng,
    )
}

/// [`run_registration`] with a caller-supplied coordinator slot: a
/// [`ShardedCoordinator`](super::shard::ShardedCoordinator) for partitioned
/// folds, or a [`TcpTransport`](super::tcp::TcpTransport) to drive the
/// identical exchange against a remote
/// [`CoordinatorListener`](super::tcp::CoordinatorListener).
///
/// The supplied coordinator must expect `client_distributions.len()`
/// registrations. Returns the completed actors with the coordinator slot
/// inside, so the caller can keep using it for multi-time rounds.
pub fn run_registration_with<C, T, R>(
    client_distributions: &[ClassDistribution],
    config: &DubheConfig,
    key_bits: u64,
    server: C,
    transport: &mut T,
    rng: &mut R,
) -> Result<RegistrationRun<C>, SelectError>
where
    C: Coordinator,
    T: Transport,
    R: Rng + ?Sized,
{
    run_registration_inner(
        client_distributions,
        config,
        key_bits,
        None,
        server,
        transport,
        rng,
    )
}

/// [`run_registration_with`] under a [`PackingPolicy`]: every client uploads
/// a slot-packed registry. The supplied coordinator must hold the **same**
/// policy (via its `with_packing` builder) — a coordinator without one, or
/// with a different slot layout, refuses the uploads with typed errors.
///
/// The exchange sequence, addressees and epoch stamps are identical to the
/// unpacked run; only the registry payload representation (and therefore the
/// wire bytes) changes, so decrypted totals — and everything computed from
/// them — match the unpacked run exactly.
pub fn run_registration_with_packing<C, T, R>(
    client_distributions: &[ClassDistribution],
    config: &DubheConfig,
    key_bits: u64,
    policy: PackingPolicy,
    server: C,
    transport: &mut T,
    rng: &mut R,
) -> Result<RegistrationRun<C>, SelectError>
where
    C: Coordinator,
    T: Transport,
    R: Rng + ?Sized,
{
    run_registration_inner(
        client_distributions,
        config,
        key_bits,
        Some(policy),
        server,
        transport,
        rng,
    )
}

#[allow(clippy::too_many_arguments)] // the shared core of the two entry points
fn run_registration_inner<C, T, R>(
    client_distributions: &[ClassDistribution],
    config: &DubheConfig,
    key_bits: u64,
    packing: Option<PackingPolicy>,
    mut server: C,
    transport: &mut T,
    rng: &mut R,
) -> Result<RegistrationRun<C>, SelectError>
where
    C: Coordinator,
    T: Transport,
    R: Rng + ?Sized,
{
    let n = client_distributions.len();
    if n == 0 {
        return Err(SelectError::NoClients);
    }
    let classes = client_distributions[0].classes();

    let agent_id = rng.gen_range(0..n);
    let mut agent = AgentNode::new(key_bits, classes, rng);
    let mut clients: Vec<SelectClientNode> = client_distributions
        .iter()
        .enumerate()
        .map(|(id, d)| {
            let client = SelectClientNode::new(id, d.clone(), config);
            match packing {
                Some(policy) => client.with_packing(policy),
                None => client,
            }
        })
        .collect();

    for e in agent.dispatch_keys(n) {
        transport.send(e);
    }
    pump(transport, &mut agent, &mut clients, &mut server, rng)?;

    Ok(RegistrationRun {
        agent_id,
        agent,
        clients,
        server,
    })
}

/// Runs one tentative try of the §5.3.1 multi-time exchange: the server
/// announces the tentative participant set, each tentatively selected client
/// encrypts and uploads its scaled label distribution, the server folds them
/// and forwards `Enc(Σ p_l)` to the agent, which decrypts and scores the
/// try. Once the agent has seen every expected try (see
/// [`AgentNode::expect_tries`]) it emits its [`TryVerdict`].
///
/// [`TryVerdict`]: super::message::ProtocolMsg::TryVerdict
pub fn run_try<C, T, R>(
    try_index: usize,
    selected: &[ClientId],
    agent: &mut AgentNode,
    clients: &mut [SelectClientNode],
    server: &mut C,
    transport: &mut T,
    rng: &mut R,
) -> Result<(), SelectError>
where
    C: Coordinator,
    T: Transport,
    R: Rng + ?Sized,
{
    if selected.is_empty() {
        return Err(SelectError::EmptySelection);
    }
    for &id in selected {
        if id >= clients.len() {
            return Err(SelectError::ClientOutOfRange {
                id,
                population: clients.len(),
            });
        }
    }
    Coordinator::announce_try(server, try_index, selected)?;
    for &id in selected {
        let e = clients[id].encrypt_distribution(try_index, rng)?;
        transport.send(e);
    }
    pump(transport, agent, clients, server, rng)
}

/// [`run_try`] with injected churn: the clients in `dropped` are announced
/// as participants but never upload (a silent mid-round drop). After every
/// surviving contribution is folded, the driver explicitly closes the try —
/// the partial-cohort fold a straggler deadline would have triggered — and
/// pumps the partial sum to the agent. The agent divides by the *actual*
/// contributor count, so the population estimate stays normalized.
///
/// With an empty `dropped` this is exactly [`run_try`]. If *every*
/// participant drops the close surfaces
/// [`ProtocolError::NothingToClose`](crate::error::ProtocolError::NothingToClose)
/// — an abandoned try, never a hang.
#[allow(clippy::too_many_arguments)] // run_try's signature plus the dropout set
pub fn run_try_with_dropouts<C, T, R>(
    try_index: usize,
    selected: &[ClientId],
    dropped: &[ClientId],
    agent: &mut AgentNode,
    clients: &mut [SelectClientNode],
    server: &mut C,
    transport: &mut T,
    rng: &mut R,
) -> Result<(), SelectError>
where
    C: Coordinator,
    T: Transport,
    R: Rng + ?Sized,
{
    if dropped.is_empty() {
        return run_try(try_index, selected, agent, clients, server, transport, rng);
    }
    if selected.is_empty() {
        return Err(SelectError::EmptySelection);
    }
    for &id in selected {
        if id >= clients.len() {
            return Err(SelectError::ClientOutOfRange {
                id,
                population: clients.len(),
            });
        }
    }
    Coordinator::announce_try(server, try_index, selected)?;
    for &id in selected {
        if dropped.contains(&id) {
            continue;
        }
        let e = clients[id].encrypt_distribution(try_index, rng)?;
        transport.send(e);
    }
    pump(transport, agent, clients, server, rng)?;
    for e in server.close_try(try_index)? {
        transport.send(e);
    }
    pump(transport, agent, clients, server, rng)
}
