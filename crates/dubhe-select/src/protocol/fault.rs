//! Deterministic fault injection for protocol transports.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs the envelope
//! stream according to a [`FaultPlan`]: individual sends can be dropped,
//! duplicated, delayed past later traffic, or have one ciphertext element
//! truncated off their payload. Faults are keyed by *send index* (the 0-based
//! count of `send` calls), so a test names exactly which protocol step gets
//! hurt and the run stays reproducible — no RNG, no timing dependence.
//!
//! The point is the robustness contract: whatever the plan does to the
//! stream, the roles must answer with a typed
//! [`ProtocolError`](crate::error::ProtocolError) or a correct partial
//! result — never a panic, a hang, or a silently corrupted fold. The
//! adversarial suite drives full exchanges through this wrapper and asserts
//! exactly that.

use std::collections::{BTreeMap, VecDeque};

use super::message::{Envelope, ProtocolMsg};
use super::transport::Transport;

/// One injected misbehaviour, applied to a single `send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The envelope never reaches the queue (a silent network drop).
    Drop,
    /// The envelope is enqueued twice (a retransmit duplicate).
    Duplicate,
    /// The envelope is held back and re-enqueued after later traffic (a
    /// reordering delay). Held envelopes are flushed after the next
    /// unfaulted send, or when the queue would otherwise run dry — a delay
    /// postpones, it never loses.
    Delay,
    /// The last ciphertext element is cut off the payload (a truncation the
    /// length-prefixed wire framing would not catch). Envelopes without a
    /// ciphertext vector pass through unchanged.
    Truncate,
}

/// Which send indices get which [`Fault`], builder-style.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    schedule: BTreeMap<usize, Fault>,
}

impl FaultPlan {
    /// An empty plan (the wrapper becomes a transparent pass-through).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `fault` for the `send_index`-th send (0-based).
    pub fn with_fault(mut self, send_index: usize, fault: Fault) -> Self {
        self.schedule.insert(send_index, fault);
        self
    }

    /// Shorthand for [`with_fault`](Self::with_fault) with [`Fault::Drop`].
    pub fn drop_send(self, send_index: usize) -> Self {
        self.with_fault(send_index, Fault::Drop)
    }

    /// Shorthand for [`with_fault`](Self::with_fault) with
    /// [`Fault::Duplicate`].
    pub fn duplicate_send(self, send_index: usize) -> Self {
        self.with_fault(send_index, Fault::Duplicate)
    }

    /// Shorthand for [`with_fault`](Self::with_fault) with [`Fault::Delay`].
    pub fn delay_send(self, send_index: usize) -> Self {
        self.with_fault(send_index, Fault::Delay)
    }

    /// Shorthand for [`with_fault`](Self::with_fault) with
    /// [`Fault::Truncate`].
    pub fn truncate_send(self, send_index: usize) -> Self {
        self.with_fault(send_index, Fault::Truncate)
    }
}

/// What the wrapper actually did to the stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Envelopes silently dropped.
    pub dropped: usize,
    /// Envelopes enqueued twice.
    pub duplicated: usize,
    /// Envelopes held back and reordered.
    pub delayed: usize,
    /// Envelopes whose payload lost its last ciphertext element.
    pub truncated: usize,
}

/// A [`Transport`] wrapper that injects the faults of a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    sends: usize,
    held: VecDeque<Envelope>,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, perturbing its stream per `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            sends: 0,
            held: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The wrapped transport (e.g. to read its metering).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn flush_held(&mut self) {
        while let Some(e) = self.held.pop_front() {
            self.inner.send(e);
        }
    }
}

/// Cuts the last element off a ciphertext vector. `slice(0, len - 1)`
/// cannot fail for a non-empty vector, but a typed fallback beats
/// unwrapping inside a fault injector.
fn cut_last(v: dubhe_he::EncryptedVector) -> (dubhe_he::EncryptedVector, bool) {
    if v.is_empty() {
        return (v, false);
    }
    match v.slice(0, v.len() - 1) {
        Ok(shorter) => (shorter, true),
        Err(_) => (v, false),
    }
}

/// Cuts the last ciphertext element off a vector-bearing message. Returns
/// the (possibly modified) message and whether anything was cut.
fn truncate_payload(msg: ProtocolMsg) -> (ProtocolMsg, bool) {
    match msg {
        ProtocolMsg::EncryptedRegistry { client, registry } => {
            let (registry, cut) = cut_last(registry);
            (ProtocolMsg::EncryptedRegistry { client, registry }, cut)
        }
        ProtocolMsg::EncryptedTotalBroadcast { total } => {
            let (total, cut) = cut_last(total);
            (ProtocolMsg::EncryptedTotalBroadcast { total }, cut)
        }
        ProtocolMsg::EncryptedDistribution {
            client,
            try_index,
            distribution,
        } => {
            let (distribution, cut) = cut_last(distribution);
            (
                ProtocolMsg::EncryptedDistribution {
                    client,
                    try_index,
                    distribution,
                },
                cut,
            )
        }
        ProtocolMsg::EncryptedDistributionSum {
            try_index,
            contributors,
            sum,
        } => {
            let (sum, cut) = cut_last(sum);
            (
                ProtocolMsg::EncryptedDistributionSum {
                    try_index,
                    contributors,
                    sum,
                },
                cut,
            )
        }
        other => (other, false),
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, envelope: Envelope) {
        let fault = self.plan.schedule.get(&self.sends).copied();
        self.sends += 1;
        match fault {
            Some(Fault::Drop) => {
                self.stats.dropped += 1;
            }
            Some(Fault::Duplicate) => {
                self.stats.duplicated += 1;
                self.inner.send(envelope.clone());
                self.inner.send(envelope);
                self.flush_held();
            }
            Some(Fault::Delay) => {
                self.stats.delayed += 1;
                self.held.push_back(envelope);
            }
            Some(Fault::Truncate) => {
                let (msg, cut) = truncate_payload(envelope.msg);
                if cut {
                    self.stats.truncated += 1;
                }
                self.inner.send(Envelope { msg, ..envelope });
                self.flush_held();
            }
            None => {
                self.inner.send(envelope);
                self.flush_held();
            }
        }
    }

    fn deliver(&mut self) -> Option<Envelope> {
        if let Some(e) = self.inner.deliver() {
            return Some(e);
        }
        if self.held.is_empty() {
            return None;
        }
        // The queue ran dry with envelopes still held: release them now so
        // a delay can never starve the exchange.
        self.flush_held();
        self.inner.deliver()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::message::Party;
    use crate::protocol::transport::InMemoryTransport;

    fn verdict(best_try: usize) -> Envelope {
        Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try,
                distance: 0.5,
            },
        }
    }

    fn best_try(e: &Envelope) -> usize {
        match e.msg {
            ProtocolMsg::TryVerdict { best_try, .. } => best_try,
            _ => panic!("expected a verdict"),
        }
    }

    #[test]
    fn drop_duplicate_and_delay_shape_the_stream_deterministically() {
        let plan = FaultPlan::new()
            .drop_send(0)
            .delay_send(1)
            .duplicate_send(2);
        let mut t = FaultyTransport::new(InMemoryTransport::new(), plan);
        for i in 0..4 {
            t.send(verdict(i));
        }
        // 0 dropped; 1 delayed until after 2 (which doubles); 3 unfaulted.
        let mut order = Vec::new();
        while let Some(e) = t.deliver() {
            order.push(best_try(&e));
        }
        assert_eq!(order, vec![2, 2, 1, 3]);
        assert_eq!(
            *t.stats(),
            FaultStats {
                dropped: 1,
                duplicated: 1,
                delayed: 1,
                truncated: 0,
            }
        );
    }

    #[test]
    fn a_delay_with_no_later_traffic_still_delivers() {
        let plan = FaultPlan::new().delay_send(0);
        let mut t = FaultyTransport::new(InMemoryTransport::new(), plan);
        t.send(verdict(7));
        let only = t.deliver().expect("released when the queue runs dry");
        assert_eq!(best_try(&only), 7);
        assert!(t.deliver().is_none());
    }

    #[test]
    fn truncate_skips_messages_without_a_ciphertext_vector() {
        let plan = FaultPlan::new().truncate_send(0);
        let mut t = FaultyTransport::new(InMemoryTransport::new(), plan);
        t.send(verdict(1));
        assert_eq!(t.stats().truncated, 0);
        assert_eq!(best_try(&t.deliver().expect("passed through")), 1);
    }

    #[test]
    fn truncate_cuts_exactly_one_ciphertext_element() {
        use dubhe_he::{EncryptedVector, Keypair};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let v = EncryptedVector::encrypt_u64(&kp.public, &[1, 2, 3], &mut rng);

        let plan = FaultPlan::new().truncate_send(0);
        let mut t = FaultyTransport::new(InMemoryTransport::new(), plan);
        t.send(Envelope {
            from: Party::Client(0),
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::EncryptedRegistry {
                client: 0,
                registry: v,
            },
        });
        assert_eq!(t.stats().truncated, 1);
        let out = t.deliver().expect("delivered truncated");
        match out.msg {
            ProtocolMsg::EncryptedRegistry { registry, .. } => assert_eq!(registry.len(), 2),
            other => panic!("unexpected message {other:?}"),
        }
    }
}
