//! Pluggable payload codecs for the framed wire protocol.
//!
//! A frame (see [`super::wire`]) is `magic | u32 length | payload`; the
//! 4-byte magic names both the protocol *and* the payload codec, so codec
//! choice is negotiated per connection from the frames themselves — a
//! listener serves `DBH1` and `DBH2` peers side by side and always replies
//! in the codec a request arrived in.
//!
//! Two codecs implement [`WireCodec`]:
//!
//! * [`JsonCodec`] — the original `DBH1` format: the [`WireMsg`] rendered as
//!   JSON with decimal-string bignums. Kept for compatibility — decoding
//!   accepts every pre-epoch frame unchanged (a missing `"epoch"` field
//!   defaults to 0); costs ~2.5× the canonical ciphertext bytes.
//! * [`BinaryCodec`] — `DBH2`: a canonical binary layout whose ciphertext
//!   fields are the fixed-width big-endian limbs of
//!   [`dubhe_he::codec`], so a frame is its canonical payload plus a small
//!   constant header (≤ 1.10× canonical, asserted by `overhead_report`).
//!
//! Negotiation is *format* selection only — it authenticates nothing (see
//! `docs/THREAT_MODEL.md`).
//!
//! ## `DBH2` payload layout
//!
//! All integers big-endian; `uN` fields are fixed-width; bignums use the
//! canonical encodings of [`dubhe_he::codec`].
//!
//! ```text
//! wiremsg  := 0 envelope
//!           | 1 u64 try_index  u32 count  count × u64 participant
//!           | 2 u32 count  count × envelope
//!           | 3                                  (Ack)
//!           | 4 u32 len  utf-8 detail            (Error)
//!           | 5                                  (Shutdown)
//!           | 6 u64 epoch  u64 expected          (BeginEpoch)
//!           | 7                                  (CloseRegistration)
//!           | 8 u64 try_index                    (CloseTry)
//! envelope := party party u64-epoch protocolmsg
//! party    := 0 | 1 | 2 u64 client-id
//! protocolmsg :=
//!     0 public-key  u8 has-private  [private-key]
//!   | 1 u64 client  vector
//!   | 2 vector
//!   | 3 u64 client  u64 try_index  vector
//!   | 4 u64 try_index  u64 contributors  vector
//!   | 5 u64 best_try  f64-bits distance
//!   | 6 u64 client  packed-vector                      (PackedRegistry)
//!   | 7 packed-vector                                  (PackedTotalBroadcast)
//!   | 8 u64 client  u64 try_index  packed-vector       (PackedDistribution)
//!   | 9 u64 try_index  u64 contributors  packed-vector (PackedDistributionSum)
//! packed-vector := u32 slot_bits  u64 key_bits  u64 count  vector
//! ```
//!
//! The packed variants extend the tag sequence (6–9) rather than reordering
//! it, so every pre-packing DBH2 peer still reads tags 0–5 unchanged.

use dubhe_he::codec as he;
use dubhe_he::transport::{private_key_size_bytes, public_key_size_bytes};
use serde::{Deserialize, Serialize};

use super::message::{Envelope, Party, ProtocolMsg};
use super::wire::WireMsg;
use crate::error::ProtocolError;
use dubhe_he::HeError;

/// A payload codec: encodes a [`WireMsg`] to frame-payload bytes and back.
///
/// Implementations must be *total* over `WireMsg` (every variant encodes)
/// and *defensive* on decode: arbitrary bytes surface as
/// [`ProtocolError::MalformedFrame`], never a panic.
pub trait WireCodec {
    /// Which negotiable codec this is.
    fn kind(&self) -> CodecKind;

    /// Serializes one message into a frame payload.
    fn encode(&self, msg: &WireMsg) -> Result<Vec<u8>, ProtocolError>;

    /// Parses one frame payload. The whole payload must be consumed.
    fn decode(&self, payload: &[u8]) -> Result<WireMsg, ProtocolError>;
}

/// The negotiable codec identifiers, i.e. the known frame magics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CodecKind {
    /// `DBH1`: JSON payloads (compatibility default).
    Json,
    /// `DBH2`: canonical binary payloads.
    Binary,
    /// `DBHZ`: `DBH1` JSON payloads under transparent per-frame LZSS
    /// compression (see [`super::compress`]).
    JsonLz,
}

impl CodecKind {
    /// The 4-byte frame magic announcing this codec.
    pub fn magic(self) -> [u8; 4] {
        match self {
            CodecKind::Json => *b"DBH1",
            CodecKind::Binary => *b"DBH2",
            CodecKind::JsonLz => *b"DBHZ",
        }
    }

    /// Resolves a frame magic to its codec, if known.
    pub fn from_magic(magic: [u8; 4]) -> Option<CodecKind> {
        match &magic {
            b"DBH1" => Some(CodecKind::Json),
            b"DBH2" => Some(CodecKind::Binary),
            b"DBHZ" => Some(CodecKind::JsonLz),
            _ => None,
        }
    }

    /// The wire-format name (`"DBH1"` / `"DBH2"` / `"DBHZ"`).
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Json => "DBH1",
            CodecKind::Binary => "DBH2",
            CodecKind::JsonLz => "DBHZ",
        }
    }

    /// The codec implementation behind this identifier.
    pub fn as_codec(self) -> &'static dyn WireCodec {
        match self {
            CodecKind::Json => &JsonCodec,
            CodecKind::Binary => &BinaryCodec,
            CodecKind::JsonLz => &CompressedJsonCodec,
        }
    }

    /// Shorthand for `self.as_codec().encode(msg)`.
    pub fn encode(self, msg: &WireMsg) -> Result<Vec<u8>, ProtocolError> {
        self.as_codec().encode(msg)
    }

    /// Shorthand for `self.as_codec().decode(payload)`.
    pub fn decode(self, payload: &[u8]) -> Result<WireMsg, ProtocolError> {
        self.as_codec().decode(payload)
    }
}

/// The `DBH1` payload codec: `WireMsg` as JSON.
///
/// Compatibility with pre-codec-layer peers is one-directional since the
/// epoch lifecycle landed: *decoding* still accepts every legacy frame (an
/// envelope without an `"epoch"` field deserializes as epoch 0 via the serde
/// default, pinned by a test), but *encoded* envelopes now carry their epoch
/// stamp, so a strict legacy reader would see one extra field. The other
/// JSON shape that changed in an earlier release is `PrivateKey` itself (now
/// factors-only, see `dubhe-he::keys`), which affects only locally
/// serialized key material, never protocol sockets.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

impl WireCodec for JsonCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Json
    }

    fn encode(&self, msg: &WireMsg) -> Result<Vec<u8>, ProtocolError> {
        serde_json::to_string(msg)
            .map(String::into_bytes)
            .map_err(|e| ProtocolError::MalformedFrame {
                detail: format!("could not serialize frame payload: {e}"),
            })
    }

    fn decode(&self, payload: &[u8]) -> Result<WireMsg, ProtocolError> {
        let text = std::str::from_utf8(payload).map_err(|e| ProtocolError::MalformedFrame {
            detail: format!("payload is not UTF-8: {e}"),
        })?;
        serde_json::from_str(text).map_err(|e| ProtocolError::MalformedFrame {
            detail: format!("payload is not a wire message: {e}"),
        })
    }
}

/// The `DBHZ` payload codec: the exact `DBH1` JSON rendering, LZSS-
/// compressed per frame (see [`super::compress`]).
///
/// Compatibility is inherited from [`JsonCodec`] — inflate a `DBHZ`
/// payload and a legacy DBH1 peer could read it verbatim. The declared
/// inflated length is capped at the default frame ceiling, so a
/// decompression bomb is refused before a byte of it is inflated.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressedJsonCodec;

impl WireCodec for CompressedJsonCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::JsonLz
    }

    fn encode(&self, msg: &WireMsg) -> Result<Vec<u8>, ProtocolError> {
        Ok(super::compress::compress(&JsonCodec.encode(msg)?))
    }

    fn decode(&self, payload: &[u8]) -> Result<WireMsg, ProtocolError> {
        let inflated = super::compress::decompress(payload, super::wire::MAX_FRAME_BYTES)?;
        JsonCodec.decode(&inflated)
    }
}

/// The `DBH2` payload codec: canonical fixed-width binary.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

impl WireCodec for BinaryCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Binary
    }

    fn encode(&self, msg: &WireMsg) -> Result<Vec<u8>, ProtocolError> {
        // Size-hint the buffer from the transport size model: ciphertext
        // payloads dominate every frame, and their encoded width is an exact
        // function of (length, key size) — so a registry upload is written
        // into one allocation instead of doubling its way up.
        let mut out = Vec::with_capacity(payload_size_hint(msg));
        match msg {
            WireMsg::Envelope { envelope } => {
                out.push(0);
                encode_envelope(envelope, &mut out)?;
            }
            WireMsg::AnnounceTry {
                try_index,
                participants,
            } => {
                out.push(1);
                he::put_u64(&mut out, *try_index as u64);
                he::put_u32(&mut out, participants.len() as u32);
                for &p in participants {
                    he::put_u64(&mut out, p as u64);
                }
            }
            WireMsg::Batch { envelopes } => {
                out.push(2);
                he::put_u32(&mut out, envelopes.len() as u32);
                for e in envelopes {
                    encode_envelope(e, &mut out)?;
                }
            }
            WireMsg::Ack => out.push(3),
            WireMsg::Error { detail } => {
                out.push(4);
                he::put_u32(&mut out, detail.len() as u32);
                out.extend_from_slice(detail.as_bytes());
            }
            WireMsg::Shutdown => out.push(5),
            // The epoch-lifecycle control frames postdate tags 0–5; their
            // tags extend the sequence rather than following the enum's
            // declaration order, so every pre-lifecycle DBH2 peer still
            // reads the original six unchanged.
            WireMsg::BeginEpoch {
                epoch,
                expected_registrations,
            } => {
                out.push(6);
                he::put_u64(&mut out, *epoch);
                he::put_u64(&mut out, *expected_registrations as u64);
            }
            WireMsg::CloseRegistration => out.push(7),
            WireMsg::CloseTry { try_index } => {
                out.push(8);
                he::put_u64(&mut out, *try_index as u64);
            }
        }
        Ok(out)
    }

    fn decode(&self, payload: &[u8]) -> Result<WireMsg, ProtocolError> {
        let mut cur = payload;
        let msg = decode_wiremsg(&mut cur)?;
        if !cur.is_empty() {
            return Err(malformed("trailing bytes after the wire message"));
        }
        Ok(msg)
    }
}

/// Encoded size of a party tag (client ids carry a u64).
fn party_hint(p: &Party) -> usize {
    match p {
        Party::Client(_) => 9,
        _ => 1,
    }
}

/// Encoded size of one envelope, from the `dubhe-he` transport size model.
/// Exact for every ciphertext-bearing message (their encodings are
/// fixed-width); an upper bound (within a few bytes) for key dispatches,
/// whose prime factors may encode one byte short of the modeled half-modulus
/// width.
fn envelope_hint(e: &Envelope) -> usize {
    let body = match &e.msg {
        ProtocolMsg::PublicKeyDispatch {
            public_key,
            private_key,
        } => {
            let pk = 4 + public_key_size_bytes(public_key);
            let sk = private_key
                .as_ref()
                .map(|sk| {
                    4 + public_key_size_bytes(&sk.public)
                        + 8
                        + private_key_size_bytes(&sk.public)
                        + 2
                })
                .unwrap_or(0);
            pk + 1 + sk
        }
        ProtocolMsg::EncryptedRegistry { registry, .. } => 8 + he::encoded_vector_bytes(registry),
        ProtocolMsg::EncryptedTotalBroadcast { total } => he::encoded_vector_bytes(total),
        ProtocolMsg::EncryptedDistribution { distribution, .. } => {
            16 + he::encoded_vector_bytes(distribution)
        }
        ProtocolMsg::EncryptedDistributionSum { sum, .. } => 16 + he::encoded_vector_bytes(sum),
        ProtocolMsg::TryVerdict { .. } => 16,
        ProtocolMsg::PackedRegistry { registry, .. } => {
            8 + he::encoded_packed_vector_bytes(registry)
        }
        ProtocolMsg::PackedTotalBroadcast { total } => he::encoded_packed_vector_bytes(total),
        ProtocolMsg::PackedDistribution { distribution, .. } => {
            16 + he::encoded_packed_vector_bytes(distribution)
        }
        ProtocolMsg::PackedDistributionSum { sum, .. } => 16 + he::encoded_packed_vector_bytes(sum),
    };
    party_hint(&e.from) + party_hint(&e.to) + 8 + 1 + body
}

/// Encoded size of a whole frame payload (exact except for the key-dispatch
/// slack noted on [`envelope_hint`]); what [`BinaryCodec::encode`] reserves.
fn payload_size_hint(msg: &WireMsg) -> usize {
    1 + match msg {
        WireMsg::Envelope { envelope } => envelope_hint(envelope),
        WireMsg::AnnounceTry { participants, .. } => 8 + 4 + 8 * participants.len(),
        WireMsg::Batch { envelopes } => 4 + envelopes.iter().map(envelope_hint).sum::<usize>(),
        WireMsg::Ack | WireMsg::Shutdown | WireMsg::CloseRegistration => 0,
        WireMsg::Error { detail } => 4 + detail.len(),
        WireMsg::BeginEpoch { .. } => 16,
        WireMsg::CloseTry { .. } => 8,
    }
}

fn malformed(detail: &str) -> ProtocolError {
    ProtocolError::MalformedFrame {
        detail: format!("binary payload: {detail}"),
    }
}

fn he_err(e: HeError) -> ProtocolError {
    ProtocolError::MalformedFrame {
        detail: format!("binary payload: {e}"),
    }
}

fn encode_party(party: &Party, out: &mut Vec<u8>) {
    match party {
        Party::Agent => out.push(0),
        Party::Server => out.push(1),
        Party::Client(id) => {
            out.push(2);
            he::put_u64(out, *id as u64);
        }
    }
}

fn encode_envelope(e: &Envelope, out: &mut Vec<u8>) -> Result<(), ProtocolError> {
    encode_party(&e.from, out);
    encode_party(&e.to, out);
    he::put_u64(out, e.epoch);
    match &e.msg {
        ProtocolMsg::PublicKeyDispatch {
            public_key,
            private_key,
        } => {
            out.push(0);
            he::encode_public_key(public_key, out);
            match private_key {
                None => out.push(0),
                Some(sk) => {
                    out.push(1);
                    he::encode_private_key(sk, out);
                }
            }
        }
        ProtocolMsg::EncryptedRegistry { client, registry } => {
            out.push(1);
            he::put_u64(out, *client as u64);
            he::encode_vector(registry, out).map_err(he_err)?;
        }
        ProtocolMsg::EncryptedTotalBroadcast { total } => {
            out.push(2);
            he::encode_vector(total, out).map_err(he_err)?;
        }
        ProtocolMsg::EncryptedDistribution {
            client,
            try_index,
            distribution,
        } => {
            out.push(3);
            he::put_u64(out, *client as u64);
            he::put_u64(out, *try_index as u64);
            he::encode_vector(distribution, out).map_err(he_err)?;
        }
        ProtocolMsg::EncryptedDistributionSum {
            try_index,
            contributors,
            sum,
        } => {
            out.push(4);
            he::put_u64(out, *try_index as u64);
            he::put_u64(out, *contributors as u64);
            he::encode_vector(sum, out).map_err(he_err)?;
        }
        ProtocolMsg::TryVerdict { best_try, distance } => {
            out.push(5);
            he::put_u64(out, *best_try as u64);
            he::put_u64(out, distance.to_bits());
        }
        ProtocolMsg::PackedRegistry { client, registry } => {
            out.push(6);
            he::put_u64(out, *client as u64);
            he::encode_packed_vector(registry, out).map_err(he_err)?;
        }
        ProtocolMsg::PackedTotalBroadcast { total } => {
            out.push(7);
            he::encode_packed_vector(total, out).map_err(he_err)?;
        }
        ProtocolMsg::PackedDistribution {
            client,
            try_index,
            distribution,
        } => {
            out.push(8);
            he::put_u64(out, *client as u64);
            he::put_u64(out, *try_index as u64);
            he::encode_packed_vector(distribution, out).map_err(he_err)?;
        }
        ProtocolMsg::PackedDistributionSum {
            try_index,
            contributors,
            sum,
        } => {
            out.push(9);
            he::put_u64(out, *try_index as u64);
            he::put_u64(out, *contributors as u64);
            he::encode_packed_vector(sum, out).map_err(he_err)?;
        }
    }
    Ok(())
}

/// A recognised-but-undecoded `DBH2` registry upload: the owned frame
/// payload plus the envelope prefix parsed out of it.
///
/// Registry uploads are the coordinator's hot path — thousands per round,
/// each dominated by its fixed-width ciphertext block. Materialising that
/// block into per-element `BigUint`s on the
/// connection thread, only to multiply the values into a fold and drop
/// them, is pure allocator traffic. [`RegistryFrame::try_from_payload`]
/// instead parses just the constant-size envelope prefix (`O(1)`, no
/// ciphertext touched) so the transport can ship the raw payload to the
/// router, where [`view`](Self::view) decodes the vector as a borrowed
/// [`EncryptedVectorView`](he::EncryptedVectorView) and the fold multiplies
/// residues straight out of the frame bytes.
///
/// Anything that is not a plain single-registry `DBH2` envelope is handed
/// back unparsed, so the eager path keeps its exact error behaviour.
#[derive(Debug, Clone)]
pub struct RegistryFrame {
    payload: Vec<u8>,
    from: Party,
    to: Party,
    epoch: u64,
    client: usize,
    /// Offset of the encoded vector inside `payload`.
    vector_offset: usize,
}

impl RegistryFrame {
    /// Parses the envelope prefix of a `DBH2` frame payload. Returns the
    /// payload unchanged (`Err`) when it is anything other than a plain
    /// `Envelope { msg: EncryptedRegistry }` — truncated prefixes included,
    /// so the eager decoder owns every malformed-frame diagnosis.
    ///
    /// The ciphertext block is *not* validated here; [`view`](Self::view)
    /// performs the full vector validation at fold time.
    pub fn try_from_payload(payload: Vec<u8>) -> Result<RegistryFrame, Vec<u8>> {
        match Self::parse_prefix(&payload) {
            Some((from, to, epoch, client, vector_offset)) => Ok(RegistryFrame {
                payload,
                from,
                to,
                epoch,
                client,
                vector_offset,
            }),
            None => Err(payload),
        }
    }

    /// `true` iff [`try_from_payload`](Self::try_from_payload) would accept
    /// this payload — the borrowed check an event loop runs before copying
    /// the payload out of its reassembly buffer.
    pub fn matches_prefix(payload: &[u8]) -> bool {
        Self::parse_prefix(payload).is_some()
    }

    /// The envelope-prefix parse shared by the owned and borrowed entry
    /// points: `(from, to, epoch, client, vector_offset)`.
    fn parse_prefix(payload: &[u8]) -> Option<(Party, Party, u64, usize, usize)> {
        let mut cur = payload;
        let parsed = (|cur: &mut &[u8]| -> Result<(Party, Party, u64, usize), ProtocolError> {
            if take_u8(cur)? != 0 {
                return Err(malformed("not an envelope"));
            }
            let from = decode_party(cur)?;
            let to = decode_party(cur)?;
            let epoch = he::take_u64(cur).map_err(he_err)?;
            if take_u8(cur)? != 1 {
                return Err(malformed("not a registry"));
            }
            let client = take_usize(cur)?;
            Ok((from, to, epoch, client))
        })(&mut cur);
        let (from, to, epoch, client) = parsed.ok()?;
        Some((from, to, epoch, client, payload.len() - cur.len()))
    }

    /// Sender of the deferred envelope.
    pub fn from(&self) -> Party {
        self.from
    }

    /// Recipient of the deferred envelope.
    pub fn to(&self) -> Party {
        self.to
    }

    /// Epoch stamp of the deferred envelope.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registering client id.
    pub fn client(&self) -> usize {
        self.client
    }

    /// Size in bytes of the whole frame payload.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Decodes the registry as a borrowed view over the frame payload —
    /// full vector validation (header shape, count-vs-payload, residues
    /// `< n²`, no trailing bytes), zero per-element allocation.
    pub fn view(&self) -> Result<he::EncryptedVectorView<'_>, ProtocolError> {
        let mut cur = &self.payload[self.vector_offset..];
        let view = he::decode_vector_view(&mut cur).map_err(he_err)?;
        if !cur.is_empty() {
            return Err(malformed("trailing bytes after the wire message"));
        }
        Ok(view)
    }

    /// Decodes the whole payload eagerly into the envelope it defers — the
    /// escape hatch for receivers that need an owned [`Envelope`] (and the
    /// path that keeps error behaviour identical to an undeferred frame).
    pub fn materialize(&self) -> Result<Envelope, ProtocolError> {
        match BinaryCodec.decode(&self.payload)? {
            WireMsg::Envelope { envelope } => Ok(envelope),
            _ => Err(malformed("deferred frame is not an envelope")),
        }
    }
}

fn take_u8(cur: &mut &[u8]) -> Result<u8, ProtocolError> {
    let b = he::take_bytes(cur, 1).map_err(he_err)?;
    Ok(b[0])
}

fn take_usize(cur: &mut &[u8]) -> Result<usize, ProtocolError> {
    let v = he::take_u64(cur).map_err(he_err)?;
    usize::try_from(v).map_err(|_| malformed("scalar does not fit in usize"))
}

fn take_count(cur: &mut &[u8]) -> Result<usize, ProtocolError> {
    Ok(he::take_u32(cur).map_err(he_err)? as usize)
}

fn decode_party(cur: &mut &[u8]) -> Result<Party, ProtocolError> {
    match take_u8(cur)? {
        0 => Ok(Party::Agent),
        1 => Ok(Party::Server),
        2 => Ok(Party::Client(take_usize(cur)?)),
        tag => Err(malformed_tag("party", tag)),
    }
}

fn malformed_tag(what: &str, tag: u8) -> ProtocolError {
    ProtocolError::MalformedFrame {
        detail: format!("binary payload: unknown {what} tag {tag}"),
    }
}

fn decode_envelope(cur: &mut &[u8]) -> Result<Envelope, ProtocolError> {
    let from = decode_party(cur)?;
    let to = decode_party(cur)?;
    let epoch = he::take_u64(cur).map_err(he_err)?;
    let msg = match take_u8(cur)? {
        0 => {
            let public_key = he::decode_public_key(cur).map_err(he_err)?;
            let private_key = match take_u8(cur)? {
                0 => None,
                1 => Some(he::decode_private_key(cur).map_err(he_err)?),
                tag => return Err(malformed_tag("private-key presence", tag)),
            };
            ProtocolMsg::PublicKeyDispatch {
                public_key,
                private_key,
            }
        }
        1 => ProtocolMsg::EncryptedRegistry {
            client: take_usize(cur)?,
            registry: he::decode_vector(cur).map_err(he_err)?,
        },
        2 => ProtocolMsg::EncryptedTotalBroadcast {
            total: he::decode_vector(cur).map_err(he_err)?,
        },
        3 => ProtocolMsg::EncryptedDistribution {
            client: take_usize(cur)?,
            try_index: take_usize(cur)?,
            distribution: he::decode_vector(cur).map_err(he_err)?,
        },
        4 => ProtocolMsg::EncryptedDistributionSum {
            try_index: take_usize(cur)?,
            contributors: take_usize(cur)?,
            sum: he::decode_vector(cur).map_err(he_err)?,
        },
        5 => ProtocolMsg::TryVerdict {
            best_try: take_usize(cur)?,
            distance: f64::from_bits(he::take_u64(cur).map_err(he_err)?),
        },
        6 => ProtocolMsg::PackedRegistry {
            client: take_usize(cur)?,
            registry: he::decode_packed_vector(cur).map_err(he_err)?,
        },
        7 => ProtocolMsg::PackedTotalBroadcast {
            total: he::decode_packed_vector(cur).map_err(he_err)?,
        },
        8 => ProtocolMsg::PackedDistribution {
            client: take_usize(cur)?,
            try_index: take_usize(cur)?,
            distribution: he::decode_packed_vector(cur).map_err(he_err)?,
        },
        9 => ProtocolMsg::PackedDistributionSum {
            try_index: take_usize(cur)?,
            contributors: take_usize(cur)?,
            sum: he::decode_packed_vector(cur).map_err(he_err)?,
        },
        tag => return Err(malformed_tag("protocol-message", tag)),
    };
    Ok(Envelope {
        from,
        to,
        epoch,
        msg,
    })
}

fn decode_wiremsg(cur: &mut &[u8]) -> Result<WireMsg, ProtocolError> {
    match take_u8(cur)? {
        0 => Ok(WireMsg::Envelope {
            envelope: decode_envelope(cur)?,
        }),
        1 => {
            let try_index = take_usize(cur)?;
            let count = take_count(cur)?;
            // 8 bytes per participant: refuse counts the payload cannot hold
            // before reserving anything.
            if count.checked_mul(8).is_none_or(|need| need > cur.len()) {
                return Err(malformed("participant count overruns the payload"));
            }
            let mut participants = Vec::with_capacity(count);
            for _ in 0..count {
                participants.push(take_usize(cur)?);
            }
            Ok(WireMsg::AnnounceTry {
                try_index,
                participants,
            })
        }
        2 => {
            let count = take_count(cur)?;
            // Envelopes are variable-width; a lower bound of 3 bytes each
            // (two parties + message tag) rejects impossible counts early.
            if count.checked_mul(3).is_none_or(|need| need > cur.len()) {
                return Err(malformed("envelope count overruns the payload"));
            }
            // No pre-reservation from the announced count: an in-memory
            // `Envelope` is two orders of magnitude larger than its 3-byte
            // wire lower bound, so `with_capacity(count)` would let one
            // hostile frame reserve gigabytes before the first envelope
            // fails to decode. Growth stays bounded by what actually
            // decodes from the (size-capped) payload.
            let mut envelopes = Vec::new();
            for _ in 0..count {
                envelopes.push(decode_envelope(cur)?);
            }
            Ok(WireMsg::Batch { envelopes })
        }
        3 => Ok(WireMsg::Ack),
        4 => {
            let len = take_count(cur)?;
            let bytes = he::take_bytes(cur, len).map_err(he_err)?;
            let detail = std::str::from_utf8(bytes)
                .map_err(|_| malformed("error detail is not UTF-8"))?
                .to_string();
            Ok(WireMsg::Error { detail })
        }
        5 => Ok(WireMsg::Shutdown),
        6 => Ok(WireMsg::BeginEpoch {
            epoch: he::take_u64(cur).map_err(he_err)?,
            expected_registrations: take_usize(cur)?,
        }),
        7 => Ok(WireMsg::CloseRegistration),
        8 => Ok(WireMsg::CloseTry {
            try_index: take_usize(cur)?,
        }),
        tag => Err(malformed_tag("wire-message", tag)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_he::{EncryptedVector, Keypair};
    use rand::SeedableRng;

    fn sample_msgs() -> Vec<WireMsg> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let v = EncryptedVector::encrypt_u64(&kp.public, &[0, 1, 0, 2], &mut rng);
        let packer = dubhe_he::Packer::new(16, dubhe_he::TEST_KEY_BITS);
        let pv = dubhe_he::PackedEncryptedVector::encrypt(
            packer,
            &kp.public,
            &(0..20).map(|i| i * 3).collect::<Vec<u64>>(),
            &mut rng,
        )
        .unwrap();
        let env = |msg: ProtocolMsg| Envelope {
            from: Party::Client(3),
            to: Party::Server,
            epoch: 4,
            msg,
        };
        vec![
            WireMsg::Envelope {
                envelope: Envelope {
                    from: Party::Agent,
                    to: Party::Client(1),
                    epoch: 4,
                    msg: ProtocolMsg::PublicKeyDispatch {
                        public_key: kp.public.clone(),
                        private_key: Some(kp.private.clone()),
                    },
                },
            },
            WireMsg::Envelope {
                envelope: Envelope {
                    from: Party::Agent,
                    to: Party::Server,
                    epoch: 4,
                    msg: ProtocolMsg::PublicKeyDispatch {
                        public_key: kp.public.clone(),
                        private_key: None,
                    },
                },
            },
            WireMsg::Envelope {
                envelope: env(ProtocolMsg::EncryptedRegistry {
                    client: 3,
                    registry: v.clone(),
                }),
            },
            WireMsg::Batch {
                envelopes: vec![
                    env(ProtocolMsg::EncryptedTotalBroadcast { total: v.clone() }),
                    env(ProtocolMsg::EncryptedDistribution {
                        client: 3,
                        try_index: 2,
                        distribution: v.clone(),
                    }),
                    env(ProtocolMsg::EncryptedDistributionSum {
                        try_index: 2,
                        contributors: 9,
                        sum: v,
                    }),
                    env(ProtocolMsg::TryVerdict {
                        best_try: 1,
                        distance: 0.625,
                    }),
                ],
            },
            WireMsg::Envelope {
                envelope: env(ProtocolMsg::PackedRegistry {
                    client: 3,
                    registry: pv.clone(),
                }),
            },
            WireMsg::Batch {
                envelopes: vec![
                    env(ProtocolMsg::PackedTotalBroadcast { total: pv.clone() }),
                    env(ProtocolMsg::PackedDistribution {
                        client: 3,
                        try_index: 2,
                        distribution: pv.clone(),
                    }),
                    env(ProtocolMsg::PackedDistributionSum {
                        try_index: 2,
                        contributors: 9,
                        sum: pv,
                    }),
                ],
            },
            WireMsg::AnnounceTry {
                try_index: 7,
                participants: vec![0, 5, 11],
            },
            WireMsg::Ack,
            WireMsg::Error {
                detail: "nope — später".to_string(),
            },
            WireMsg::Shutdown,
            WireMsg::BeginEpoch {
                epoch: 5,
                expected_registrations: 12,
            },
            WireMsg::CloseRegistration,
            WireMsg::CloseTry { try_index: 2 },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_both_codecs() {
        for msg in sample_msgs() {
            for kind in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
                let payload = kind.encode(&msg).unwrap();
                let back = kind.decode(&payload).unwrap();
                assert_eq!(back, msg, "{} round trip", kind.name());
            }
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json_for_ciphertext_payloads() {
        for msg in sample_msgs() {
            let json = CodecKind::Json.encode(&msg).unwrap();
            let binary = CodecKind::Binary.encode(&msg).unwrap();
            if matches!(&msg, WireMsg::Envelope { .. } | WireMsg::Batch { .. }) {
                assert!(
                    binary.len() * 2 < json.len(),
                    "binary ({}) should be well under half of JSON ({})",
                    binary.len(),
                    json.len()
                );
            }
        }
    }

    #[test]
    fn json_codec_is_pinned_to_the_legacy_serialization() {
        // DBH1 payloads must stay bit-identical to the direct serde_json
        // rendering of the message types — the codec adds no framing of its
        // own on top of serde.
        for msg in sample_msgs() {
            let payload = CodecKind::Json.encode(&msg).unwrap();
            assert_eq!(payload, serde_json::to_string(&msg).unwrap().into_bytes());
        }
        // A literal fixture for a wire-crossing frame, so a change to any
        // serde impl in the path (not just the codec plumbing) trips this
        // test instead of silently breaking DBH1 peers. Verdicts are the
        // only fixed-size wire message, hence the stable rendering.
        let verdict = WireMsg::Envelope {
            envelope: Envelope {
                from: Party::Agent,
                to: Party::Server,
                epoch: 0,
                msg: ProtocolMsg::TryVerdict {
                    best_try: 2,
                    distance: 0.25,
                },
            },
        };
        assert_eq!(
            String::from_utf8(CodecKind::Json.encode(&verdict).unwrap()).unwrap(),
            "{\"Envelope\":{\"envelope\":{\"from\":\"Agent\",\"to\":\"Server\",\
             \"epoch\":0,\
             \"msg\":{\"TryVerdict\":{\"best_try\":2,\"distance\":0.25}}}}}"
        );
        // The pre-epoch rendering of the same frame (no "epoch" field) must
        // keep decoding — a frame recorded by an older peer deserializes
        // with the epoch defaulted to 0.
        let legacy = "{\"Envelope\":{\"envelope\":{\"from\":\"Agent\",\"to\":\"Server\",\
             \"msg\":{\"TryVerdict\":{\"best_try\":2,\"distance\":0.25}}}}}";
        assert_eq!(CodecKind::Json.decode(legacy.as_bytes()).unwrap(), verdict);
    }

    #[test]
    fn binary_encode_size_hint_covers_every_payload_in_one_allocation() {
        let contains_key_dispatch = |msg: &WireMsg| match msg {
            WireMsg::Envelope { envelope } => {
                matches!(envelope.msg, ProtocolMsg::PublicKeyDispatch { .. })
            }
            WireMsg::Batch { envelopes } => envelopes
                .iter()
                .any(|e| matches!(e.msg, ProtocolMsg::PublicKeyDispatch { .. })),
            _ => false,
        };
        for msg in sample_msgs() {
            let payload = CodecKind::Binary.encode(&msg).unwrap();
            let hint = payload_size_hint(&msg);
            assert!(
                payload.len() <= hint,
                "hint {hint} under-reserves the {}-byte payload",
                payload.len()
            );
            if !contains_key_dispatch(&msg) {
                // Ciphertext-bearing payloads are fixed-width: the size
                // model predicts them exactly, so the buffer never grows.
                assert_eq!(payload.len(), hint, "hint should be exact");
            } else {
                // Key dispatches may come in a couple of bytes short of the
                // modeled half-modulus factor widths — never more than the
                // slack the hint carries.
                assert!(hint - payload.len() <= 4, "key-dispatch slack too big");
            }
        }
    }

    #[test]
    fn binary_decoder_rejects_garbage_without_panicking() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],                                              // empty
            vec![9],                                             // unknown wire tag
            vec![0, 7],                                          // unknown party tag
            vec![4, 0, 0, 0, 10, b'x'],                          // error detail truncated
            vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255], // hostile count
            vec![3, 3],                                          // trailing bytes after Ack
            vec![0, 0, 1, 0, 0, 0, 0, 0xFF, 0xFF], // bad detail: invalid utf8... actually envelope
        ];
        for bytes in cases {
            let err = CodecKind::Binary.decode(&bytes).unwrap_err();
            assert!(
                matches!(err, ProtocolError::MalformedFrame { .. }),
                "{bytes:?} -> {err}"
            );
        }
    }

    #[test]
    fn truncated_packed_dbh2_payloads_are_typed_errors() {
        // Every strict prefix of a packed-registry frame decodes to a typed
        // MalformedFrame — never a panic, never an unbounded allocation.
        let packed = sample_msgs()
            .into_iter()
            .find(|m| {
                matches!(
                    m,
                    WireMsg::Envelope {
                        envelope: Envelope {
                            msg: ProtocolMsg::PackedRegistry { .. },
                            ..
                        }
                    }
                )
            })
            .expect("sample set carries a packed registry");
        let payload = CodecKind::Binary.encode(&packed).unwrap();
        for cut in 0..payload.len() {
            let err = CodecKind::Binary.decode(&payload[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::MalformedFrame { .. }),
                "cut {cut}: {err}"
            );
        }
        // A hostile slot width inside an otherwise intact frame is refused.
        let mut bad = payload.clone();
        // envelope: tag(1) + from(9) + to(1) + epoch(8) + msgtag(1) + client(8)
        let layout_off = 1 + 9 + 1 + 8 + 1 + 8;
        bad[layout_off..layout_off + 4].copy_from_slice(&250u32.to_be_bytes());
        assert!(matches!(
            CodecKind::Binary.decode(&bad).unwrap_err(),
            ProtocolError::MalformedFrame { .. }
        ));
    }

    #[test]
    fn magic_negotiation_is_a_bijection() {
        for kind in [CodecKind::Json, CodecKind::Binary, CodecKind::JsonLz] {
            assert_eq!(CodecKind::from_magic(kind.magic()), Some(kind));
            assert_eq!(kind.as_codec().kind(), kind);
        }
        assert_eq!(CodecKind::from_magic(*b"DBH3"), None);
        assert_eq!(CodecKind::from_magic(*b"HTTP"), None);
    }

    #[test]
    fn registry_frames_defer_exactly_the_binary_registry_payloads() {
        // The deferral gate must accept the unpacked-registry envelope and
        // nothing else — every other payload falls back to the eager
        // decoder byte-for-byte unchanged.
        for msg in sample_msgs() {
            let payload = CodecKind::Binary.encode(&msg).unwrap();
            let is_registry = matches!(
                &msg,
                WireMsg::Envelope {
                    envelope: Envelope {
                        msg: ProtocolMsg::EncryptedRegistry { .. },
                        ..
                    }
                }
            );
            assert_eq!(
                RegistryFrame::matches_prefix(&payload),
                is_registry,
                "prefix gate disagrees for {msg:?}"
            );
            match RegistryFrame::try_from_payload(payload.clone()) {
                Ok(frame) => {
                    assert!(is_registry);
                    assert_eq!(frame.payload_len(), payload.len());
                }
                Err(returned) => {
                    assert!(!is_registry);
                    assert_eq!(returned, payload, "fallback must not disturb the payload");
                }
            }
        }
    }

    #[test]
    fn deferred_view_agrees_with_the_eager_decoder() {
        let msg = sample_msgs()
            .into_iter()
            .find(|m| {
                matches!(
                    m,
                    WireMsg::Envelope {
                        envelope: Envelope {
                            msg: ProtocolMsg::EncryptedRegistry { .. },
                            ..
                        }
                    }
                )
            })
            .expect("sample set carries a registry");
        let payload = CodecKind::Binary.encode(&msg).unwrap();
        let WireMsg::Envelope { envelope } = CodecKind::Binary.decode(&payload).unwrap() else {
            panic!("registry payload decodes to an envelope");
        };
        let ProtocolMsg::EncryptedRegistry { client, registry } = &envelope.msg else {
            panic!("registry payload decodes to a registry");
        };

        let frame = RegistryFrame::try_from_payload(payload).expect("registry payload defers");
        assert_eq!(frame.from(), envelope.from);
        assert_eq!(frame.to(), envelope.to);
        assert_eq!(frame.epoch(), envelope.epoch);
        assert_eq!(frame.client(), *client);
        // The borrowed view sees exactly the ciphertext the eager decoder
        // materialises, and full materialisation is the same envelope.
        let view = frame.view().expect("well-formed block");
        assert_eq!(view.len(), registry.len());
        assert_eq!(&view.materialize(), registry);
        assert_eq!(frame.materialize().unwrap(), envelope);
    }

    #[test]
    fn truncated_deferred_frames_never_reach_the_fold() {
        // Cutting a registry payload anywhere must end in a typed error,
        // whether the cut lands in the prefix (deferral falls back and the
        // eager decoder reports it) or inside the ciphertext block (the
        // frame is accepted but `view()` refuses before any fold state is
        // touched). Never a panic, never a dangling borrow.
        let msg = sample_msgs()
            .into_iter()
            .find(|m| {
                matches!(
                    m,
                    WireMsg::Envelope {
                        envelope: Envelope {
                            msg: ProtocolMsg::EncryptedRegistry { .. },
                            ..
                        }
                    }
                )
            })
            .expect("sample set carries a registry");
        let payload = CodecKind::Binary.encode(&msg).unwrap();
        for cut in 0..payload.len() {
            match RegistryFrame::try_from_payload(payload[..cut].to_vec()) {
                Err(returned) => {
                    // Prefix incomplete: the eager decoder owns the error.
                    let err = CodecKind::Binary.decode(&returned).unwrap_err();
                    assert!(
                        matches!(err, ProtocolError::MalformedFrame { .. }),
                        "cut {cut}: {err}"
                    );
                }
                Ok(frame) => {
                    let err = frame.view().unwrap_err();
                    assert!(
                        matches!(err, ProtocolError::MalformedFrame { .. }),
                        "cut {cut}: {err}"
                    );
                }
            }
        }
        // Trailing garbage after an intact block is refused too — the
        // deferred path keeps the eager decoder's exact-length contract.
        let mut padded = payload.clone();
        padded.push(0);
        let frame = RegistryFrame::try_from_payload(padded).expect("prefix still matches");
        assert!(matches!(
            frame.view().unwrap_err(),
            ProtocolError::MalformedFrame { .. }
        ));
        // An out-of-range residue (≥ n²) is caught by validation, exactly
        // like the owned decoder.
        let width = RegistryFrame::try_from_payload(payload.clone())
            .expect("prefix matches")
            .view()
            .expect("well-formed block")
            .residue_width();
        let mut bad = payload;
        let len = bad.len();
        bad[len - width..].fill(0xFF);
        let frame = RegistryFrame::try_from_payload(bad).expect("prefix still matches");
        assert!(matches!(
            frame.view().unwrap_err(),
            ProtocolError::MalformedFrame { .. }
        ));
    }
}
