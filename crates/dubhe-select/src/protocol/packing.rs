//! The protocol-level packing policy: which phases pack, under which budget.
//!
//! A [`PackingPolicy`] fixes one slot layout ([`Packer`]) for a cohort and
//! derives the per-phase [`HeadroomModel`]s from it:
//!
//! * the **registration** fold adds one-hot registries, so a lane grows by at
//!   most 1 per client — `max_counter = 1`;
//! * the **multi-time try** folds add fixed-point scaled distributions, so a
//!   lane grows by up to [`DEFAULT_FIXED_SCALE`] per client.
//!
//! Both models must prove `max_clients · max_counter < 2^slot_bits` at
//! construction ([`HeError::HeadroomExceeded`] otherwise) — which is why a
//! 16-bit slot layout can only ever be a
//! [`registry_only`](PackingPolicy::registry_only) policy: a single scaled
//! distribution value (10⁶) already overflows a 16-bit lane, so the
//! full-policy constructor refuses it before any ciphertext exists.
//!
//! The policy travels inside coordinator snapshots (crash recovery restores
//! the same budget it crashed with), encoded as fixed-width big-endian fields
//! like everything else in the `DBH2` family.
//!
//! [`HeError::HeadroomExceeded`]: dubhe_he::HeError::HeadroomExceeded

use dubhe_he::{codec as he_codec, HeadroomModel, Packer, DEFAULT_FIXED_SCALE};

use crate::error::ProtocolError;

/// One cohort's packing configuration: a slot layout plus the headroom
/// models that prove the registration fold — and, when enabled, the try
/// folds — can never overflow a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingPolicy {
    registry: HeadroomModel,
    tries: Option<HeadroomModel>,
}

impl PackingPolicy {
    /// A policy that packs registrations *and* multi-time distributions.
    ///
    /// Errors with [`HeError::HeadroomExceeded`](dubhe_he::HeError::HeadroomExceeded)
    /// if either phase's worst case (`max_clients · 1` for registries,
    /// `max_clients ·` [`DEFAULT_FIXED_SCALE`] for tries) does not fit a
    /// slot, and with the packer's own typed errors for hostile slot widths.
    pub fn new(slot_bits: u32, key_bits: u64, max_clients: u64) -> Result<Self, ProtocolError> {
        let packer = Packer::try_new(slot_bits, key_bits)?;
        let registry = HeadroomModel::new(packer, max_clients, 1)?;
        let tries = HeadroomModel::new(packer, max_clients, DEFAULT_FIXED_SCALE)?;
        Ok(PackingPolicy {
            registry,
            tries: Some(tries),
        })
    }

    /// A policy that packs registrations only; multi-time distributions stay
    /// element-wise. The narrow-slot option: 16-bit lanes hold one-hot sums
    /// for up to 65535 clients but can never hold a scaled distribution.
    pub fn registry_only(
        slot_bits: u32,
        key_bits: u64,
        max_clients: u64,
    ) -> Result<Self, ProtocolError> {
        let packer = Packer::try_new(slot_bits, key_bits)?;
        let registry = HeadroomModel::new(packer, max_clients, 1)?;
        Ok(PackingPolicy {
            registry,
            tries: None,
        })
    }

    /// The shared slot layout.
    pub fn packer(&self) -> Packer {
        self.registry.packer()
    }

    /// The registration-phase headroom model (`max_counter = 1`).
    pub fn registry_model(&self) -> HeadroomModel {
        self.registry
    }

    /// The try-phase headroom model, if distributions are packed.
    pub fn try_model(&self) -> Option<HeadroomModel> {
        self.tries
    }

    /// Whether multi-time distributions are packed under this policy.
    pub fn packs_tries(&self) -> bool {
        self.tries.is_some()
    }

    /// The declared client budget no fold may exceed.
    pub fn max_clients(&self) -> u64 {
        self.registry.max_clients()
    }

    /// Appends the policy's snapshot encoding:
    /// `u32 slot_bits | u64 key_bits | u64 max_clients | u64 registry_max_counter
    ///  | u8 tries_flag | [u64 try_max_counter]`.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        let packer = self.packer();
        he_codec::put_u32(out, packer.slot_bits);
        he_codec::put_u64(out, packer.key_bits);
        he_codec::put_u64(out, self.registry.max_clients());
        he_codec::put_u64(out, self.registry.max_counter());
        match &self.tries {
            None => out.push(0),
            Some(model) => {
                out.push(1);
                he_codec::put_u64(out, model.max_counter());
            }
        }
    }

    /// Decodes and **re-validates** a snapshot policy: a tampered snapshot
    /// whose budget breaks the headroom proof is a typed error, never a
    /// silently adopted unsafe configuration.
    pub(crate) fn decode(cur: &mut &[u8]) -> Result<Self, ProtocolError> {
        let slot_bits = he_codec::take_u32(cur).map_err(ProtocolError::He)?;
        let key_bits = he_codec::take_u64(cur).map_err(ProtocolError::He)?;
        let max_clients = he_codec::take_u64(cur).map_err(ProtocolError::He)?;
        let registry_counter = he_codec::take_u64(cur).map_err(ProtocolError::He)?;
        let packer = Packer::try_new(slot_bits, key_bits).map_err(ProtocolError::He)?;
        let registry =
            HeadroomModel::new(packer, max_clients, registry_counter).map_err(ProtocolError::He)?;
        let tries = match he_codec::take_bytes(cur, 1).map_err(ProtocolError::He)?[0] {
            0 => None,
            1 => {
                let counter = he_codec::take_u64(cur).map_err(ProtocolError::He)?;
                Some(HeadroomModel::new(packer, max_clients, counter).map_err(ProtocolError::He)?)
            }
            _ => {
                return Err(ProtocolError::MalformedFrame {
                    detail: "packing policy tries flag is not 0 or 1".into(),
                })
            }
        };
        Ok(PackingPolicy { registry, tries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_he::{HeError, TEST_KEY_BITS};

    #[test]
    fn full_policy_needs_try_headroom() {
        // 32-bit lanes hold 4294 scaled contributions (4294·10⁶ < 2³²)…
        let p = PackingPolicy::new(32, TEST_KEY_BITS, 4294).unwrap();
        assert!(p.packs_tries());
        assert_eq!(p.max_clients(), 4294);
        // …but not 4295.
        assert!(matches!(
            PackingPolicy::new(32, TEST_KEY_BITS, 4295),
            Err(ProtocolError::He(HeError::HeadroomExceeded { .. }))
        ));
        // 16-bit lanes cannot hold even one scaled distribution value…
        assert!(matches!(
            PackingPolicy::new(16, TEST_KEY_BITS, 1),
            Err(ProtocolError::He(HeError::HeadroomExceeded { .. }))
        ));
        // …so narrow slots are registry-only by construction.
        let narrow = PackingPolicy::registry_only(16, TEST_KEY_BITS, 65535).unwrap();
        assert!(!narrow.packs_tries());
        assert!(narrow.try_model().is_none());
    }

    #[test]
    fn policy_round_trips_through_its_snapshot_encoding() {
        for policy in [
            PackingPolicy::new(32, TEST_KEY_BITS, 100).unwrap(),
            PackingPolicy::registry_only(16, TEST_KEY_BITS, 9).unwrap(),
        ] {
            let mut buf = Vec::new();
            policy.encode(&mut buf);
            let cur = &mut &buf[..];
            assert_eq!(PackingPolicy::decode(cur).unwrap(), policy);
            assert!(cur.is_empty());
        }
        // A tampered snapshot with an unsafe budget is refused on decode.
        let mut buf = Vec::new();
        PackingPolicy::new(32, TEST_KEY_BITS, 100)
            .unwrap()
            .encode(&mut buf);
        buf[12..20].copy_from_slice(&u64::MAX.to_be_bytes()); // max_clients
        assert!(matches!(
            PackingPolicy::decode(&mut &buf[..]),
            Err(ProtocolError::He(HeError::HeadroomExceeded { .. }))
        ));
    }
}
