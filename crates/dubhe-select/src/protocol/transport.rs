//! Message routing between protocol roles.
//!
//! A [`Transport`] moves [`Envelope`]s between parties. The in-memory
//! implementation is a FIFO queue that meters every link — messages and
//! canonical wire bytes per [`MsgKind`] — which is exactly what the FL
//! simulator charges to its [`CommLedger`](../../dubhe_fl/comm) and what the
//! §6.4 overhead study prints. The networked hop lives one level up: the
//! drivers' [`Coordinator`](super::roles::Coordinator) slot, which
//! [`TcpTransport`](super::tcp::TcpTransport) fills by carrying every
//! server-bound envelope over a framed socket while this local queue keeps
//! sequencing (and metering) the exchange.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use super::message::{Envelope, MsgKind, ProtocolMsg};

/// Moves protocol messages between parties.
pub trait Transport {
    /// Queues an envelope for delivery, charging its wire size to the link.
    /// The whole envelope travels — including its epoch stamp, which the
    /// receiving role checks on delivery.
    fn send(&mut self, envelope: Envelope);

    /// Takes the next pending message, in delivery order.
    fn deliver(&mut self) -> Option<Envelope>;
}

/// Messages and bytes observed on one (set of) link(s).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Number of messages.
    pub messages: usize,
    /// Canonical wire bytes (see [`ProtocolMsg::wire_bytes`]).
    pub bytes: usize,
}

impl LinkStats {
    fn charge(&mut self, msg: &ProtocolMsg) {
        self.messages += 1;
        self.bytes += msg.wire_bytes();
    }
}

/// Per-kind transport accounting for one exchange.
///
/// The uplink kinds ([`registries`](Self::registries) and
/// [`distributions`](Self::distributions)) are the client → server payloads
/// the paper's §6.4 overhead model counts: `N` registry transfers per
/// registration epoch and ≈ `H·K` distribution transfers per multi-time
/// round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Key dispatches (agent → clients and agent → server).
    pub key_dispatches: LinkStats,
    /// Encrypted registries (clients → server).
    pub registries: LinkStats,
    /// Encrypted-total broadcasts (server → clients/agent).
    pub total_broadcasts: LinkStats,
    /// Encrypted distributions (tentative clients → server).
    pub distributions: LinkStats,
    /// Encrypted distribution sums (server → agent).
    pub distribution_sums: LinkStats,
    /// Try verdicts (agent → server).
    pub verdicts: LinkStats,
    /// Ciphertext-only registry uplink bytes.
    pub uplink_registry_ciphertext_bytes: usize,
    /// Ciphertext-only distribution uplink bytes.
    pub uplink_distribution_ciphertext_bytes: usize,
}

impl TransportStats {
    /// All links combined.
    pub fn total(&self) -> LinkStats {
        let all = [
            self.key_dispatches,
            self.registries,
            self.total_broadcasts,
            self.distributions,
            self.distribution_sums,
            self.verdicts,
        ];
        LinkStats {
            messages: all.iter().map(|l| l.messages).sum(),
            bytes: all.iter().map(|l| l.bytes).sum(),
        }
    }

    /// Ciphertext bytes sent *to* the server by clients (registries plus
    /// distributions) — the uplink cost the ledger charges. Headers are
    /// excluded so the figure matches the modeled
    /// `len × ciphertext_size` accounting exactly.
    pub fn uplink_ciphertext_bytes(&self) -> usize {
        self.uplink_registry_ciphertext_bytes + self.uplink_distribution_ciphertext_bytes
    }

    fn of_kind_mut(&mut self, kind: MsgKind) -> &mut LinkStats {
        match kind {
            MsgKind::KeyDispatch => &mut self.key_dispatches,
            MsgKind::Registry => &mut self.registries,
            MsgKind::TotalBroadcast => &mut self.total_broadcasts,
            MsgKind::Distribution => &mut self.distributions,
            MsgKind::DistributionSum => &mut self.distribution_sums,
            MsgKind::Verdict => &mut self.verdicts,
        }
    }

    /// Charges one message to its per-kind link (and, for client → server
    /// uplinks, to the ciphertext-only counters). Every transport — the
    /// in-memory queue and the TCP connector alike — meters through this,
    /// which is what keeps their canonical accounting comparable.
    pub fn charge(&mut self, msg: &ProtocolMsg) {
        self.of_kind_mut(msg.kind()).charge(msg);
        match msg.kind() {
            MsgKind::Registry => {
                self.uplink_registry_ciphertext_bytes += msg.ciphertext_bytes();
            }
            MsgKind::Distribution => {
                self.uplink_distribution_ciphertext_bytes += msg.ciphertext_bytes();
            }
            _ => {}
        }
    }
}

/// The in-memory transport: FIFO delivery, full metering, and (optionally)
/// a transcript of every envelope for threat-model auditing in tests.
#[derive(Debug, Default)]
pub struct InMemoryTransport {
    queue: VecDeque<Envelope>,
    stats: TransportStats,
    transcript: Option<Vec<Envelope>>,
}

impl InMemoryTransport {
    /// An empty transport with metering only.
    pub fn new() -> Self {
        InMemoryTransport::default()
    }

    /// An empty transport that additionally records every sent envelope, so
    /// tests can audit exactly what each party was shown.
    pub fn recording() -> Self {
        InMemoryTransport {
            transcript: Some(Vec::new()),
            ..InMemoryTransport::default()
        }
    }

    /// The per-kind accounting so far.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// The recorded transcript (empty slice unless built with
    /// [`recording`](Self::recording)).
    pub fn transcript(&self) -> &[Envelope] {
        self.transcript.as_deref().unwrap_or(&[])
    }

    /// True if no message is waiting for delivery.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, envelope: Envelope) {
        self.stats.charge(&envelope.msg);
        if let Some(t) = &mut self.transcript {
            t.push(envelope.clone());
        }
        self.queue.push_back(envelope);
    }

    fn deliver(&mut self) -> Option<Envelope> {
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::message::Party;
    use dubhe_he::transport::ciphertext_size_bytes;
    use dubhe_he::{EncryptedVector, Keypair};
    use rand::SeedableRng;

    #[test]
    fn fifo_delivery_and_metering() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let v = EncryptedVector::encrypt_u64(&kp.public, &[1, 0, 0], &mut rng);
        let ct = ciphertext_size_bytes(&kp.public);

        let mut t = InMemoryTransport::recording();
        t.send(Envelope {
            from: Party::Client(0),
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::EncryptedRegistry {
                client: 0,
                registry: v.clone(),
            },
        });
        t.send(Envelope {
            from: Party::Client(1),
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::EncryptedRegistry {
                client: 1,
                registry: v,
            },
        });

        assert_eq!(t.stats().registries.messages, 2);
        assert_eq!(t.stats().registries.bytes, 2 * (8 + 3 * ct));
        assert_eq!(t.stats().uplink_ciphertext_bytes(), 2 * 3 * ct);
        assert_eq!(t.stats().total().messages, 2);
        assert_eq!(t.transcript().len(), 2);

        let first = t.deliver().expect("queued");
        assert_eq!(first.from, Party::Client(0));
        let second = t.deliver().expect("queued");
        assert_eq!(second.from, Party::Client(1));
        assert!(t.deliver().is_none());
        assert!(t.is_idle());
    }
}
