//! The sharded coordinator: registry positions partitioned across N folds.
//!
//! A single [`CoordinatorServer`](super::roles::CoordinatorServer) keeps one
//! running homomorphic fold of length `registry_len`. At millions of clients
//! the fold itself becomes the bottleneck: every arriving registry costs
//! `registry_len` modular multiplications on one state object. The
//! [`ShardedCoordinator`] splits the *positions* `0..registry_len` into `N`
//! contiguous shards, each holding its own running fold of its slice; an
//! arriving vector is sliced once and the per-shard folds advance in parallel
//! (rayon) because they touch disjoint state. When the epoch completes, the
//! shard folds are concatenated back into the full encrypted overall registry.
//!
//! Because Paillier addition is element-wise and the shards partition the
//! element index space, the sharded fold performs *exactly* the same modular
//! multiplications in the same per-element order as the single fold — the
//! merged result is bit-identical for any shard count, which the equivalence
//! tests pin for `N ∈ {1, 4}`.
//!
//! Sharding changes nothing about the threat model: every shard still holds
//! only ciphertext slices and the public key (see `docs/THREAT_MODEL.md`).

use std::collections::BTreeMap;
use std::ops::Range;
use std::time::{Duration, Instant};

use dubhe_he::{
    codec as he_codec, EncryptedVector, HeError, HeadroomModel, PackedEncryptedVector, Packer,
    PublicKey, RunningFold,
};

use super::codec::RegistryFrame;
use super::message::{Envelope, MsgKind, Party, ProtocolMsg};
use super::packing::PackingPolicy;
use super::roles::{CohortOutcome, Coordinator};
use crate::error::ProtocolError;
use crate::selector::ClientId;

/// The contiguous position ranges of an `len`-element vector split into
/// `shards` near-equal parts (earlier shards get the remainder).
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    (0..shards)
        .map(|i| (i * len) / shards..((i + 1) * len) / shards)
        .collect()
}

/// Advances every shard fold by its slice of `v`, in parallel across shards.
/// `folds` and `v`-slices are disjoint per shard, so the folds are
/// independent; each shard's [`RunningFold`] accumulates its slice in the
/// Montgomery domain (one CIOS multiply per position), and each element
/// still sees the same multiplication order as the unsharded fold — the
/// merged result stays bit-identical.
///
/// A vector whose length disagrees with the partition is rejected with the
/// same `HeError::LengthMismatch` the single coordinator's fold raises —
/// the two deployments accept exactly the same message set.
fn fold_sharded(
    folds: &mut [Option<RunningFold>],
    v: &EncryptedVector,
    ranges: &[Range<usize>],
) -> Result<(), ProtocolError> {
    use rayon::prelude::*;
    let expected = ranges.last().map_or(0, |r| r.end);
    if v.len() != expected {
        return Err(ProtocolError::He(dubhe_he::HeError::LengthMismatch {
            left: expected,
            right: v.len(),
        }));
    }
    // Move each fold out of its slot, advance all slots in parallel (each is
    // a disjoint &mut chunk — no cloning of the running folds), move back.
    let mut work: Vec<Result<Option<RunningFold>, ProtocolError>> =
        folds.iter_mut().map(|slot| Ok(slot.take())).collect();
    work.par_chunks_mut(1).enumerate().for_each(|(i, chunk)| {
        let prev = match chunk[0].as_mut() {
            Ok(prev) => prev.take(),
            Err(_) => return,
        };
        chunk[0] = (|| {
            let slice = v.slice(ranges[i].start, ranges[i].end)?;
            Ok(Some(match prev {
                None => RunningFold::new(&slice),
                Some(mut fold) => {
                    fold.fold(&slice)?;
                    fold
                }
            }))
        })();
    });
    for (slot, fold) in work.into_iter().zip(folds.iter_mut()) {
        *fold = slot?;
    }
    Ok(())
}

/// The zero-copy counterpart of [`fold_sharded`]: advances every shard fold
/// by its borrowed slice of a deferred frame's residue block, in parallel
/// across shards. No per-element ciphertext is ever materialised — each
/// shard multiplies residues straight out of the frame bytes — and the
/// merged result stays bit-identical to the eager sharded fold.
fn fold_sharded_view(
    folds: &mut [Option<RunningFold>],
    v: &he_codec::EncryptedVectorView<'_>,
    ranges: &[Range<usize>],
) -> Result<(), ProtocolError> {
    use rayon::prelude::*;
    let expected = ranges.last().map_or(0, |r| r.end);
    if v.len() != expected {
        return Err(ProtocolError::He(HeError::LengthMismatch {
            left: expected,
            right: v.len(),
        }));
    }
    let mut work: Vec<Result<Option<RunningFold>, ProtocolError>> =
        folds.iter_mut().map(|slot| Ok(slot.take())).collect();
    work.par_chunks_mut(1).enumerate().for_each(|(i, chunk)| {
        let prev = match chunk[0].as_mut() {
            Ok(prev) => prev.take(),
            Err(_) => return,
        };
        chunk[0] = (|| {
            let slice = v.residue_range(ranges[i].start, ranges[i].end);
            Ok(Some(match prev {
                None => RunningFold::from_view(&slice),
                Some(mut fold) => {
                    fold.fold_view(&slice)?;
                    fold
                }
            }))
        })();
    });
    for (slot, fold) in work.into_iter().zip(folds.iter_mut()) {
        *fold = slot?;
    }
    Ok(())
}

/// Merges per-shard folds back into the full vector (`None` if no shard has
/// folded anything yet), converting each shard's state out of the Montgomery
/// domain.
fn merge(folds: &[Option<RunningFold>]) -> Result<Option<EncryptedVector>, ProtocolError> {
    let parts: Vec<EncryptedVector> = folds
        .iter()
        .filter_map(|f| f.as_ref().map(RunningFold::total))
        .collect();
    if parts.len() != folds.len() {
        return Ok(None);
    }
    Ok(EncryptedVector::concat(&parts)?)
}

/// The packed counterpart of [`fold_sharded`]: validates one arriving
/// [`PackedEncryptedVector`] against the cohort's [`HeadroomModel`] exactly
/// like the single coordinator's `PackedRunningFold` would — slot layout,
/// lane count, then the client budget, all **before** any multiply — and
/// then advances the shard folds over the *ciphertext* index space. Shard
/// boundaries over ciphertext indices never split a plaintext, so each lane
/// stays whole inside one shard and the merged total is bit-identical to the
/// single packed fold.
fn fold_sharded_packed(
    folds: &mut [Option<RunningFold>],
    ranges_slot: &mut Option<Vec<Range<usize>>>,
    lanes: &mut Option<usize>,
    folded_so_far: usize,
    v: &PackedEncryptedVector,
    model: HeadroomModel,
    shards: usize,
) -> Result<(), ProtocolError> {
    model.check_packer(&v.packer())?;
    if let Some(expected) = *lanes {
        if v.count() != expected {
            return Err(ProtocolError::He(HeError::LengthMismatch {
                left: expected,
                right: v.count(),
            }));
        }
    }
    model.check_budget(folded_so_far as u64 + 1)?;
    let ranges = ranges_slot
        .get_or_insert_with(|| shard_ranges(v.ciphertext_count(), shards))
        .clone();
    fold_sharded(folds, v.vector(), &ranges)?;
    *lanes = Some(v.count());
    Ok(())
}

/// Merges per-shard folds of a packed aggregation back into one
/// [`PackedEncryptedVector`] of `lanes` logical lanes.
fn merge_packed(
    folds: &[Option<RunningFold>],
    lanes: usize,
    packer: Packer,
) -> Result<Option<PackedEncryptedVector>, ProtocolError> {
    match merge(folds)? {
        None => Ok(None),
        Some(vector) => Ok(Some(
            PackedEncryptedVector::from_vector(vector, lanes, packer).map_err(ProtocolError::He)?,
        )),
    }
}

/// Per-try sharded aggregation state.
#[derive(Debug, Clone)]
struct ShardedTryFold {
    participants: Vec<ClientId>,
    contributed: Vec<bool>,
    received: usize,
    ranges: Option<Vec<Range<usize>>>,
    folds: Vec<Option<RunningFold>>,
    /// Logical lane count of the packed vectors folded so far (`None` for an
    /// element-wise try, or before the first packed contribution).
    lanes: Option<usize>,
    /// When the try was announced — the straggler clock.
    opened: Instant,
}

/// A coordinator whose registry positions are partitioned across `N` shard
/// folds. Drop-in replacement for
/// [`CoordinatorServer`](super::roles::CoordinatorServer) in the driver's
/// [`Coordinator`] slot: same message handling, same validation, same emitted
/// envelopes — and bit-identical ciphertext totals on the same inputs.
#[derive(Debug)]
pub struct ShardedCoordinator {
    shards: usize,
    public_key: Option<PublicKey>,
    registered: Vec<bool>,
    registrations_received: usize,
    /// Position ranges, fixed by the first registry's length (ciphertext
    /// count for a packed cohort — ciphertext boundaries never split a
    /// plaintext, so the partition is automatically lane-aligned).
    registry_ranges: Option<Vec<Range<usize>>>,
    registry_folds: Vec<Option<RunningFold>>,
    /// Logical lane count of the packed registries folded so far.
    registry_lanes: Option<usize>,
    /// When set, packed-only folds under the policy's headroom budget —
    /// identical acceptance policy to the single coordinator's.
    packing: Option<PackingPolicy>,
    /// `true` once the registration total has been broadcast — naturally or
    /// by a partial close.
    registration_closed: bool,
    /// The current key-rotation epoch.
    epoch: u64,
    /// When the current registration phase opened — the straggler clock.
    registration_opened: Instant,
    /// If set, [`close_expired`](Self::close_expired) partially closes any
    /// aggregation open longer than this.
    straggler_deadline: Option<Duration>,
    tries: BTreeMap<usize, ShardedTryFold>,
    cohort_outcomes: Vec<CohortOutcome>,
    last_verdict: Option<(usize, f64)>,
    bytes_received: usize,
    messages_received: usize,
}

impl ShardedCoordinator {
    /// A sharded coordinator expecting `expected_registrations` registry
    /// uploads this epoch, with positions split across `shards` folds.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(expected_registrations: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedCoordinator {
            shards,
            public_key: None,
            registered: vec![false; expected_registrations],
            registrations_received: 0,
            registry_ranges: None,
            registry_folds: vec![None; shards],
            registry_lanes: None,
            packing: None,
            registration_closed: false,
            epoch: 0,
            registration_opened: Instant::now(),
            straggler_deadline: None,
            tries: BTreeMap::new(),
            cohort_outcomes: Vec::new(),
            last_verdict: None,
            bytes_received: 0,
            messages_received: 0,
        }
    }

    /// Builder: sets the straggler deadline after which
    /// [`close_expired`](Self::close_expired) partially closes an open
    /// aggregation. No deadline (the default) means aggregations stay open
    /// until closed explicitly.
    pub fn with_straggler_deadline(mut self, deadline: Duration) -> Self {
        self.straggler_deadline = Some(deadline);
        self
    }

    /// Builder: installs a [`PackingPolicy`] — same acceptance policy and
    /// budget enforcement as
    /// [`CoordinatorServer::with_packing`](super::roles::CoordinatorServer::with_packing),
    /// with the shard partition computed over ciphertext indices (which
    /// never split a plaintext, so lanes stay whole within a shard).
    pub fn with_packing(mut self, policy: PackingPolicy) -> Self {
        self.packing = Some(policy);
        self
    }

    /// The installed packing policy, if any.
    pub fn packing(&self) -> Option<&PackingPolicy> {
        self.packing.as_ref()
    }

    /// A sharded coordinator that already learned the epoch public key
    /// out-of-band (sessions that skip the key-dispatch step).
    pub fn with_public_key(
        public_key: PublicKey,
        expected_registrations: usize,
        shards: usize,
    ) -> Self {
        ShardedCoordinator {
            public_key: Some(public_key),
            ..ShardedCoordinator::new(expected_registrations, shards)
        }
    }

    /// The number of shard folds.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The epoch public key, once dispatched.
    pub fn public_key(&self) -> Option<&PublicKey> {
        self.public_key.as_ref()
    }

    /// The running encrypted overall registry, merged across shards on
    /// demand (`None` until every shard has folded at least one slice).
    pub fn encrypted_total(&self) -> Option<EncryptedVector> {
        merge(&self.registry_folds).ok().flatten()
    }

    /// The running **packed** encrypted overall registry, merged across
    /// shards on demand.
    pub fn packed_encrypted_total(&self) -> Option<PackedEncryptedVector> {
        let (lanes, policy) = (self.registry_lanes?, self.packing.as_ref()?);
        merge_packed(&self.registry_folds, lanes, policy.packer())
            .ok()
            .flatten()
    }

    /// Canonical wire bytes received so far.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Messages received so far.
    pub fn messages_received(&self) -> usize {
        self.messages_received
    }

    /// The agent's verdict for the last multi-time round, if any.
    pub fn last_verdict(&self) -> Option<(usize, f64)> {
        self.last_verdict
    }

    /// The coordinator's current key-rotation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Every closed aggregation so far (registrations and tries, partial and
    /// natural), in close order.
    pub fn cohort_outcomes(&self) -> &[CohortOutcome] {
        &self.cohort_outcomes
    }

    /// Checks an incoming envelope's epoch stamp — identical policy to
    /// [`CoordinatorServer`](super::roles::CoordinatorServer): a key dispatch
    /// from a newer epoch advances the coordinator, anything else from the
    /// wrong epoch is a typed error.
    fn check_epoch(&mut self, envelope: &Envelope) -> Result<(), ProtocolError> {
        match envelope.epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Equal => Ok(()),
            std::cmp::Ordering::Less => Err(ProtocolError::StaleEpoch {
                received: envelope.epoch,
                current: self.epoch,
            }),
            std::cmp::Ordering::Greater => {
                if matches!(envelope.msg, ProtocolMsg::PublicKeyDispatch { .. }) {
                    let expected = self.registered.len();
                    self.enter_epoch(envelope.epoch, expected);
                    Ok(())
                } else {
                    Err(ProtocolError::FutureEpoch {
                        received: envelope.epoch,
                        current: self.epoch,
                    })
                }
            }
        }
    }

    /// Resets all per-epoch aggregation state for `epoch` with a cohort of
    /// `expected_registrations`.
    fn enter_epoch(&mut self, epoch: u64, expected_registrations: usize) {
        self.epoch = epoch;
        self.registered = vec![false; expected_registrations];
        self.registrations_received = 0;
        self.registry_ranges = None;
        self.registry_folds = vec![None; self.shards];
        self.registry_lanes = None;
        self.registration_closed = false;
        self.registration_opened = Instant::now();
        self.tries.clear();
        self.last_verdict = None;
    }

    /// Explicitly opens a new epoch with a resized cohort.
    pub fn begin_epoch(&mut self, epoch: u64, expected_registrations: usize) {
        self.enter_epoch(epoch, expected_registrations);
    }

    /// The registration broadcast for the current merged fold, addressed to
    /// every *contributing* client plus the agent.
    fn registration_broadcast(&self) -> Result<Vec<Envelope>, ProtocolError> {
        let msg = match (&self.packing, self.registry_lanes) {
            (Some(policy), Some(lanes)) => ProtocolMsg::PackedTotalBroadcast {
                total: merge_packed(&self.registry_folds, lanes, policy.packer())?
                    .expect("caller checked a fold exists"),
            },
            _ => ProtocolMsg::EncryptedTotalBroadcast {
                total: merge(&self.registry_folds)?.expect("caller checked a fold exists"),
            },
        };
        let mut out = Vec::with_capacity(self.registrations_received + 1);
        for (id, seen) in self.registered.iter().enumerate() {
            if *seen {
                out.push(Envelope {
                    from: Party::Server,
                    to: Party::Client(id),
                    epoch: self.epoch,
                    msg: msg.clone(),
                });
            }
        }
        out.push(Envelope {
            from: Party::Server,
            to: Party::Agent,
            epoch: self.epoch,
            msg,
        });
        Ok(out)
    }

    /// Closes registration with whatever registries arrived. One registry
    /// folds **all** shards (the positions partition its index space), so a
    /// partial cohort still has every shard populated and merges exactly
    /// like a complete one.
    pub fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        if self.registration_closed || self.registry_folds.iter().all(Option::is_none) {
            return Err(ProtocolError::NothingToClose {
                what: "registration",
            });
        }
        self.registration_closed = true;
        self.cohort_outcomes.push(CohortOutcome {
            epoch: self.epoch,
            try_index: None,
            expected: self.registered.len(),
            contributed: self.registrations_received,
            partial: true,
        });
        self.registration_broadcast()
    }

    /// Closes one tentative try with whatever contributions arrived. See
    /// [`Coordinator::close_try`].
    pub fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        let slot = self
            .tries
            .remove(&try_index)
            .ok_or(ProtocolError::UnknownTry { try_index })?;
        self.cohort_outcomes.push(CohortOutcome {
            epoch: self.epoch,
            try_index: Some(try_index),
            expected: slot.participants.len(),
            contributed: slot.received,
            partial: true,
        });
        if slot.received == 0 {
            return Err(ProtocolError::NothingToClose { what: "try" });
        }
        let msg = match (&self.packing, slot.lanes) {
            (Some(policy), Some(lanes)) => ProtocolMsg::PackedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: merge_packed(&slot.folds, lanes, policy.packer())?
                    .expect("every shard folded"),
            },
            _ => ProtocolMsg::EncryptedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: merge(&slot.folds)?.expect("every shard folded"),
            },
        };
        Ok(vec![Envelope {
            from: Party::Server,
            to: Party::Agent,
            epoch: self.epoch,
            msg,
        }])
    }

    /// Partially closes every aggregation open longer than the configured
    /// straggler deadline — same semantics as
    /// [`CoordinatorServer::close_expired`](super::roles::CoordinatorServer::close_expired).
    pub fn close_expired(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        let Some(deadline) = self.straggler_deadline else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let expired: Vec<usize> = self
            .tries
            .iter()
            .filter(|(_, slot)| slot.opened.elapsed() >= deadline)
            .map(|(&i, _)| i)
            .collect();
        for try_index in expired {
            match self.close_try(try_index) {
                Ok(envelopes) => out.extend(envelopes),
                Err(ProtocolError::NothingToClose { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        if !self.registration_closed
            && self.registry_folds.iter().any(Option::is_some)
            && self.registration_opened.elapsed() >= deadline
        {
            out.extend(self.close_registration()?);
        }
        Ok(out)
    }

    /// Serializes the coordinator's registration-phase state for crash
    /// recovery: epoch, cohort bitmap, accounting, public key, registry
    /// length and every shard fold (raw in-domain residues). The shard
    /// ranges are *not* stored — they are a pure function of
    /// `(registry_len, shards)` and are recomputed on restore. In-flight
    /// tries are not captured: a restarted coordinator re-announces them.
    pub fn snapshot(&self) -> Result<Vec<u8>, ProtocolError> {
        let mut out = Vec::new();
        he_codec::put_u64(&mut out, self.epoch);
        out.push(self.registration_closed as u8);
        he_codec::put_u32(&mut out, self.shards as u32);
        he_codec::put_u32(&mut out, self.registered.len() as u32);
        out.extend(self.registered.iter().map(|&b| b as u8));
        he_codec::put_u64(&mut out, self.registrations_received as u64);
        he_codec::put_u64(&mut out, self.bytes_received as u64);
        he_codec::put_u64(&mut out, self.messages_received as u64);
        match &self.public_key {
            None => out.push(0),
            Some(pk) => {
                out.push(1);
                he_codec::encode_public_key(pk, &mut out);
            }
        }
        match &self.packing {
            None => out.push(0),
            Some(policy) => {
                out.push(1);
                policy.encode(&mut out);
            }
        }
        match &self.registry_ranges {
            None => out.push(0),
            Some(ranges) => {
                out.push(1);
                he_codec::put_u64(&mut out, ranges.last().map_or(0, |r| r.end) as u64);
                if self.packing.is_some() {
                    // A packed cohort's ranges cover ciphertext indices; the
                    // logical lane count is also needed to rebuild totals.
                    he_codec::put_u64(&mut out, self.registry_lanes.unwrap_or(0) as u64);
                }
            }
        }
        for fold in &self.registry_folds {
            match fold {
                None => out.push(0),
                Some(fold) => {
                    out.push(1);
                    let snap = fold.snapshot().map_err(ProtocolError::He)?;
                    he_codec::put_u32(&mut out, snap.len() as u32);
                    out.extend_from_slice(&snap);
                }
            }
        }
        Ok(out)
    }

    /// Rebuilds a sharded coordinator from a [`snapshot`](Self::snapshot).
    /// Every restored shard fold is bit-identical to the serialized one, so
    /// a resumed registration merges to exactly the total an uninterrupted
    /// coordinator would have broadcast.
    pub fn restore(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let he = ProtocolError::He;
        let cur = &mut &bytes[..];
        let take_flag = |cur: &mut &[u8]| -> Result<bool, ProtocolError> {
            match he_codec::take_bytes(cur, 1).map_err(he)?[0] {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(ProtocolError::MalformedFrame {
                    detail: "snapshot flag byte is not 0 or 1".into(),
                }),
            }
        };
        let epoch = he_codec::take_u64(cur).map_err(he)?;
        let registration_closed = take_flag(cur)?;
        let shards = he_codec::take_u32(cur).map_err(he)? as usize;
        if shards == 0 {
            return Err(ProtocolError::MalformedFrame {
                detail: "snapshot claims zero shards".into(),
            });
        }
        let expected = he_codec::take_u32(cur).map_err(he)? as usize;
        if expected > cur.len() {
            return Err(ProtocolError::MalformedFrame {
                detail: "snapshot cohort bitmap overruns the payload".into(),
            });
        }
        let registered: Vec<bool> = he_codec::take_bytes(cur, expected)
            .map_err(he)?
            .iter()
            .map(|&b| b != 0)
            .collect();
        let registrations_received = he_codec::take_u64(cur).map_err(he)? as usize;
        if registrations_received != registered.iter().filter(|&&b| b).count() {
            return Err(ProtocolError::MalformedFrame {
                detail: "snapshot registration count disagrees with its cohort bitmap".into(),
            });
        }
        let bytes_received = he_codec::take_u64(cur).map_err(he)? as usize;
        let messages_received = he_codec::take_u64(cur).map_err(he)? as usize;
        let public_key = if take_flag(cur)? {
            Some(he_codec::decode_public_key(cur).map_err(he)?)
        } else {
            None
        };
        let packing = if take_flag(cur)? {
            Some(PackingPolicy::decode(cur)?)
        } else {
            None
        };
        if let Some(policy) = &packing {
            // A tampered snapshot cannot resurrect a cohort past its budget.
            policy
                .registry_model()
                .check_budget(registrations_received as u64)
                .map_err(he)?;
        }
        let mut registry_lanes = None;
        let registry_ranges = if take_flag(cur)? {
            let len = he_codec::take_u64(cur).map_err(he)? as usize;
            if let Some(policy) = &packing {
                let lanes = he_codec::take_u64(cur).map_err(he)? as usize;
                let per = policy.packer().slots_per_plaintext().map_err(he)?;
                if len != lanes.div_ceil(per) {
                    return Err(ProtocolError::MalformedFrame {
                        detail: "snapshot lane count disagrees with its shard partition".into(),
                    });
                }
                registry_lanes = Some(lanes);
            }
            Some(shard_ranges(len, shards))
        } else {
            None
        };
        let mut registry_folds = Vec::with_capacity(shards);
        for _ in 0..shards {
            registry_folds.push(if take_flag(cur)? {
                let len = he_codec::take_u32(cur).map_err(he)? as usize;
                let snap = he_codec::take_bytes(cur, len).map_err(he)?;
                Some(RunningFold::restore(snap).map_err(he)?)
            } else {
                None
            });
        }
        let mut server = ShardedCoordinator::new(0, shards);
        server.epoch = epoch;
        server.registration_closed = registration_closed;
        server.registered = registered;
        server.registrations_received = registrations_received;
        server.bytes_received = bytes_received;
        server.messages_received = messages_received;
        server.public_key = public_key;
        server.packing = packing;
        server.registry_ranges = registry_ranges;
        server.registry_lanes = registry_lanes;
        server.registry_folds = registry_folds;
        Ok(server)
    }

    /// Announces one tentative try: see
    /// [`CoordinatorServer::announce_try`](super::roles::CoordinatorServer::announce_try).
    pub fn announce_try(&mut self, try_index: usize, participants: &[ClientId]) {
        let mut sorted = participants.to_vec();
        sorted.sort_unstable();
        let contributed = vec![false; sorted.len()];
        self.tries.insert(
            try_index,
            ShardedTryFold {
                participants: sorted,
                contributed,
                received: 0,
                ranges: None,
                folds: vec![None; self.shards],
                lanes: None,
                opened: Instant::now(),
            },
        );
    }

    /// Shared registration bookkeeping — same policy as
    /// `CoordinatorServer::claim_registration_slot`: one registry per known
    /// client, none after the close. Marks the client's slot.
    fn claim_registration_slot(&mut self, client: ClientId) -> Result<(), ProtocolError> {
        if self.registration_closed || self.registrations_received == self.registered.len() {
            return Err(ProtocolError::EpochComplete { client });
        }
        match self.registered.get_mut(client) {
            None => Err(ProtocolError::UnknownContributor {
                client,
                try_index: None,
            }),
            Some(seen) if *seen => Err(ProtocolError::DuplicateContribution {
                client,
                try_index: None,
            }),
            Some(seen) => {
                *seen = true;
                Ok(())
            }
        }
    }

    /// Counts one accepted registration and broadcasts the merged total when
    /// the cohort completes.
    fn finish_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        self.registrations_received += 1;
        if self.registrations_received == self.registered.len() {
            self.registration_closed = true;
            self.cohort_outcomes.push(CohortOutcome {
                epoch: self.epoch,
                try_index: None,
                expected: self.registered.len(),
                contributed: self.registrations_received,
                partial: false,
            });
            self.registration_broadcast()
        } else {
            Ok(Vec::new())
        }
    }

    /// Shared per-try bookkeeping: announced try, announced participant,
    /// first contribution. Marks it and returns the participant index.
    fn claim_try_slot(
        &mut self,
        try_index: usize,
        client: ClientId,
    ) -> Result<usize, ProtocolError> {
        let slot = self
            .tries
            .get_mut(&try_index)
            .ok_or(ProtocolError::UnknownTry { try_index })?;
        let idx = slot.participants.binary_search(&client).map_err(|_| {
            ProtocolError::UnknownContributor {
                client,
                try_index: Some(try_index),
            }
        })?;
        if slot.contributed[idx] {
            return Err(ProtocolError::DuplicateContribution {
                client,
                try_index: Some(try_index),
            });
        }
        slot.contributed[idx] = true;
        Ok(idx)
    }

    /// If every announced participant contributed, removes the try and
    /// forwards its merged sum — packed when the try folded packed vectors.
    fn finish_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        let done = {
            let slot = self.tries.get(&try_index).expect("claimed above");
            slot.received == slot.participants.len()
        };
        if !done {
            return Ok(Vec::new());
        }
        let slot = self.tries.remove(&try_index).expect("present");
        self.cohort_outcomes.push(CohortOutcome {
            epoch: self.epoch,
            try_index: Some(try_index),
            expected: slot.participants.len(),
            contributed: slot.received,
            partial: false,
        });
        let msg = match (&self.packing, slot.lanes) {
            (Some(policy), Some(lanes)) => ProtocolMsg::PackedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: merge_packed(&slot.folds, lanes, policy.packer())?.expect("non-empty try"),
            },
            _ => ProtocolMsg::EncryptedDistributionSum {
                try_index,
                contributors: slot.received,
                sum: merge(&slot.folds)?.expect("non-empty try"),
            },
        };
        Ok(vec![Envelope {
            from: Party::Server,
            to: Party::Agent,
            epoch: self.epoch,
            msg,
        }])
    }

    /// Handles one incoming message, returning the messages it triggers.
    /// The accepted/rejected message set is identical to the single
    /// coordinator's, as is every emitted envelope.
    pub fn handle(&mut self, msg: ProtocolMsg) -> Result<Vec<Envelope>, ProtocolError> {
        self.messages_received += 1;
        self.bytes_received += msg.wire_bytes();
        match msg {
            ProtocolMsg::PublicKeyDispatch {
                public_key,
                private_key,
            } => {
                if private_key.is_some() {
                    return Err(ProtocolError::PrivateKeyAtServer);
                }
                self.public_key = Some(public_key);
                Ok(Vec::new())
            }
            ProtocolMsg::EncryptedRegistry { client, registry } => {
                if self.packing.is_some() {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: true,
                        kind: MsgKind::Registry,
                    });
                }
                self.claim_registration_slot(client)?;
                let ranges = self
                    .registry_ranges
                    .get_or_insert_with(|| shard_ranges(registry.len(), self.shards))
                    .clone();
                // Mirror the single coordinator: a rejected payload must not
                // burn the client's registration slot.
                if let Err(e) = fold_sharded(&mut self.registry_folds, &registry, &ranges) {
                    self.registered[client] = false;
                    return Err(e);
                }
                self.finish_registration()
            }
            ProtocolMsg::PackedRegistry { client, registry } => {
                let Some(policy) = self.packing else {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: false,
                        kind: MsgKind::Registry,
                    });
                };
                self.claim_registration_slot(client)?;
                if let Err(e) = fold_sharded_packed(
                    &mut self.registry_folds,
                    &mut self.registry_ranges,
                    &mut self.registry_lanes,
                    self.registrations_received,
                    &registry,
                    policy.registry_model(),
                    self.shards,
                ) {
                    self.registered[client] = false;
                    return Err(e);
                }
                self.finish_registration()
            }
            ProtocolMsg::EncryptedDistribution {
                client,
                try_index,
                distribution,
            } => {
                if self.packing.is_some_and(|p| p.packs_tries()) {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: true,
                        kind: MsgKind::Distribution,
                    });
                }
                let shards = self.shards;
                let idx = self.claim_try_slot(try_index, client)?;
                let slot = self.tries.get_mut(&try_index).expect("claimed above");
                let ranges = slot
                    .ranges
                    .get_or_insert_with(|| shard_ranges(distribution.len(), shards))
                    .clone();
                if let Err(e) = fold_sharded(&mut slot.folds, &distribution, &ranges) {
                    slot.contributed[idx] = false;
                    return Err(e);
                }
                slot.received += 1;
                self.finish_try(try_index)
            }
            ProtocolMsg::PackedDistribution {
                client,
                try_index,
                distribution,
            } => {
                let Some(model) = self.packing.and_then(|p| p.try_model()) else {
                    return Err(ProtocolError::PackingDisagreement {
                        role: "server",
                        expected_packed: false,
                        kind: MsgKind::Distribution,
                    });
                };
                let shards = self.shards;
                let idx = self.claim_try_slot(try_index, client)?;
                let slot = self.tries.get_mut(&try_index).expect("claimed above");
                let received = slot.received;
                if let Err(e) = fold_sharded_packed(
                    &mut slot.folds,
                    &mut slot.ranges,
                    &mut slot.lanes,
                    received,
                    &distribution,
                    model,
                    shards,
                ) {
                    slot.contributed[idx] = false;
                    return Err(e);
                }
                slot.received += 1;
                self.finish_try(try_index)
            }
            ProtocolMsg::TryVerdict { best_try, distance } => {
                self.last_verdict = Some((best_try, distance));
                Ok(Vec::new())
            }
            other => Err(ProtocolError::UnexpectedMessage {
                role: "server",
                kind: other.kind(),
            }),
        }
    }
}

impl Coordinator for ShardedCoordinator {
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError> {
        self.check_epoch(&envelope)?;
        ShardedCoordinator::handle(self, envelope.msg)
    }

    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[ClientId],
    ) -> Result<(), ProtocolError> {
        ShardedCoordinator::announce_try(self, try_index, participants);
        Ok(())
    }

    fn begin_epoch(
        &mut self,
        epoch: u64,
        expected_registrations: usize,
    ) -> Result<(), ProtocolError> {
        ShardedCoordinator::begin_epoch(self, epoch, expected_registrations);
        Ok(())
    }

    fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        ShardedCoordinator::close_registration(self)
    }

    fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        ShardedCoordinator::close_try(self, try_index)
    }

    fn deliver_registry_frame(
        &mut self,
        frame: RegistryFrame,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        // Mirror of `CoordinatorServer::deliver_registry_frame`, with the
        // fold fanned out across shards over the borrowed residue block.
        let view = frame.view()?;
        match frame.epoch().cmp(&self.epoch) {
            std::cmp::Ordering::Equal => {}
            std::cmp::Ordering::Less => {
                return Err(ProtocolError::StaleEpoch {
                    received: frame.epoch(),
                    current: self.epoch,
                })
            }
            std::cmp::Ordering::Greater => {
                return Err(ProtocolError::FutureEpoch {
                    received: frame.epoch(),
                    current: self.epoch,
                })
            }
        }
        self.messages_received += 1;
        self.bytes_received += 8 + view.ciphertext_payload_bytes();
        if self.packing.is_some() {
            return Err(ProtocolError::PackingDisagreement {
                role: "server",
                expected_packed: true,
                kind: MsgKind::Registry,
            });
        }
        let client = frame.client();
        self.claim_registration_slot(client)?;
        let ranges = self
            .registry_ranges
            .get_or_insert_with(|| shard_ranges(view.len(), self.shards))
            .clone();
        if let Err(e) = fold_sharded_view(&mut self.registry_folds, &view, &ranges) {
            self.registered[client] = false;
            return Err(e);
        }
        self.finish_registration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_he::Keypair;
    use rand::SeedableRng;

    #[test]
    fn ranges_partition_the_index_space() {
        for (len, shards) in [(56, 4), (53, 4), (10, 3), (3, 8), (0, 2), (1, 1)] {
            let ranges = shard_ranges(len, shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[shards - 1].end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous partition");
            }
        }
    }

    #[test]
    fn sharded_fold_is_bit_identical_to_single_fold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let vectors: Vec<EncryptedVector> = (0..6)
            .map(|i| {
                let mut v = vec![0u64; 13];
                v[i % 13] = 1;
                v[(i * 5) % 13] += 2;
                EncryptedVector::encrypt_u64(&kp.public, &v, &mut rng)
            })
            .collect();

        // Single fold: left-to-right add.
        let mut single = vectors[0].clone();
        for v in &vectors[1..] {
            single = single.add(v).unwrap();
        }

        for shards in [1, 4] {
            let ranges = shard_ranges(13, shards);
            let mut folds = vec![None; shards];
            for v in &vectors {
                fold_sharded(&mut folds, v, &ranges).unwrap();
            }
            let merged = merge(&folds).unwrap().unwrap();
            assert_eq!(merged.len(), single.len());
            for (m, s) in merged.elements().iter().zip(single.elements()) {
                assert_eq!(m.raw(), s.raw(), "shards={shards}");
            }
        }
    }

    #[test]
    fn length_mismatch_is_rejected_exactly_like_the_single_coordinator() {
        use super::super::roles::CoordinatorServer;

        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let registry = |len: usize, rng: &mut rand::rngs::StdRng| ProtocolMsg::EncryptedRegistry {
            client: 0,
            registry: EncryptedVector::encrypt_u64(&kp.public, &vec![1u64; len], rng),
        };
        let second = |len: usize, rng: &mut rand::rngs::StdRng| ProtocolMsg::EncryptedRegistry {
            client: 1,
            registry: EncryptedVector::encrypt_u64(&kp.public, &vec![1u64; len], rng),
        };

        // A longer AND a shorter second vector must fail identically on both
        // coordinator shapes (the sharded one must not silently truncate).
        for mismatched in [11usize, 5] {
            let mut single = CoordinatorServer::with_public_key(kp.public.clone(), 2);
            let mut sharded = ShardedCoordinator::with_public_key(kp.public.clone(), 2, 4);
            assert!(single.handle(registry(8, &mut rng)).unwrap().is_empty());
            assert!(sharded.handle(registry(8, &mut rng)).unwrap().is_empty());
            let e_single = single.handle(second(mismatched, &mut rng)).unwrap_err();
            let e_sharded = sharded.handle(second(mismatched, &mut rng)).unwrap_err();
            assert_eq!(e_single, e_sharded, "len {mismatched}");
            assert!(
                matches!(
                    e_sharded,
                    ProtocolError::He(dubhe_he::HeError::LengthMismatch { left: 8, .. })
                ),
                "len {mismatched}: {e_sharded}"
            );
        }
    }

    #[test]
    fn slice_out_of_range_is_an_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let v = EncryptedVector::encrypt_u64(&kp.public, &[1, 2, 3], &mut rng);
        assert!(v.slice(0, 4).is_err());
        assert!(v.slice(2, 1).is_err());
        assert_eq!(v.slice(1, 3).unwrap().len(), 2);
    }
}
