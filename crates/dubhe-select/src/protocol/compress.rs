//! Self-contained LZSS frame compression for the `DBHZ` codec.
//!
//! The DBH1 compatibility path pays for its JSON rendering in bytes —
//! repeated object keys, decimal bignums, quoted field names on every
//! envelope of a batch. `DBHZ` keeps those payloads *exactly* DBH1 JSON but
//! runs them through this dependency-free LZSS pass on the way to the
//! frame, trading a little CPU for the redundancy JSON carries. The binary
//! `DBH2` path is already within 1.10× of the canonical ciphertext bytes
//! and is not compressed.
//!
//! ## Format
//!
//! ```text
//! compressed := u32 raw_len | group*
//! group      := flags | token{1..8}       (one flag bit per token, LSB first)
//! token      := literal byte              (flag bit 1)
//!             | u16 pair                  (flag bit 0)
//! pair       := offset:12 len:4           (big-endian u16)
//! ```
//!
//! A pair copies `len + MIN_MATCH` bytes starting `offset + 1` bytes behind
//! the write head (copies may overlap themselves, as in every LZ). The
//! leading `raw_len` lets the decompressor allocate once and acts as the
//! decompression-bomb guard: a declared length above the caller's ceiling
//! is refused before any token is read.
//!
//! Decompression is *total*: any byte sequence either inflates to exactly
//! `raw_len` bytes or surfaces a typed [`ProtocolError::MalformedFrame`] —
//! never a panic, never an out-of-bounds copy, never unbounded memory.

use crate::error::ProtocolError;

/// Matches reach back at most this far (12 offset bits).
const WINDOW: usize = 1 << 12;
/// Shortest match worth a 2-byte pair (a 16-bit pair must beat the 3
/// literal bytes it replaces plus their flag bits).
const MIN_MATCH: usize = 3;
/// Longest match a 4-bit length field can name.
const MAX_MATCH: usize = MIN_MATCH + 15;
/// Hash-chain positions probed per match attempt.
const MAX_CHAIN: usize = 16;

fn hash3(window: &[u8]) -> usize {
    let key = u32::from(window[0]) << 16 | u32::from(window[1]) << 8 | u32::from(window[2]);
    (key.wrapping_mul(2654435761) >> 17) as usize & (HASH_SLOTS - 1)
}

const HASH_SLOTS: usize = 1 << 14;

/// Compresses `input`. The output always inflates back to `input`
/// byte-for-byte; it is only *smaller* when the input carries redundancy
/// (worst case: `4 + ⌈9/8 · len⌉` bytes for incompressible data).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + input.len() / 2);
    out.extend_from_slice(&(input.len() as u32).to_be_bytes());

    // Most recent position for each 3-byte hash, chained through `prev` so
    // a probe can walk the last MAX_CHAIN occurrences inside the window.
    let mut head = vec![usize::MAX; HASH_SLOTS];
    let mut prev = vec![usize::MAX; input.len()];

    let mut pos = 0;
    let mut flags_at = 0; // index of the current group's flag byte in `out`
    let mut flag_bit = 8; // 8 = group full, start a new one
    while pos < input.len() {
        if flag_bit == 8 {
            flags_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        // Probe the chain for the longest match ending within the window.
        let mut best_len = 0;
        let mut best_off = 0;
        if pos + MIN_MATCH <= input.len() {
            let mut cand = head[hash3(&input[pos..])];
            let mut probes = 0;
            while cand != usize::MAX && pos - cand <= WINDOW && probes < MAX_CHAIN {
                let limit = (input.len() - pos).min(MAX_MATCH);
                let mut len = 0;
                while len < limit && input[cand + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_off = pos - cand;
                    if len == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                probes += 1;
            }
        }
        let advance = if best_len >= MIN_MATCH {
            let pair = ((best_off - 1) << 4 | (best_len - MIN_MATCH)) as u16;
            out.extend_from_slice(&pair.to_be_bytes());
            best_len
        } else {
            out.push(input[pos]);
            *out.get_mut(flags_at).expect("flag byte exists") |= 1 << flag_bit;
            1
        };
        // Enter every covered position into the hash chains so later
        // probes can match into the middle of this token.
        for p in pos..(pos + advance).min(input.len().saturating_sub(MIN_MATCH - 1)) {
            let slot = hash3(&input[p..]);
            prev[p] = head[slot];
            head[slot] = p;
        }
        pos += advance;
        flag_bit += 1;
    }
    out
}

fn malformed(detail: &str) -> ProtocolError {
    ProtocolError::MalformedFrame {
        detail: detail.to_string(),
    }
}

/// Inflates a [`compress`] payload, refusing declared lengths above
/// `max_len` before allocating.
pub fn decompress(input: &[u8], max_len: usize) -> Result<Vec<u8>, ProtocolError> {
    let Some(header) = input.get(..4) else {
        return Err(malformed("compressed payload shorter than its header"));
    };
    let raw_len = u32::from_be_bytes(header.try_into().expect("4 bytes")) as usize;
    if raw_len > max_len {
        return Err(ProtocolError::FrameTooLarge {
            len: raw_len,
            max: max_len,
        });
    }
    let mut out = Vec::with_capacity(raw_len);
    let mut cur = &input[4..];
    'groups: while out.len() < raw_len {
        let Some((&flags, rest)) = cur.split_first() else {
            return Err(malformed("compressed payload ends mid-stream"));
        };
        cur = rest;
        for bit in 0..8 {
            if out.len() == raw_len {
                break 'groups;
            }
            if flags >> bit & 1 == 1 {
                let Some((&byte, rest)) = cur.split_first() else {
                    return Err(malformed("compressed payload ends mid-literal"));
                };
                cur = rest;
                out.push(byte);
            } else {
                let Some(pair) = cur.get(..2) else {
                    return Err(malformed("compressed payload ends mid-pair"));
                };
                cur = &cur[2..];
                let pair = u16::from_be_bytes(pair.try_into().expect("2 bytes"));
                let offset = (pair >> 4) as usize + 1;
                let len = (pair & 0xF) as usize + MIN_MATCH;
                if offset > out.len() {
                    return Err(malformed("back-reference reaches before the output"));
                }
                if out.len() + len > raw_len {
                    return Err(malformed("back-reference overruns the declared length"));
                }
                let start = out.len() - offset;
                for i in 0..len {
                    // Overlapping copies are self-referential by design.
                    out.push(out[start + i]);
                }
            }
        }
    }
    if !cur.is_empty() {
        return Err(malformed("trailing bytes after the compressed stream"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let packed = compress(input);
        decompress(&packed, input.len()).expect("inflates")
    }

    #[test]
    fn round_trips_every_shape_of_input() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![42],
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
            b"abcabcabcabcabcabcabcabcabc".to_vec(),
            (0..=255u8).collect(),
            (0..10_000).map(|i| (i * 37 % 251) as u8).collect(),
            br#"{"Envelope":{"from":"Agent","to":"Server","epoch":0}}"#.repeat(40),
        ];
        for input in cases {
            assert_eq!(round_trip(&input), input, "len {}", input.len());
        }
    }

    #[test]
    fn repetitive_payloads_shrink_and_random_ones_stay_bounded() {
        let json = br#"{"Envelope":{"from":"Agent","to":"Server","epoch":0}}"#.repeat(40);
        assert!(
            compress(&json).len() * 4 < json.len(),
            "repeated JSON should compress at least 4:1"
        );
        // Worst case: incompressible bytes cost the flag-bit overhead only.
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert!(compress(&noise).len() <= 4 + noise.len() + noise.len().div_ceil(8) + 1);
    }

    #[test]
    fn hostile_streams_are_typed_errors_never_panics() {
        // Declared length above the ceiling: refused before allocation.
        let packed = compress(b"hello world, hello world");
        assert!(matches!(
            decompress(&packed, 8),
            Err(ProtocolError::FrameTooLarge { max: 8, .. })
        ));
        // Every truncation point of a real stream is a typed error.
        for cut in 0..packed.len() {
            assert!(matches!(
                decompress(&packed[..cut], 1024),
                Err(ProtocolError::MalformedFrame { .. })
                    | Err(ProtocolError::FrameTooLarge { .. })
            ));
        }
        // A back-reference with nothing behind it.
        let mut bogus = 3u32.to_be_bytes().to_vec();
        bogus.push(0); // flags: first token is a pair
        bogus.extend_from_slice(&0u16.to_be_bytes());
        assert!(matches!(
            decompress(&bogus, 1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));
        // A pair that would overrun the declared raw length.
        let mut overrun = 4u32.to_be_bytes().to_vec();
        overrun.push(0b0000_0011); // two literals, then a pair
        overrun.extend_from_slice(b"ab");
        overrun.extend_from_slice(&0u16.to_be_bytes()); // offset 1, len 3 -> 5 > 4
        assert!(matches!(
            decompress(&overrun, 1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));
        // Trailing garbage after a complete stream.
        let mut padded = compress(b"abc");
        padded.push(0xFF);
        assert!(matches!(
            decompress(&padded, 1024),
            Err(ProtocolError::MalformedFrame { .. })
        ));
    }

    #[test]
    fn overlapping_copies_inflate_like_the_classics() {
        // "aaaa..." forces offset-1 self-overlapping copies.
        let runs = vec![b'a'; 300];
        assert_eq!(round_trip(&runs), runs);
        // A two-byte period exercises offset-2 overlap.
        let alt: Vec<u8> = (0..301).map(|i| b"xy"[i % 2]).collect();
        assert_eq!(round_trip(&alt), alt);
    }
}
