//! # The role-separated Dubhe protocol
//!
//! This module makes the paper's threat model a *structural* property: who
//! can see which message is decided by which role type holds which fields,
//! not by the discipline of a monolithic function. Three actors exchange
//! typed [`ProtocolMsg`]s over a [`Transport`]:
//!
//! * [`AgentNode`] — the randomly chosen agent client. Owns the epoch
//!   [`Keypair`](dubhe_he::Keypair), decrypts the per-try sums, evaluates
//!   the L1 try-test and issues the verdict.
//! * [`SelectClientNode`] — an ordinary client. Receives the keypair, fills
//!   and encrypts its registry (Algorithm 1), decrypts the broadcast total
//!   and computes its own participation probability (Eq. 6).
//! * [`CoordinatorServer`] — the honest-but-curious coordinator. Holds only
//!   the [`PublicKey`](dubhe_he::PublicKey) and running ciphertext folds;
//!   its struct has no field that could store a private key or a plaintext
//!   distribution, and it refuses a key dispatch that carries one.
//!
//! ## Message ↔ paper mapping
//!
//! | [`ProtocolMsg`] variant | Paper step | Link |
//! |---|---|---|
//! | [`PublicKeyDispatch`] | Fig. 4 step 1 — agent generates and dispatches the epoch key | agent → clients (keypair), agent → server (public key only) |
//! | [`EncryptedRegistry`] | Fig. 4 step 2 — each client uploads `Enc(R^(t,k))` | client → server |
//! | [`EncryptedTotalBroadcast`] | Fig. 4 step 3 — server adds registries blindly, broadcasts `Enc(R_A)` | server → clients, agent |
//! | [`EncryptedDistribution`] | §5.3.1 — tentatively selected client uploads `Enc(p_l)` for try `h` | client → server |
//! | [`EncryptedDistributionSum`] | §5.3.1 — server forwards `Enc(Σ p_l)` of try `h` | server → agent |
//! | [`TryVerdict`] | §5.3.1 — agent announces `h* = argmin_h ‖p_o,h − p_u‖₁` | agent → server |
//!
//! When a [`PackingPolicy`] is installed (BatchCrypt-style slot packing, the
//! paper's §6.4 overhead lever), the four ciphertext-bearing messages travel
//! as their `Packed*` twins — [`PackedRegistry`], [`PackedTotalBroadcast`],
//! [`PackedDistribution`], [`PackedDistributionSum`] — same paper steps,
//! same [`MsgKind`]s (so per-kind metering compares packed and unpacked runs
//! link-for-link), with many counters per Paillier plaintext. The policy's
//! [`HeadroomModel`](dubhe_he::HeadroomModel) proves `max_clients ·
//! max_counter < 2^slot_bits` before any ciphertext exists and refuses
//! over-budget folds at runtime with typed errors.
//!
//! Fig. 4 step 4 (clients decrypt the total and compute Eq. 6 locally)
//! produces no wire message: it happens inside [`SelectClientNode`] when the
//! broadcast arrives.
//!
//! Every message knows its canonical wire size through `dubhe-he`'s
//! transport model ([`ProtocolMsg::wire_bytes`]), and the in-memory
//! transport meters every link per message kind ([`TransportStats`]) — the
//! numbers the §6.4 overhead study reports and the FL ledger charges.
//!
//! ## Drivers and deployment shapes
//!
//! [`run_registration`] and [`run_try`] sequence the exchanges
//! deterministically; [`crate::secure`] keeps the historical free-function
//! API as thin wrappers over them (same signatures, bit-identical results on
//! the same seed), and `dubhe-fl`'s simulator drives the same actors
//! end-to-end when its encrypted mode is enabled.
//!
//! The drivers are generic over the [`Coordinator`] slot, which is what lets
//! one exchange run against three server shapes without the agent or client
//! roles changing a line:
//!
//! * [`CoordinatorServer`] — the single in-process fold;
//! * [`ShardedCoordinator`] — registry positions partitioned across N shard
//!   folds that advance rayon-parallel and merge into a bit-identical total;
//! * [`TcpTransport`] → [`CoordinatorListener`] — the same messages as
//!   length-prefixed frames (see [`wire`]) over real loopback sockets, served
//!   by a mutex-free multi-threaded listener. The frame payload codec is
//!   pluggable (see [`codec`]): `DBH1` JSON for compatibility, `DBH2`
//!   canonical binary for wire traffic within 1.10× of the paper's
//!   communication model, negotiated per connection from the frame magic.
//!
//! `docs/ARCHITECTURE.md` draws the full picture; `docs/THREAT_MODEL.md`
//! explains why all three shapes uphold the same structural guarantee.
//!
//! [`PublicKeyDispatch`]: ProtocolMsg::PublicKeyDispatch
//! [`EncryptedRegistry`]: ProtocolMsg::EncryptedRegistry
//! [`EncryptedTotalBroadcast`]: ProtocolMsg::EncryptedTotalBroadcast
//! [`EncryptedDistribution`]: ProtocolMsg::EncryptedDistribution
//! [`EncryptedDistributionSum`]: ProtocolMsg::EncryptedDistributionSum
//! [`TryVerdict`]: ProtocolMsg::TryVerdict
//! [`PackedRegistry`]: ProtocolMsg::PackedRegistry
//! [`PackedTotalBroadcast`]: ProtocolMsg::PackedTotalBroadcast
//! [`PackedDistribution`]: ProtocolMsg::PackedDistribution
//! [`PackedDistributionSum`]: ProtocolMsg::PackedDistributionSum

pub mod channel;
pub mod codec;
pub mod compress;
pub mod driver;
pub mod fault;
pub mod message;
pub mod packing;
pub mod roles;
pub mod shard;
pub mod stats;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use channel::{
    client_handshake, read_channel_frame, secret_bytes_from_seed, ChannelFrame, ChannelPolicy,
    NodeIdentity, RetrySchedule, SecureChannel, ServerHandshake, FRAME_MAGIC_HANDSHAKE,
    FRAME_MAGIC_SEALED, HANDSHAKE_WIRE_BYTES, SEALED_FRAME_OVERHEAD,
};
pub use codec::{BinaryCodec, CodecKind, CompressedJsonCodec, JsonCodec, RegistryFrame, WireCodec};
pub use driver::{
    pump, run_registration, run_registration_with, run_registration_with_packing, run_try,
    run_try_with_dropouts, RegistrationRun,
};
pub use fault::{Fault, FaultPlan, FaultStats, FaultyTransport};
pub use message::{Envelope, MsgKind, Party, ProtocolMsg};
pub use packing::PackingPolicy;
pub use roles::{AgentNode, CohortOutcome, Coordinator, CoordinatorServer, SelectClientNode};
pub use shard::{shard_ranges, ShardedCoordinator};
pub use stats::{LatencyHistogram, LatencySummary, ListenerMetrics, ListenerStats};
pub use tcp::{
    claimed_client, CoordinatorListener, ListenerConfig, TcpConfig, TcpTransport, WireStats,
    DEFAULT_READ_TIMEOUT,
};
pub use transport::{InMemoryTransport, LinkStats, Transport, TransportStats};
pub use wire::{
    read_frame, read_frame_lazy, read_frame_limited, read_frame_negotiated, write_frame,
    write_frame_limited, write_frame_with, LazyMsg, WireMsg, FRAME_MAGIC, FRAME_MAGIC_V2,
    MAX_FRAME_BYTES,
};
