//! Shared listener observability: per-connection codec/latency metrics and
//! the [`ListenerStats`] snapshot API.
//!
//! Both coordinator listeners — the thread-per-connection
//! [`CoordinatorListener`](super::tcp::CoordinatorListener) and `dubhe-net`'s
//! event-driven `ReactorListener` — record into the same
//! [`ListenerMetrics`] recorder and publish the same [`ListenerStats`]
//! snapshot, so a bench (`load_gen` → `results/BENCH_net.json`) can compare
//! the two architectures like-for-like: frames and bytes in each direction,
//! decode failures, write-queue high-water marks, and a per-request latency
//! histogram (decode → reply handed to the socket).
//!
//! The recorder is all atomics plus one mutex around the latency histogram —
//! observability only, never on the coordinator-state path, so the
//! "mutex-free protocol state" property of both listeners is untouched.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Number of log₂ microsecond buckets: covers 1 µs .. ~2¹⁹ s, far beyond any
/// sane request latency.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram (microsecond resolution).
///
/// Constant memory, O(1) record, mergeable; quantiles come back as the
/// geometric midpoint of the owning bucket — ±√2 accuracy, plenty for a
/// p50/p99 trend line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(us: u64) -> usize {
        ((64 - us.max(1).leading_zeros()) as usize - 1).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.counts[Self::bucket(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds, or `None` if empty.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)) µs.
                let lo = (1u64 << i) as f64;
                return Some(lo * std::f64::consts::SQRT_2);
            }
        }
        Some(self.max_us as f64)
    }

    /// Collapses the histogram into the summary a report serializes.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: if self.count == 0 {
                0.0
            } else {
                self.sum_us as f64 / self.count as f64
            },
            p50_us: self.quantile_us(0.50).unwrap_or(0.0),
            p99_us: self.quantile_us(0.99).unwrap_or(0.0),
            max_us: self.max_us,
        }
    }
}

/// The serialized shape of a latency distribution in a bench report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds (log-bucket midpoint).
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds (log-bucket midpoint).
    pub p99_us: f64,
    /// Largest single sample, microseconds (exact).
    pub max_us: u64,
}

/// A point-in-time snapshot of everything a listener observed: connection
/// lifecycle, frame/byte traffic per direction, failure counters, write-queue
/// pressure, and the request-latency distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ListenerStats {
    /// Connections accepted since spawn.
    pub connections_accepted: usize,
    /// Connections fully closed since spawn (any reason).
    pub connections_closed: usize,
    /// Connections open right now.
    pub connections_open: usize,
    /// Most connections ever open at once.
    pub peak_connections: usize,
    /// Complete frames decoded off sockets.
    pub frames_received: usize,
    /// Frames fully written back to sockets.
    pub frames_sent: usize,
    /// Bytes read off sockets (headers + payloads).
    pub bytes_received: usize,
    /// Bytes written to sockets (headers + payloads).
    pub bytes_sent: usize,
    /// Frames refused before reaching the coordinator: bad magic, oversized
    /// announcement, undecodable payload.
    pub decode_errors: usize,
    /// Connections that died mid-frame (peer cut off or stalled past the
    /// read timeout).
    pub truncated_frames: usize,
    /// Connections disconnected because their write queue crossed the
    /// backpressure high-water mark (slow or stalled readers).
    pub backpressure_disconnects: usize,
    /// Largest per-connection write-queue depth observed, in bytes.
    pub peak_write_queue: usize,
    /// Channel handshakes that ran to completion (session keys established).
    pub handshakes_completed: usize,
    /// Channel handshakes that failed before establishment: malformed hello,
    /// bad confirmation tag, or a peer that stalled out mid-handshake.
    pub handshakes_failed: usize,
    /// Sealed frames refused after establishment: tag mismatch (tampering)
    /// or nonce replay/reorder.
    pub aead_rejections: usize,
    /// Plaintext protocol frames refused because the listener requires the
    /// authenticated channel (downgrade attempts).
    pub downgrades_refused: usize,
    /// Per-request latency (frame decoded → reply handed to the socket).
    pub latency: LatencySummary,
}

/// The live, thread-safe recorder behind a [`ListenerStats`] snapshot.
///
/// Shared as an `Arc` between a listener's I/O side and whoever holds the
/// listener handle; every counter is a relaxed atomic (monotonic counters
/// need no ordering), the latency histogram sits behind its own mutex.
#[derive(Debug, Default)]
pub struct ListenerMetrics {
    connections_accepted: AtomicUsize,
    connections_closed: AtomicUsize,
    peak_connections: AtomicUsize,
    frames_received: AtomicUsize,
    frames_sent: AtomicUsize,
    bytes_received: AtomicUsize,
    bytes_sent: AtomicUsize,
    decode_errors: AtomicUsize,
    truncated_frames: AtomicUsize,
    backpressure_disconnects: AtomicUsize,
    peak_write_queue: AtomicUsize,
    handshakes_completed: AtomicUsize,
    handshakes_failed: AtomicUsize,
    aead_rejections: AtomicUsize,
    downgrades_refused: AtomicUsize,
    latency_us_hist: Mutex<LatencyHistogram>,
    /// Kept alongside the histogram mutex so `record_latency` stays a single
    /// lock even under merge-heavy load.
    _reserved: AtomicU64,
}

fn bump_max(slot: &AtomicUsize, candidate: usize) {
    let mut current = slot.load(Ordering::Relaxed);
    while candidate > current {
        match slot.compare_exchange_weak(current, candidate, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

impl ListenerMetrics {
    /// A zeroed recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one accepted connection (and maintains the concurrency peak).
    pub fn connection_opened(&self) {
        let accepted = self.connections_accepted.fetch_add(1, Ordering::Relaxed) + 1;
        let closed = self.connections_closed.load(Ordering::Relaxed);
        bump_max(&self.peak_connections, accepted.saturating_sub(closed));
    }

    /// Counts one closed connection.
    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one decoded inbound frame of `bytes` total size.
    pub fn frame_received(&self, bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one fully written outbound frame of `bytes` total size.
    pub fn frame_sent(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one undecodable inbound frame.
    pub fn decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection cut mid-frame.
    pub fn truncated_frame(&self) {
        self.truncated_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one backpressure disconnect.
    pub fn backpressure_disconnect(&self) {
        self.backpressure_disconnects
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Maintains the peak write-queue depth (bytes).
    pub fn write_queue_depth(&self, bytes: usize) {
        bump_max(&self.peak_write_queue, bytes);
    }

    /// Counts one completed channel handshake.
    pub fn handshake_completed(&self) {
        self.handshakes_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failed channel handshake.
    pub fn handshake_failed(&self) {
        self.handshakes_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one sealed frame refused after establishment (tamper/replay).
    pub fn aead_rejection(&self) {
        self.aead_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one plaintext frame refused by a channel-required listener.
    pub fn downgrade_refused(&self) {
        self.downgrades_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request latency (frame decoded → reply handed off).
    pub fn record_latency(&self, latency: Duration) {
        self.latency_us_hist
            .lock()
            .expect("latency histogram poisoned")
            .record(latency);
    }

    /// A consistent-enough snapshot for reporting (individual counters are
    /// each exact; cross-counter skew is bounded by in-flight requests).
    pub fn snapshot(&self) -> ListenerStats {
        let accepted = self.connections_accepted.load(Ordering::Relaxed);
        let closed = self.connections_closed.load(Ordering::Relaxed);
        ListenerStats {
            connections_accepted: accepted,
            connections_closed: closed,
            connections_open: accepted.saturating_sub(closed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            truncated_frames: self.truncated_frames.load(Ordering::Relaxed),
            backpressure_disconnects: self.backpressure_disconnects.load(Ordering::Relaxed),
            peak_write_queue: self.peak_write_queue.load(Ordering::Relaxed),
            handshakes_completed: self.handshakes_completed.load(Ordering::Relaxed),
            handshakes_failed: self.handshakes_failed.load(Ordering::Relaxed),
            aead_rejections: self.aead_rejections.load(Ordering::Relaxed),
            downgrades_refused: self.downgrades_refused.load(Ordering::Relaxed),
            latency: self
                .latency_us_hist
                .lock()
                .expect("latency histogram poisoned")
                .summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles_behave() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.5).unwrap();
        assert!((8.0..32.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99).unwrap();
        assert!((8_000.0..32_000.0).contains(&p99), "p99 {p99}");
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 10_000);
        assert!(s.mean_us > 10.0 && s.mean_us < 10_000.0);
    }

    #[test]
    fn histograms_merge_additively() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        b.record(Duration::from_micros(700));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.summary().max_us, 700);
    }

    #[test]
    fn metrics_snapshot_reflects_recorded_traffic() {
        let m = ListenerMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.frame_received(100);
        m.frame_sent(60);
        m.decode_error();
        m.write_queue_depth(4096);
        m.write_queue_depth(1024);
        m.handshake_completed();
        m.handshake_failed();
        m.aead_rejection();
        m.aead_rejection();
        m.downgrade_refused();
        m.record_latency(Duration::from_micros(42));
        let s = m.snapshot();
        assert_eq!(s.connections_accepted, 2);
        assert_eq!(s.connections_open, 1);
        assert_eq!(s.peak_connections, 2);
        assert_eq!((s.frames_received, s.bytes_received), (1, 100));
        assert_eq!((s.frames_sent, s.bytes_sent), (1, 60));
        assert_eq!(s.decode_errors, 1);
        assert_eq!(s.peak_write_queue, 4096);
        assert_eq!(s.handshakes_completed, 1);
        assert_eq!(s.handshakes_failed, 1);
        assert_eq!(s.aead_rejections, 2);
        assert_eq!(s.downgrades_refused, 1);
        assert_eq!(s.latency.count, 1);
        // Snapshots serialize for the bench report.
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("peak_write_queue"));
    }
}
