//! The authenticated session layer: pre-protocol handshake + AEAD framing.
//!
//! THREAT_MODEL.md used to carry the caveat "codec negotiation is not
//! authentication". This module is the in-repo answer: before any
//! [`WireMsg`](super::wire::WireMsg) travels, the two endpoints of a
//! connection run a three-message mutual-authentication handshake (X25519
//! triple-DH, Noise-XX-shaped) and every subsequent frame is sealed with
//! ChaCha20-Poly1305 under per-direction keys and strictly sequenced
//! nonces. The crypto primitives come from the vendored offline stand-in
//! `mini-crypto` (RFC-vectored; swapping to the real crates is a
//! manifest-only change).
//!
//! ## Wire formats
//!
//! Two new frame magics join `DBH1`/`DBH2`/`DBHZ`, both length-prefixed the
//! same way (`magic + u32 BE length + payload`):
//!
//! ```text
//! DBHS — handshake:  payload is one handshake message (below)
//! DBHE — sealed:     payload = seq (u64 BE) || ciphertext || tag (16)
//! ```
//!
//! A sealed payload decrypts to one complete *inner* plaintext frame
//! (`DBH1`/`DBH2`/`DBHZ`), so codec negotiation, lazy registry deferral and
//! frame-size limits all apply unchanged inside the channel. The AEAD's
//! associated data covers the `DBHE` magic and the sequence number: a
//! spliced or re-sequenced frame fails the tag even if its ciphertext is
//! untouched.
//!
//! ## Handshake state machine
//!
//! ```text
//! client                                         server
//!   | --- M1: client_static ‖ client_eph ---------> |   (DBHS)
//!   | <-- M2: server_static ‖ server_eph ‖ tag_s -- |   (DBHS)
//!   | --- M3: tag_c ------------------------------> |   (DBHS)
//!   |            … DBHE sealed frames only …        |
//! ```
//!
//! Both sides derive `ikm = DH(e_c,e_s) ‖ DH(s_c,e_s) ‖ DH(e_c,s_s)` —
//! the ephemeral-ephemeral share gives freshness, the two static-ephemeral
//! shares prove possession of each long-term identity key — and expand
//! session keys with HKDF salted by the SHA-256 transcript of the exact
//! handshake bytes. `tag_s` / `tag_c` are HMAC confirmations over the
//! transcript under a third derived key: each side proves it derived the
//! same secrets *before* any protocol frame is accepted. A frame that
//! fails any check surfaces a typed
//! [`ProtocolError::AuthFailure`] / [`ReplayDetected`] /
//! [`DowngradeRefused`] — never a panic, never a hang.
//!
//! [`ReplayDetected`]: ProtocolError::ReplayDetected
//! [`DowngradeRefused`]: ProtocolError::DowngradeRefused

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use mini_crypto::{hkdf, hmac_sha256, sha256, ChaCha20Poly1305, PublicKey, StaticSecret, TAG_LEN};
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use super::codec::CodecKind;
use super::wire::read_exact_or;
use crate::error::ProtocolError;

/// The 4-byte preamble of a handshake (`DBHS`) frame.
pub const FRAME_MAGIC_HANDSHAKE: [u8; 4] = *b"DBHS";

/// The 4-byte preamble of a sealed (`DBHE`) frame.
pub const FRAME_MAGIC_SEALED: [u8; 4] = *b"DBHE";

/// Fixed per-frame overhead a sealed frame adds on the wire: the `DBHE`
/// header (magic + length) plus the sequence number and the AEAD tag. The
/// inner plaintext frame travels byte-for-byte as ciphertext.
pub const SEALED_FRAME_OVERHEAD: usize = 4 + 4 + 8 + TAG_LEN;

/// M1 = static(32) + ephemeral(32); M2 adds the confirmation tag.
const HELLO_LEN: usize = 64;
const CONFIRM_LEN: usize = 32;
const M2_LEN: usize = HELLO_LEN + CONFIRM_LEN;

/// Total bytes the three handshake frames put on the wire (headers
/// included): M1 (8+64) + M2 (8+96) + M3 (8+32). What a connector charges
/// to its channel-overhead accounting per handshake.
pub const HANDSHAKE_WIRE_BYTES: usize = (8 + HELLO_LEN) + (8 + M2_LEN) + (8 + CONFIRM_LEN);

/// Whether a connection endpoint runs the authenticated channel.
///
/// `Plaintext` keeps the historical behaviour (frames travel as bare
/// `DBH1`/`DBH2`/`DBHZ`) — loopback benches stay unauthenticated *by
/// choice*. `Required` refuses every plaintext protocol frame with a typed
/// [`ProtocolError::DowngradeRefused`], before, during and after the
/// handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ChannelPolicy {
    /// Run the handshake and seal every frame; refuse plaintext traffic.
    Required,
    /// No handshake, bare protocol frames (the historical behaviour).
    #[default]
    Plaintext,
}

impl ChannelPolicy {
    /// `true` when this endpoint runs the authenticated channel.
    pub fn is_required(self) -> bool {
        matches!(self, ChannelPolicy::Required)
    }
}

/// Process-wide entropy for fresh secrets: a counter hashed with the time
/// so two generated identities never collide, even within one tick.
fn fresh_secret() -> [u8; 32] {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let pid = u64::from(std::process::id());
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&count.to_le_bytes());
    seed[8..16].copy_from_slice(&nanos.to_le_bytes());
    seed[16..24].copy_from_slice(&pid.to_le_bytes());
    // One hash round so structure in the inputs does not leak into the key.
    sha256(&seed)
}

/// A node's long-term channel identity: an X25519 static keypair. The
/// 32-byte public key *is* the identity the rest of the stack keys state
/// off (cohort bindings, metrics, session-hijack checks).
#[derive(Clone)]
pub struct NodeIdentity {
    secret: StaticSecret,
    public: [u8; 32],
}

impl std::fmt::Debug for NodeIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never render the secret.
        write!(f, "NodeIdentity({:02x?}…)", &self.public[..4])
    }
}

impl NodeIdentity {
    /// Builds an identity from explicit static-secret bytes (the form
    /// configs carry, since `[u8; 32]` stays `Copy`).
    pub fn from_secret_bytes(bytes: [u8; 32]) -> NodeIdentity {
        let secret = StaticSecret::from_bytes(bytes);
        let public = PublicKey::from(&secret).to_bytes();
        NodeIdentity { secret, public }
    }

    /// A deterministic identity derived from a seed via the vendored
    /// `StdRng` — what tests and simulations use so runs are reproducible.
    pub fn from_seed(seed: u64) -> NodeIdentity {
        NodeIdentity::from_secret_bytes(secret_bytes_from_seed(seed))
    }

    /// A fresh identity from process-local entropy.
    pub fn generate() -> NodeIdentity {
        NodeIdentity::from_secret_bytes(fresh_secret())
    }

    /// The public identity: what peers see and what state is keyed off.
    pub fn public_bytes(&self) -> [u8; 32] {
        self.public
    }
}

/// Derives static-secret bytes from a seed (deterministic; the `from_seed`
/// identity and config plumbing share this so they agree byte-for-byte).
pub fn secret_bytes_from_seed(seed: u64) -> [u8; 32] {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut bytes = [0u8; 32];
    rng.fill_bytes(&mut bytes);
    bytes
}

fn io_error(context: &'static str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Io {
        context,
        detail: e.to_string(),
    }
}

/// The established channel: per-direction AEAD keys plus strictly
/// sequenced nonces, bound to the authenticated peer identity.
pub struct SecureChannel {
    send: ChaCha20Poly1305,
    recv: ChaCha20Poly1305,
    send_seq: u64,
    recv_seq: u64,
    peer: [u8; 32],
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SecureChannel(peer {:02x?}…, seq {}/{})",
            &self.peer[..4],
            self.send_seq,
            self.recv_seq
        )
    }
}

fn nonce_for(seq: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[4..].copy_from_slice(&seq.to_be_bytes());
    nonce
}

impl SecureChannel {
    /// The peer's authenticated public identity.
    pub fn peer_identity(&self) -> [u8; 32] {
        self.peer
    }

    /// Seals one inner plaintext frame into a complete `DBHE` wire frame.
    pub fn seal_frame(&mut self, inner: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut aad = [0u8; 12];
        aad[..4].copy_from_slice(&FRAME_MAGIC_SEALED);
        aad[4..].copy_from_slice(&seq.to_be_bytes());
        let sealed = self.send.seal(&nonce_for(seq), &aad, inner);
        let mut frame = Vec::with_capacity(SEALED_FRAME_OVERHEAD + inner.len());
        frame.extend_from_slice(&FRAME_MAGIC_SEALED);
        frame.extend_from_slice(&((8 + sealed.len()) as u32).to_be_bytes());
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&sealed);
        frame
    }

    /// Opens one `DBHE` payload (`seq || ciphertext || tag`), returning the
    /// inner plaintext frame. Out-of-sequence frames surface
    /// [`ProtocolError::ReplayDetected`]; tag failures surface
    /// [`ProtocolError::AuthFailure`]. Either way the channel is dead: a
    /// failed open does not advance the receive sequence, and callers cut
    /// the connection.
    pub fn open_payload(&mut self, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        if payload.len() < 8 + TAG_LEN {
            return Err(ProtocolError::AuthFailure {
                detail: format!("sealed payload too short ({} bytes)", payload.len()),
            });
        }
        let seq = u64::from_be_bytes(payload[..8].try_into().expect("8-byte slice"));
        if seq != self.recv_seq {
            return Err(ProtocolError::ReplayDetected {
                expected: self.recv_seq,
                got: seq,
            });
        }
        let mut aad = [0u8; 12];
        aad[..4].copy_from_slice(&FRAME_MAGIC_SEALED);
        aad[4..].copy_from_slice(&seq.to_be_bytes());
        let inner = self
            .recv
            .open(&nonce_for(seq), &aad, &payload[8..])
            .map_err(|_| ProtocolError::AuthFailure {
                detail: format!("AEAD tag verification failed on sealed frame {seq}"),
            })?;
        self.recv_seq += 1;
        Ok(inner)
    }
}

/// The two key-schedule directions, so client and server construct mirror
/// channels from one HKDF output.
struct SessionKeys {
    c2s: [u8; 32],
    s2c: [u8; 32],
    confirm: [u8; 32],
    transcript: [u8; 32],
}

fn derive_keys(
    dh_ee: &[u8; 32],
    dh_se: &[u8; 32],
    dh_es: &[u8; 32],
    m1: &[u8],
    server_hello: &[u8],
) -> SessionKeys {
    let transcript = sha256(&[b"dubhe-hs-v1" as &[u8], m1, server_hello].concat());
    let ikm = [dh_ee.as_slice(), dh_se.as_slice(), dh_es.as_slice()].concat();
    let okm = hkdf(&transcript, &ikm, b"dubhe-channel v1", 96);
    let mut c2s = [0u8; 32];
    let mut s2c = [0u8; 32];
    let mut confirm = [0u8; 32];
    c2s.copy_from_slice(&okm[..32]);
    s2c.copy_from_slice(&okm[32..64]);
    confirm.copy_from_slice(&okm[64..96]);
    SessionKeys {
        c2s,
        s2c,
        confirm,
        transcript,
    }
}

fn confirm_tag(keys: &SessionKeys, label: &[u8]) -> [u8; 32] {
    hmac_sha256(&keys.confirm, &[label, &keys.transcript].concat())
}

fn channel_from(keys: &SessionKeys, is_client: bool, peer: [u8; 32]) -> SecureChannel {
    let (send, recv) = if is_client {
        (&keys.c2s, &keys.s2c)
    } else {
        (&keys.s2c, &keys.c2s)
    };
    SecureChannel {
        send: ChaCha20Poly1305::new(send),
        recv: ChaCha20Poly1305::new(recv),
        send_seq: 0,
        recv_seq: 0,
        peer,
    }
}

// ------------------------------------------------------------ raw framing

/// One frame pulled off a channel-aware socket, still undecoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelFrame {
    /// A `DBHS` handshake message.
    Handshake(Vec<u8>),
    /// A `DBHE` sealed payload (`seq || ciphertext || tag`).
    Sealed(Vec<u8>),
    /// A plaintext protocol frame (`DBH1`/`DBH2`/`DBHZ`): the *entire*
    /// frame bytes, header included, so a `Plaintext`-policy caller can
    /// re-parse it with the ordinary wire readers.
    Plaintext {
        /// The plaintext codec the magic announced.
        codec: CodecKind,
        /// The full frame (magic + length + payload).
        frame: Vec<u8>,
    },
}

/// Writes one `DBHS` frame, returning the bytes put on the wire.
pub fn write_handshake_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<usize, ProtocolError> {
    w.write_all(&FRAME_MAGIC_HANDSHAKE)
        .map_err(|e| io_error("write handshake frame", e))?;
    w.write_all(&(payload.len() as u32).to_be_bytes())
        .map_err(|e| io_error("write handshake frame", e))?;
    w.write_all(payload)
        .map_err(|e| io_error("write handshake frame", e))?;
    w.flush()
        .map_err(|e| io_error("write handshake frame", e))?;
    Ok(8 + payload.len())
}

/// Reads one frame of *any* known magic — handshake, sealed or plaintext —
/// returning it with the total bytes consumed. This is the read primitive
/// of channel-aware blocking paths: the caller decides which variants its
/// policy and phase accept (a `Required` endpoint maps
/// [`ChannelFrame::Plaintext`] to [`ProtocolError::DowngradeRefused`]).
pub fn read_channel_frame<R: Read>(
    r: &mut R,
    max_frame_bytes: usize,
) -> Result<(ChannelFrame, usize), ProtocolError> {
    let mut magic = [0u8; 4];
    read_exact_or(r, &mut magic, "header", true)?;
    let mut len_bytes = [0u8; 4];
    read_exact_or(r, &mut len_bytes, "header", false)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    // Sealed frames may exceed the inner ceiling by exactly the seal.
    let ceiling = max_frame_bytes + SEALED_FRAME_OVERHEAD;
    if len > ceiling {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, "payload", false)?;
    let total = 8 + len;
    if magic == FRAME_MAGIC_HANDSHAKE {
        return Ok((ChannelFrame::Handshake(payload), total));
    }
    if magic == FRAME_MAGIC_SEALED {
        return Ok((ChannelFrame::Sealed(payload), total));
    }
    if let Some(codec) = CodecKind::from_magic(magic) {
        let mut frame = Vec::with_capacity(total);
        frame.extend_from_slice(&magic);
        frame.extend_from_slice(&len_bytes);
        frame.extend_from_slice(&payload);
        return Ok((ChannelFrame::Plaintext { codec, frame }, total));
    }
    Err(ProtocolError::MalformedFrame {
        detail: format!("bad magic {magic:02x?}, expected DBH1, DBH2, DBHZ, DBHS or DBHE"),
    })
}

// ------------------------------------------------------- client handshake

/// Runs the client side of the handshake over a blocking stream. On
/// success the stream speaks sealed frames only. `expected_server` pins
/// the server's public identity (connection refused with
/// [`ProtocolError::AuthFailure`] on mismatch); `None` trusts first use.
pub fn client_handshake<S: Read + Write>(
    stream: &mut S,
    identity: &NodeIdentity,
    expected_server: Option<[u8; 32]>,
    max_frame_bytes: usize,
) -> Result<SecureChannel, ProtocolError> {
    let eph = StaticSecret::from_bytes(fresh_secret());
    let eph_pub = PublicKey::from(&eph).to_bytes();

    let mut m1 = [0u8; HELLO_LEN];
    m1[..32].copy_from_slice(&identity.public);
    m1[32..].copy_from_slice(&eph_pub);
    write_handshake_frame(stream, &m1)?;

    let (frame, _) = read_channel_frame(stream, max_frame_bytes)?;
    let m2 = match frame {
        ChannelFrame::Handshake(payload) => payload,
        ChannelFrame::Plaintext { frame, .. } => {
            return Err(ProtocolError::DowngradeRefused {
                magic: frame[..4].try_into().expect("4-byte magic"),
            })
        }
        ChannelFrame::Sealed(_) => {
            return Err(ProtocolError::AuthFailure {
                detail: "server sent a sealed frame before the handshake finished".to_string(),
            })
        }
    };
    if m2.len() != M2_LEN {
        return Err(ProtocolError::AuthFailure {
            detail: format!("server hello is {} bytes, expected {M2_LEN}", m2.len()),
        });
    }
    let server_static: [u8; 32] = m2[..32].try_into().expect("32-byte key");
    let server_eph: [u8; 32] = m2[32..64].try_into().expect("32-byte key");
    if let Some(pinned) = expected_server {
        if pinned != server_static {
            return Err(ProtocolError::AuthFailure {
                detail: "server identity does not match the pinned key".to_string(),
            });
        }
    }

    let server_eph_pk = PublicKey::from_bytes(server_eph);
    let dh_ee = eph.diffie_hellman(&server_eph_pk).to_bytes();
    let dh_se = identity.secret.diffie_hellman(&server_eph_pk).to_bytes();
    let dh_es = eph
        .diffie_hellman(&PublicKey::from_bytes(server_static))
        .to_bytes();
    let keys = derive_keys(&dh_ee, &dh_se, &dh_es, &m1, &m2[..64]);

    let expect_server_tag = confirm_tag(&keys, b"server");
    if !constant_time_eq(&m2[64..], &expect_server_tag) {
        return Err(ProtocolError::AuthFailure {
            detail: "server handshake confirmation tag did not verify".to_string(),
        });
    }
    write_handshake_frame(stream, &confirm_tag(&keys, b"client"))?;
    Ok(channel_from(&keys, true, server_static))
}

// ------------------------------------------------------- server handshake

/// The server side of the handshake as an explicit state machine, so the
/// event-driven reactor can feed it one `DBHS` payload at a time from
/// readiness events. The threaded listener wraps it in
/// [`server_handshake_blocking`].
pub struct ServerHandshake {
    identity: NodeIdentity,
    state: ServerHandshakeState,
}

enum ServerHandshakeState {
    AwaitHello,
    AwaitConfirm {
        keys: SessionKeys,
        client_static: [u8; 32],
    },
    Done,
}

/// What one handshake payload produced: an optional reply frame to write,
/// and the established channel once the exchange completes.
pub struct HandshakeStep {
    /// A complete `DBHS` frame to send back, if this step produces one.
    pub reply: Option<Vec<u8>>,
    /// The established channel, once the client's confirmation verifies.
    pub established: Option<SecureChannel>,
}

impl ServerHandshake {
    /// A fresh handshake for one inbound connection.
    pub fn new(identity: NodeIdentity) -> ServerHandshake {
        ServerHandshake {
            identity,
            state: ServerHandshakeState::AwaitHello,
        }
    }

    /// Feeds one `DBHS` payload to the state machine. Errors are terminal:
    /// the caller cuts the connection.
    pub fn on_payload(&mut self, payload: &[u8]) -> Result<HandshakeStep, ProtocolError> {
        match std::mem::replace(&mut self.state, ServerHandshakeState::Done) {
            ServerHandshakeState::AwaitHello => {
                if payload.len() != HELLO_LEN {
                    return Err(ProtocolError::AuthFailure {
                        detail: format!(
                            "client hello is {} bytes, expected {HELLO_LEN}",
                            payload.len()
                        ),
                    });
                }
                let client_static: [u8; 32] = payload[..32].try_into().expect("32-byte key");
                let client_eph: [u8; 32] = payload[32..].try_into().expect("32-byte key");

                let eph = StaticSecret::from_bytes(fresh_secret());
                let eph_pub = PublicKey::from(&eph).to_bytes();
                let client_eph_pk = PublicKey::from_bytes(client_eph);
                let dh_ee = eph.diffie_hellman(&client_eph_pk).to_bytes();
                let dh_se = eph
                    .diffie_hellman(&PublicKey::from_bytes(client_static))
                    .to_bytes();
                let dh_es = self
                    .identity
                    .secret
                    .diffie_hellman(&client_eph_pk)
                    .to_bytes();

                let mut hello = [0u8; HELLO_LEN];
                hello[..32].copy_from_slice(&self.identity.public);
                hello[32..].copy_from_slice(&eph_pub);
                let keys = derive_keys(&dh_ee, &dh_se, &dh_es, payload, &hello);

                let mut m2 = Vec::with_capacity(M2_LEN);
                m2.extend_from_slice(&hello);
                m2.extend_from_slice(&confirm_tag(&keys, b"server"));
                let mut reply = Vec::with_capacity(8 + M2_LEN);
                reply.extend_from_slice(&FRAME_MAGIC_HANDSHAKE);
                reply.extend_from_slice(&(m2.len() as u32).to_be_bytes());
                reply.extend_from_slice(&m2);

                self.state = ServerHandshakeState::AwaitConfirm {
                    keys,
                    client_static,
                };
                Ok(HandshakeStep {
                    reply: Some(reply),
                    established: None,
                })
            }
            ServerHandshakeState::AwaitConfirm {
                keys,
                client_static,
            } => {
                let expect = confirm_tag(&keys, b"client");
                if payload.len() != CONFIRM_LEN || !constant_time_eq(payload, &expect) {
                    return Err(ProtocolError::AuthFailure {
                        detail: "client handshake confirmation tag did not verify".to_string(),
                    });
                }
                Ok(HandshakeStep {
                    reply: None,
                    established: Some(channel_from(&keys, false, client_static)),
                })
            }
            ServerHandshakeState::Done => Err(ProtocolError::AuthFailure {
                detail: "handshake message after the handshake completed".to_string(),
            }),
        }
    }
}

/// Runs the server side of the handshake over a blocking stream (the
/// threaded listener's prelude). Plaintext protocol frames during the
/// handshake are refused as downgrade attempts.
pub fn server_handshake_blocking<S: Read + Write>(
    stream: &mut S,
    identity: NodeIdentity,
    max_frame_bytes: usize,
) -> Result<SecureChannel, ProtocolError> {
    let mut hs = ServerHandshake::new(identity);
    loop {
        let (frame, _) = read_channel_frame(stream, max_frame_bytes)?;
        let payload = match frame {
            ChannelFrame::Handshake(payload) => payload,
            ChannelFrame::Plaintext { frame, .. } => {
                return Err(ProtocolError::DowngradeRefused {
                    magic: frame[..4].try_into().expect("4-byte magic"),
                })
            }
            ChannelFrame::Sealed(_) => {
                return Err(ProtocolError::AuthFailure {
                    detail: "sealed frame before the handshake finished".to_string(),
                })
            }
        };
        let step = hs.on_payload(&payload)?;
        if let Some(reply) = step.reply {
            stream
                .write_all(&reply)
                .map_err(|e| io_error("write handshake frame", e))?;
            stream
                .flush()
                .map_err(|e| io_error("write handshake frame", e))?;
        }
        if let Some(channel) = step.established {
            return Ok(channel);
        }
    }
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

// ------------------------------------------------------------------ retry

/// Bounded exponential backoff with deterministic jitter for transient
/// connect/handshake failures: attempt `i` (0-based) sleeps
/// `base · 2^i + jitter` where jitter is uniform in `[0, base)` from the
/// vendored seeded `StdRng` — deterministic per (seed, attempt), so test
/// runs are reproducible while a thundering herd still spreads out.
#[derive(Debug, Clone)]
pub struct RetrySchedule {
    base: std::time::Duration,
    rng: rand::rngs::StdRng,
}

impl RetrySchedule {
    /// A schedule starting at `base` delay, jitter-seeded with `seed`.
    pub fn new(base: std::time::Duration, seed: u64) -> RetrySchedule {
        RetrySchedule {
            base,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The delay before retry number `attempt` (0-based), jitter included.
    pub fn delay(&mut self, attempt: u32) -> std::time::Duration {
        let base_ns = self.base.as_nanos() as u64;
        let backoff = base_ns.saturating_mul(1u64 << attempt.min(16));
        let jitter = if base_ns == 0 {
            0
        } else {
            self.rng.next_u64() % base_ns
        };
        std::time::Duration::from_nanos(backoff.saturating_add(jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a real `client_handshake` against a [`ServerHandshake`] state
    /// machine without sockets or threads: the client's writes are parsed
    /// into DBHS frames and fed to the server, whose replies land in the
    /// client's read buffer.
    fn handshake_pair(
        client_id: &NodeIdentity,
        server_id: &NodeIdentity,
        pin: Option<[u8; 32]>,
    ) -> Result<(SecureChannel, SecureChannel), ProtocolError> {
        let mut client_out: Vec<u8> = Vec::new();
        let mut client_in: Vec<u8> = Vec::new();
        struct Shuttle<'a> {
            inbox: &'a mut Vec<u8>,
            outbox: &'a mut Vec<u8>,
            hs: &'a mut ServerHandshake,
            server_channel: &'a mut Option<SecureChannel>,
        }
        impl std::io::Read for Shuttle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = buf.len().min(self.inbox.len());
                if n == 0 {
                    return Ok(0);
                }
                buf[..n].copy_from_slice(&self.inbox[..n]);
                self.inbox.drain(..n);
                Ok(n)
            }
        }
        impl std::io::Write for Shuttle<'_> {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.outbox.extend_from_slice(buf);
                // When a complete DBHS frame lands, feed the server.
                while self.outbox.len() >= 8 {
                    let len = u32::from_be_bytes(self.outbox[4..8].try_into().unwrap()) as usize;
                    if self.outbox.len() < 8 + len {
                        break;
                    }
                    let payload: Vec<u8> = self.outbox[8..8 + len].to_vec();
                    self.outbox.drain(..8 + len);
                    let step = self
                        .hs
                        .on_payload(&payload)
                        .map_err(|e| std::io::Error::other(e.to_string()))?;
                    if let Some(reply) = step.reply {
                        self.inbox.extend_from_slice(&reply);
                    }
                    if let Some(ch) = step.established {
                        *self.server_channel = Some(ch);
                    }
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut server_hs = ServerHandshake::new(server_id.clone());
        let mut server_channel = None;
        let mut shuttle = Shuttle {
            inbox: &mut client_in,
            outbox: &mut client_out,
            hs: &mut server_hs,
            server_channel: &mut server_channel,
        };
        let client_channel = client_handshake(&mut shuttle, client_id, pin, 1 << 20)?;
        let server_channel = server_channel.expect("server established");
        Ok((client_channel, server_channel))
    }

    #[test]
    fn handshake_establishes_matching_channels() {
        let client_id = NodeIdentity::from_seed(1);
        let server_id = NodeIdentity::from_seed(2);
        let (mut client, mut server) =
            handshake_pair(&client_id, &server_id, Some(server_id.public_bytes())).unwrap();

        assert_eq!(client.peer_identity(), server_id.public_bytes());
        assert_eq!(server.peer_identity(), client_id.public_bytes());

        // Both directions seal and open.
        let frame = client.seal_frame(b"up the wire");
        assert_eq!(&frame[..4], &FRAME_MAGIC_SEALED);
        let opened = server.open_payload(&frame[8..]).unwrap();
        assert_eq!(opened, b"up the wire");

        let down = server.seal_frame(b"down the wire");
        assert_eq!(client.open_payload(&down[8..]).unwrap(), b"down the wire");
    }

    #[test]
    fn pinned_server_mismatch_is_refused() {
        let client_id = NodeIdentity::from_seed(1);
        let server_id = NodeIdentity::from_seed(2);
        let wrong_pin = NodeIdentity::from_seed(3).public_bytes();
        let err = handshake_pair(&client_id, &server_id, Some(wrong_pin)).unwrap_err();
        assert!(matches!(err, ProtocolError::AuthFailure { .. }), "{err}");
    }

    #[test]
    fn tampered_frames_and_replays_are_typed_errors() {
        let client_id = NodeIdentity::from_seed(4);
        let server_id = NodeIdentity::from_seed(5);
        let (mut client, mut server) = handshake_pair(&client_id, &server_id, None).unwrap();

        // Bit-flip anywhere in the sealed region fails the tag.
        let frame = client.seal_frame(b"payload");
        let mut tampered = frame.clone();
        let n = tampered.len();
        tampered[n - 1] ^= 0x01;
        let err = server.open_payload(&tampered[8..]).unwrap_err();
        assert!(matches!(err, ProtocolError::AuthFailure { .. }), "{err}");

        // The genuine frame still opens (failed opens do not advance seq).
        assert_eq!(server.open_payload(&frame[8..]).unwrap(), b"payload");

        // Replaying it is now out of sequence.
        let err = server.open_payload(&frame[8..]).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::ReplayDetected {
                expected: 1,
                got: 0
            }
        );

        // A reordered (future) frame is refused the same way.
        let f1 = client.seal_frame(b"one");
        let f2 = client.seal_frame(b"two");
        let err = server.open_payload(&f2[8..]).unwrap_err();
        assert!(matches!(err, ProtocolError::ReplayDetected { .. }), "{err}");
        let _ = f1;
    }

    #[test]
    fn identities_are_deterministic_per_seed() {
        assert_eq!(
            NodeIdentity::from_seed(7).public_bytes(),
            NodeIdentity::from_seed(7).public_bytes()
        );
        assert_ne!(
            NodeIdentity::from_seed(7).public_bytes(),
            NodeIdentity::from_seed(8).public_bytes()
        );
        assert_ne!(
            NodeIdentity::generate().public_bytes(),
            NodeIdentity::generate().public_bytes()
        );
    }

    #[test]
    fn channel_frames_parse_by_magic() {
        // Handshake frame round-trips.
        let mut buf = Vec::new();
        write_handshake_frame(&mut buf, b"hello").unwrap();
        let (frame, n) = read_channel_frame(&mut &buf[..], 1 << 20).unwrap();
        assert_eq!(n, buf.len());
        assert_eq!(frame, ChannelFrame::Handshake(b"hello".to_vec()));

        // Plaintext frames come back whole for policy dispatch.
        let mut buf = Vec::new();
        super::super::wire::write_frame(&mut buf, &super::super::wire::WireMsg::Ack).unwrap();
        let (frame, _) = read_channel_frame(&mut &buf[..], 1 << 20).unwrap();
        match frame {
            ChannelFrame::Plaintext { codec, frame } => {
                assert_eq!(codec, CodecKind::Json);
                assert_eq!(frame, buf);
            }
            other => panic!("expected plaintext, got {other:?}"),
        }

        // Unknown magic is malformed; truncation is typed.
        let err = read_channel_frame(&mut &b"EVIL\x00\x00\x00\x00"[..], 1 << 20).unwrap_err();
        assert!(matches!(err, ProtocolError::MalformedFrame { .. }), "{err}");
        let err = read_channel_frame(&mut &buf[..3], 1 << 20).unwrap_err();
        assert!(matches!(err, ProtocolError::TruncatedFrame { .. }), "{err}");
    }

    #[test]
    fn retry_schedule_is_deterministic_and_bounded() {
        let base = std::time::Duration::from_millis(10);
        let mut a = RetrySchedule::new(base, 42);
        let mut b = RetrySchedule::new(base, 42);
        let mut c = RetrySchedule::new(base, 43);
        let delays_a: Vec<_> = (0..4).map(|i| a.delay(i)).collect();
        let delays_b: Vec<_> = (0..4).map(|i| b.delay(i)).collect();
        assert_eq!(delays_a, delays_b, "same seed, same jitter");
        let delays_c: Vec<_> = (0..4).map(|i| c.delay(i)).collect();
        assert_ne!(delays_a, delays_c, "different seed, different jitter");
        for (i, d) in delays_a.iter().enumerate() {
            let backoff = base * (1 << i as u32);
            assert!(*d >= backoff, "attempt {i}: {d:?} < {backoff:?}");
            assert!(*d < backoff + base, "attempt {i}: {d:?} jitter too big");
        }
    }
}
