//! The wire messages of the Dubhe exchanges and their transport sizes.
//!
//! Every object that crosses the network in Fig. 4 or §5.3.1 is one variant
//! of [`ProtocolMsg`]; parties are named by [`Party`]. A message knows its
//! canonical wire size ([`ProtocolMsg::wire_bytes`]) via the `dubhe-he`
//! transport model, so any [`Transport`](crate::protocol::Transport)
//! implementation can meter a link without serializing.

use dubhe_he::transport::{
    ciphertext_size_bytes, packed_vector_wire_bytes, private_key_size_bytes, public_key_size_bytes,
    vector_wire_bytes,
};
use dubhe_he::{EncryptedVector, PackedEncryptedVector, PrivateKey, PublicKey};
use serde::{Deserialize, Serialize};

use crate::selector::ClientId;

/// A protocol participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Party {
    /// The randomly chosen agent client that owns the epoch keypair.
    Agent,
    /// The honest-but-curious coordinator server.
    Server,
    /// An ordinary selection client, identified by its dense id.
    Client(ClientId),
}

/// The kind of a [`ProtocolMsg`], used for per-kind transport accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MsgKind {
    /// [`ProtocolMsg::PublicKeyDispatch`].
    KeyDispatch,
    /// [`ProtocolMsg::EncryptedRegistry`].
    Registry,
    /// [`ProtocolMsg::EncryptedTotalBroadcast`].
    TotalBroadcast,
    /// [`ProtocolMsg::EncryptedDistribution`].
    Distribution,
    /// [`ProtocolMsg::EncryptedDistributionSum`].
    DistributionSum,
    /// [`ProtocolMsg::TryVerdict`].
    Verdict,
}

/// One wire message of the secure exchanges (Fig. 4 steps 1–4 and the
/// §5.3.1 multi-time determination).
// The key-dispatch variant carries whole keypairs (with their cached CRT /
// Montgomery precomputation) and is sent a handful of times per epoch;
// boxing it would complicate the serde layout for no hot-path win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolMsg {
    /// **Fig. 4 step 1** — the agent dispatches the epoch key. Copies bound
    /// for clients carry the private key (clients decrypt the total
    /// themselves); the server's copy carries `None` and the server refuses
    /// delivery of anything else.
    PublicKeyDispatch {
        /// The epoch public key.
        public_key: PublicKey,
        /// The private key — present only on client-bound copies.
        private_key: Option<PrivateKey>,
    },
    /// **Fig. 4 step 2** — a client's encrypted one-hot registry `R^(t,k)`.
    EncryptedRegistry {
        /// The sending client.
        client: ClientId,
        /// The element-wise encrypted registry.
        registry: EncryptedVector,
    },
    /// **Fig. 4 step 3** — the server's broadcast of the homomorphic sum
    /// `Enc(R_A)` of every received registry.
    EncryptedTotalBroadcast {
        /// The encrypted overall registry.
        total: EncryptedVector,
    },
    /// **§5.3.1** — a tentatively selected client's encrypted scaled label
    /// distribution `Enc(p_l)` for one try.
    EncryptedDistribution {
        /// The sending client.
        client: ClientId,
        /// Which of the `H` tentative tries this contribution belongs to.
        try_index: usize,
        /// The encrypted fixed-point label distribution.
        distribution: EncryptedVector,
    },
    /// **§5.3.1** — the server's homomorphic sum `Enc(Σ p_l)` of one try,
    /// forwarded to the agent for decryption.
    EncryptedDistributionSum {
        /// Which try the sum belongs to.
        try_index: usize,
        /// How many client distributions were folded in (the agent divides
        /// by this to recover the population distribution).
        contributors: usize,
        /// The encrypted sum.
        sum: EncryptedVector,
    },
    /// **§5.3.1** — the agent's verdict after the L1 try-test
    /// `h* = argmin_h ‖p_o,h − p_u‖₁`.
    TryVerdict {
        /// The winning try index `h*`.
        best_try: usize,
        /// `‖p_o,h* − p_u‖₁`.
        distance: f64,
    },
    /// **Fig. 4 step 2, packed** — a client's registry with many counters
    /// laid into each Paillier plaintext (BatchCrypt-style slot packing).
    /// Semantically identical to [`EncryptedRegistry`](Self::EncryptedRegistry)
    /// at ~slots× fewer ciphertexts; a packing-configured coordinator accepts
    /// only this form.
    PackedRegistry {
        /// The sending client.
        client: ClientId,
        /// The slot-packed encrypted registry.
        registry: PackedEncryptedVector,
    },
    /// **Fig. 4 step 3, packed** — the server's broadcast of the lane-wise
    /// homomorphic sum of every received packed registry.
    PackedTotalBroadcast {
        /// The packed encrypted overall registry.
        total: PackedEncryptedVector,
    },
    /// **§5.3.1, packed** — a tentatively selected client's slot-packed
    /// encrypted scaled label distribution for one try.
    PackedDistribution {
        /// The sending client.
        client: ClientId,
        /// Which of the `H` tentative tries this contribution belongs to.
        try_index: usize,
        /// The packed encrypted fixed-point label distribution.
        distribution: PackedEncryptedVector,
    },
    /// **§5.3.1, packed** — the server's lane-wise homomorphic sum of one
    /// try's packed distributions, forwarded to the agent for decryption.
    PackedDistributionSum {
        /// Which try the sum belongs to.
        try_index: usize,
        /// How many client distributions were folded in.
        contributors: usize,
        /// The packed encrypted sum.
        sum: PackedEncryptedVector,
    },
}

impl ProtocolMsg {
    /// The message's kind (for accounting). A packed variant shares the kind
    /// of its element-wise form — it is the same protocol step, just a denser
    /// layout — so per-kind metering compares packed and unpacked runs
    /// link-for-link.
    pub fn kind(&self) -> MsgKind {
        match self {
            ProtocolMsg::PublicKeyDispatch { .. } => MsgKind::KeyDispatch,
            ProtocolMsg::EncryptedRegistry { .. } | ProtocolMsg::PackedRegistry { .. } => {
                MsgKind::Registry
            }
            ProtocolMsg::EncryptedTotalBroadcast { .. }
            | ProtocolMsg::PackedTotalBroadcast { .. } => MsgKind::TotalBroadcast,
            ProtocolMsg::EncryptedDistribution { .. } | ProtocolMsg::PackedDistribution { .. } => {
                MsgKind::Distribution
            }
            ProtocolMsg::EncryptedDistributionSum { .. }
            | ProtocolMsg::PackedDistributionSum { .. } => MsgKind::DistributionSum,
            ProtocolMsg::TryVerdict { .. } => MsgKind::Verdict,
        }
    }

    /// Canonical wire size in bytes, from the `dubhe-he` transport model:
    /// ciphertexts at the fixed width ⌈2·|n|/8⌉, key material at ⌈|n|/8⌉ per
    /// modulus-sized component, and 8 bytes per scalar header field.
    pub fn wire_bytes(&self) -> usize {
        const SCALAR: usize = std::mem::size_of::<u64>();
        match self {
            ProtocolMsg::PublicKeyDispatch {
                public_key,
                private_key,
            } => {
                public_key_size_bytes(public_key)
                    + private_key
                        .as_ref()
                        .map(|sk| private_key_size_bytes(&sk.public))
                        .unwrap_or(0)
            }
            ProtocolMsg::EncryptedRegistry { registry, .. } => SCALAR + vector_wire_bytes(registry),
            ProtocolMsg::EncryptedTotalBroadcast { total } => vector_wire_bytes(total),
            ProtocolMsg::EncryptedDistribution { distribution, .. } => {
                2 * SCALAR + vector_wire_bytes(distribution)
            }
            ProtocolMsg::EncryptedDistributionSum { sum, .. } => {
                2 * SCALAR + vector_wire_bytes(sum)
            }
            ProtocolMsg::TryVerdict { .. } => 2 * SCALAR,
            ProtocolMsg::PackedRegistry { registry, .. } => {
                SCALAR + packed_vector_wire_bytes(registry)
            }
            ProtocolMsg::PackedTotalBroadcast { total } => packed_vector_wire_bytes(total),
            ProtocolMsg::PackedDistribution { distribution, .. } => {
                2 * SCALAR + packed_vector_wire_bytes(distribution)
            }
            ProtocolMsg::PackedDistributionSum { sum, .. } => {
                2 * SCALAR + packed_vector_wire_bytes(sum)
            }
        }
    }

    /// The ciphertext payload portion of [`wire_bytes`](Self::wire_bytes):
    /// bytes of encrypted vector material, excluding headers and keys. This
    /// is the quantity the §6.4 overhead study (and the FL ledger) charges.
    pub fn ciphertext_bytes(&self) -> usize {
        match self {
            ProtocolMsg::PublicKeyDispatch { .. } | ProtocolMsg::TryVerdict { .. } => 0,
            ProtocolMsg::EncryptedRegistry { registry, .. } => vector_wire_bytes(registry),
            ProtocolMsg::EncryptedTotalBroadcast { total } => vector_wire_bytes(total),
            ProtocolMsg::EncryptedDistribution { distribution, .. } => {
                vector_wire_bytes(distribution)
            }
            ProtocolMsg::EncryptedDistributionSum { sum, .. } => vector_wire_bytes(sum),
            ProtocolMsg::PackedRegistry { registry, .. } => packed_vector_wire_bytes(registry),
            ProtocolMsg::PackedTotalBroadcast { total } => packed_vector_wire_bytes(total),
            ProtocolMsg::PackedDistribution { distribution, .. } => {
                packed_vector_wire_bytes(distribution)
            }
            ProtocolMsg::PackedDistributionSum { sum, .. } => packed_vector_wire_bytes(sum),
        }
    }
}

/// An addressed message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The sending party.
    pub from: Party,
    /// The receiving party.
    pub to: Party,
    /// The key-rotation epoch the frame belongs to. Every party starts at
    /// epoch 0; only a key dispatch may advance a receiver's epoch, and any
    /// other frame whose epoch disagrees with the receiver's is refused with
    /// a typed error ([`StaleEpoch`]/[`FutureEpoch`]). Legacy frames without
    /// the field decode as epoch 0.
    ///
    /// [`StaleEpoch`]: crate::error::ProtocolError::StaleEpoch
    /// [`FutureEpoch`]: crate::error::ProtocolError::FutureEpoch
    pub epoch: u64,
    /// The payload.
    pub msg: ProtocolMsg,
}

// Hand-written (de)serialization so a missing `epoch` field defaults to 0:
// pre-epoch peers and recorded transcripts keep decoding unchanged.
impl Serialize for Envelope {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("from".to_string(), self.from.to_value()),
            ("to".to_string(), self.to.to_value()),
            ("epoch".to_string(), self.epoch.to_value()),
            ("msg".to_string(), self.msg.to_value()),
        ])
    }
}

impl Deserialize for Envelope {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Envelope {
            from: Deserialize::from_value(serde::get_field(v, "from")?)?,
            to: Deserialize::from_value(serde::get_field(v, "to")?)?,
            epoch: match serde::get_field(v, "epoch") {
                Ok(value) => Deserialize::from_value(value)?,
                Err(_) => 0,
            },
            msg: Deserialize::from_value(serde::get_field(v, "msg")?)?,
        })
    }
}

/// Per-element ciphertext width under `public` — re-exported convenience so
/// protocol consumers need only this module for size math.
pub fn ciphertext_width(public: &PublicKey) -> usize {
    ciphertext_size_bytes(public)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dubhe_he::Keypair;
    use rand::SeedableRng;

    #[test]
    fn wire_bytes_follow_the_transport_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let kp = Keypair::generate(dubhe_he::TEST_KEY_BITS, &mut rng);
        let v = EncryptedVector::encrypt_u64(&kp.public, &[0, 1, 0, 0], &mut rng);
        let ct = ciphertext_width(&kp.public);

        let reg = ProtocolMsg::EncryptedRegistry {
            client: 3,
            registry: v.clone(),
        };
        assert_eq!(reg.wire_bytes(), 8 + 4 * ct);
        assert_eq!(reg.ciphertext_bytes(), 4 * ct);
        assert_eq!(reg.kind(), MsgKind::Registry);

        let to_server = ProtocolMsg::PublicKeyDispatch {
            public_key: kp.public.clone(),
            private_key: None,
        };
        let to_client = ProtocolMsg::PublicKeyDispatch {
            public_key: kp.public.clone(),
            private_key: Some(kp.private.clone()),
        };
        // The client copy carries the private factors on top of the modulus.
        assert_eq!(to_client.wire_bytes(), 2 * to_server.wire_bytes());
        assert_eq!(to_server.ciphertext_bytes(), 0);

        let verdict = ProtocolMsg::TryVerdict {
            best_try: 2,
            distance: 0.25,
        };
        assert_eq!(verdict.wire_bytes(), 16);
        assert_eq!(verdict.kind(), MsgKind::Verdict);
    }
}
