//! The networked transport: framed TCP sockets between clients and the
//! coordinator.
//!
//! Two halves, both std-only (no async runtime — the build environment is
//! offline, and `std::net` is all the exchange needs):
//!
//! * [`TcpTransport`] — the client-side connector. It plugs into the same
//!   driver slot as a local
//!   [`CoordinatorServer`](super::roles::CoordinatorServer) (the
//!   [`Coordinator`] trait), so `AgentNode` and `SelectClientNode` drive the *identical*
//!   [`ProtocolMsg`](super::message::ProtocolMsg) exchange whether the
//!   coordinator is an in-process struct or a process across the network.
//!   Every server-bound envelope becomes one framed request; the
//!   coordinator's reply batch is returned to the driver for local delivery.
//! * [`CoordinatorListener`] — the server side: a multi-threaded loopback
//!   listener that accepts any number of concurrent connections and serves a
//!   [`ShardedCoordinator`] behind a *mutex-free* actor: connection threads
//!   do I/O only and forward requests over channels to a single router
//!   thread that owns the coordinator state (shard parallelism happens
//!   inside the fold, via rayon). No `Mutex` anywhere — ordering is the
//!   channel's FIFO, which makes a single-connection session byte-for-byte
//!   deterministic.
//!
//! Robustness contract (pinned by tests): a malformed, truncated or
//! oversized frame, a mid-exchange disconnect, or a silent peer all surface
//! as [`ProtocolError`] — never a panic, never an unbounded hang. Client
//! reads are bounded by a read timeout; the listener *parks* each idle
//! connection on a plain blocking read (an idle client between rounds is
//! healthy, and a parked thread costs zero CPU), wakes the parked reads by
//! shutting the sockets down when the listener stops, and applies the
//! timeout once a frame has started.
//!
//! Every connection records into a shared [`ListenerMetrics`] — frames and
//! bytes per direction, decode failures, request latency — surfaced through
//! [`CoordinatorListener::stats`] in the same [`ListenerStats`] shape as
//! `dubhe-net`'s reactor listener, so the two architectures are directly
//! comparable in `results/BENCH_net.json`.

use std::collections::HashMap;
use std::io::{BufReader, ErrorKind};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use super::codec::CodecKind;
use super::message::Envelope;
use super::roles::Coordinator;
use super::shard::ShardedCoordinator;
use super::stats::{ListenerMetrics, ListenerStats};
use super::transport::TransportStats;
use super::wire::{
    read_frame_lazy, read_frame_limited, write_frame_limited, LazyMsg, WireMsg, MAX_FRAME_BYTES,
};
use crate::error::ProtocolError;
use crate::selector::ClientId;

/// Default per-read timeout on protocol sockets. Long enough for a 2048-bit
/// registration epoch on a loaded machine, short enough that a wedged peer
/// cannot hang a driver forever.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket knobs for the client-side connector, builder-style.
///
/// Defaults: [`DEFAULT_READ_TIMEOUT`] (30 s) per read, the global
/// [`MAX_FRAME_BYTES`] (64 MiB) frame ceiling in both directions, and the
/// compatibility [`CodecKind::Json`] payload codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Per-read socket timeout (applies to every read of a reply frame).
    pub read_timeout: Duration,
    /// Largest frame payload accepted *or produced* on this socket.
    pub max_frame_bytes: usize,
    /// Payload codec requests are framed in (replies negotiate per frame).
    pub codec: CodecKind,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_frame_bytes: MAX_FRAME_BYTES,
            codec: CodecKind::Json,
        }
    }
}

impl TcpConfig {
    /// Replaces the per-read timeout.
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Replaces the frame-payload ceiling (both directions).
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Replaces the request payload codec.
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }
}

/// Socket knobs for the listener, builder-style.
///
/// Defaults: [`DEFAULT_READ_TIMEOUT`] (30 s) once a frame has started and
/// the global [`MAX_FRAME_BYTES`] (64 MiB) ceiling on accepted payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListenerConfig {
    /// Mid-frame read timeout (a peer that stalls inside a frame is cut).
    pub read_timeout: Duration,
    /// Retained for API compatibility: idle connections used to wake every
    /// `idle_poll` to check the stop flag. They now park on a blocking read
    /// (zero CPU while idle) and are woken by socket shutdown, so this knob
    /// no longer affects serving.
    pub idle_poll: Duration,
    /// Largest frame payload a connection will accept.
    pub max_frame_bytes: usize,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            read_timeout: DEFAULT_READ_TIMEOUT,
            idle_poll: IDLE_POLL,
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }
}

impl ListenerConfig {
    /// Replaces the mid-frame read timeout.
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Replaces the idle stop-flag poll period.
    pub fn with_idle_poll(mut self, idle_poll: Duration) -> Self {
        self.idle_poll = idle_poll;
        self
    }

    /// Replaces the frame-payload ceiling.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }
}

/// Real bytes and frames observed on one socket (header + payload, both
/// directions). This is what a deployment actually pays on the wire —
/// framing and payload encoding included — as opposed to the canonical
/// ciphertext accounting of [`TransportStats`], which prices messages at
/// their fixed-width transport model for like-for-like comparison with the
/// paper. Under the `DBH2` binary codec the two converge to within a few
/// percent; under `DBH1` JSON the wire pays ~2.5× the canonical bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Frames written to the socket.
    pub frames_sent: usize,
    /// Frames read from the socket.
    pub frames_received: usize,
    /// Bytes written (headers + payloads).
    pub bytes_sent: usize,
    /// Bytes read (headers + payloads).
    pub bytes_received: usize,
}

impl WireStats {
    /// Total bytes that crossed the socket in either direction.
    pub fn total_bytes(&self) -> usize {
        self.bytes_sent + self.bytes_received
    }
}

fn io_error(context: &'static str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Io {
        context,
        detail: e.to_string(),
    }
}

/// The client-side connector: carries server-bound protocol messages over a
/// framed TCP stream to a [`CoordinatorListener`] and hands the coordinator's
/// replies back to the driver.
///
/// Implements [`Coordinator`], so it drops into
/// [`run_registration_with`](super::driver::run_registration_with) /
/// [`run_try`](super::driver::run_try) /
/// [`pump`](super::driver::pump) exactly where a local server would go.
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    stats: TransportStats,
    wire: WireStats,
    codec: CodecKind,
    max_frame_bytes: usize,
}

impl TcpTransport {
    /// Connects to a coordinator endpoint with the [`TcpConfig`] defaults:
    /// [`DEFAULT_READ_TIMEOUT`], [`MAX_FRAME_BYTES`], and the compatibility
    /// [`CodecKind::Json`] (`DBH1`) payload codec.
    pub fn connect(addr: SocketAddr) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(addr, TcpConfig::default())
    }

    /// Connects with an explicit payload codec (the listener negotiates from
    /// the frame magic, so either side of an upgrade can move first).
    pub fn connect_with_codec(addr: SocketAddr, codec: CodecKind) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(addr, TcpConfig::default().with_codec(codec))
    }

    /// Connects with an explicit read timeout (tests use short ones so a
    /// silent peer fails fast instead of stalling the suite) and the `DBH1`
    /// codec.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        read_timeout: Duration,
    ) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(
            addr,
            TcpConfig::default().with_read_timeout(read_timeout),
        )
    }

    /// Connects with an explicit read timeout and payload codec.
    pub fn connect_with(
        addr: SocketAddr,
        read_timeout: Duration,
        codec: CodecKind,
    ) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(
            addr,
            TcpConfig::default()
                .with_read_timeout(read_timeout)
                .with_codec(codec),
        )
    }

    /// Connects with every socket knob spelled out in a [`TcpConfig`].
    pub fn connect_with_config(addr: SocketAddr, config: TcpConfig) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_error("connect", e))?;
        stream
            .set_read_timeout(Some(config.read_timeout))
            .map_err(|e| io_error("configure socket", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_error("configure socket", e))?;
        Ok(TcpTransport {
            reader: BufReader::new(stream),
            stats: TransportStats::default(),
            wire: WireStats::default(),
            codec: config.codec,
            max_frame_bytes: config.max_frame_bytes,
        })
    }

    /// The payload codec this connector frames requests in.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Canonical per-kind accounting of every message this connector carried
    /// (requests out and reply envelopes in), in the same units as
    /// [`InMemoryTransport::stats`](super::transport::InMemoryTransport::stats).
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Real frame traffic on the socket (headers + encoded payloads).
    pub fn wire_stats(&self) -> &WireStats {
        &self.wire
    }

    /// Sends one wire message and reads the peer's single reply frame.
    fn request(&mut self, msg: &WireMsg) -> Result<WireMsg, ProtocolError> {
        let written =
            write_frame_limited(self.reader.get_mut(), msg, self.codec, self.max_frame_bytes)?;
        self.wire.frames_sent += 1;
        self.wire.bytes_sent += written;
        let (reply, read, _) = read_frame_limited(&mut self.reader, self.max_frame_bytes)?;
        self.wire.frames_received += 1;
        self.wire.bytes_received += read;
        Ok(reply)
    }

    /// Expects the coordinator's reply batch; unwraps remote errors.
    fn request_batch(&mut self, msg: &WireMsg) -> Result<Vec<Envelope>, ProtocolError> {
        match self.request(msg)? {
            WireMsg::Batch { envelopes } => {
                for e in &envelopes {
                    self.stats.charge(&e.msg);
                }
                Ok(envelopes)
            }
            WireMsg::Error { detail } => Err(ProtocolError::Remote { detail }),
            other => Err(ProtocolError::MalformedFrame {
                detail: format!("expected a batch or error reply, got {other:?}"),
            }),
        }
    }

    /// Expects a bare acknowledgement; unwraps remote errors.
    fn request_ack(&mut self, msg: &WireMsg) -> Result<(), ProtocolError> {
        match self.request(msg)? {
            WireMsg::Ack => Ok(()),
            WireMsg::Error { detail } => Err(ProtocolError::Remote { detail }),
            other => Err(ProtocolError::MalformedFrame {
                detail: format!("expected an ack or error reply, got {other:?}"),
            }),
        }
    }

    /// Ends the session politely; the listener closes the connection.
    pub fn shutdown(mut self) -> Result<(), ProtocolError> {
        let written = write_frame_limited(
            self.reader.get_mut(),
            &WireMsg::Shutdown,
            self.codec,
            self.max_frame_bytes,
        )?;
        self.wire.frames_sent += 1;
        self.wire.bytes_sent += written;
        Ok(())
    }
}

impl Coordinator for TcpTransport {
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError> {
        self.stats.charge(&envelope.msg);
        self.request_batch(&WireMsg::Envelope { envelope })
    }

    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[ClientId],
    ) -> Result<(), ProtocolError> {
        self.request_ack(&WireMsg::AnnounceTry {
            try_index,
            participants: participants.to_vec(),
        })
    }

    fn begin_epoch(
        &mut self,
        epoch: u64,
        expected_registrations: usize,
    ) -> Result<(), ProtocolError> {
        self.request_ack(&WireMsg::BeginEpoch {
            epoch,
            expected_registrations,
        })
    }

    fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        self.request_batch(&WireMsg::CloseRegistration)
    }

    fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        self.request_batch(&WireMsg::CloseTry { try_index })
    }
}

/// A request forwarded from a connection thread to the router thread.
/// `DBH2` registry uploads travel as [`LazyMsg::DeferredRegistry`] — raw
/// payload bytes the router folds through a borrowed view instead of
/// materialising per-element ciphertexts on the connection thread.
struct RouterRequest {
    msg: LazyMsg,
    reply: mpsc::Sender<WireMsg>,
}

/// The multi-threaded coordinator listener.
///
/// Topology: one accept thread, one I/O thread per connection, one router
/// thread owning the [`ShardedCoordinator`]. Connection threads never touch
/// coordinator state — they forward each decoded [`WireMsg`] over an mpsc
/// channel and relay the router's reply — so the whole server is mutex-free:
/// exclusivity comes from ownership, ordering from channel FIFO, and shard
/// parallelism from rayon inside the fold itself.
#[derive(Debug)]
pub struct CoordinatorListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    router_thread: Option<JoinHandle<ShardedCoordinator>>,
    metrics: Arc<ListenerMetrics>,
    /// Clones of every live connection's stream, keyed by connection id.
    /// Idle connections park on a blocking read; shutting these sockets
    /// down is what wakes them when the listener stops.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl CoordinatorListener {
    /// Binds an ephemeral loopback port and starts serving `coordinator`
    /// with the [`ListenerConfig`] defaults.
    pub fn spawn(coordinator: ShardedCoordinator) -> Result<Self, ProtocolError> {
        CoordinatorListener::spawn_with(coordinator, ListenerConfig::default())
    }

    /// [`spawn`](Self::spawn) with every socket knob spelled out.
    pub fn spawn_with(
        coordinator: ShardedCoordinator,
        config: ListenerConfig,
    ) -> Result<Self, ProtocolError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_error("bind", e))?;
        let addr = listener.local_addr().map_err(|e| io_error("bind", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ListenerMetrics::new());
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));

        // The accept thread owns the only long-lived Sender; when it exits
        // (joining every connection thread first) the channel hangs up and
        // the router ends with it — no explicit stop message needed.
        let (router_tx, router_rx) = mpsc::channel::<RouterRequest>();
        let router_thread = std::thread::spawn(move || route(coordinator, router_rx));

        let accept_stop = Arc::clone(&stop);
        let accept_metrics = Arc::clone(&metrics);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            let mut connections: Vec<JoinHandle<()>> = Vec::new();
            // Finished-thread reaping is amortized: sweeping on every accept
            // is O(live + dead) per connection — quadratic over a churny
            // session — so sweep only when the list doubles past the last
            // high-water mark, making the total reaping work O(n log n).
            let mut reap_watermark: usize = 64;
            let mut next_id: u64 = 0;
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                // A failed accept is one connection's problem, never the
                // listener's: log it and keep serving everyone else.
                let stream = match stream {
                    Ok(stream) => stream,
                    Err(e) => {
                        eprintln!("coordinator listener: accept failed, continuing: {e}");
                        continue;
                    }
                };
                // Register a clone so shutdown can wake the parked read. A
                // connection we cannot register would be unwakeable — refuse
                // it rather than risk a hung shutdown.
                let clone = match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(e) => {
                        eprintln!("coordinator listener: clone failed, refusing connection: {e}");
                        continue;
                    }
                };
                let conn_id = next_id;
                next_id += 1;
                accept_conns
                    .lock()
                    .expect("connection registry poisoned")
                    .insert(conn_id, clone);
                if connections.len() >= reap_watermark {
                    connections.retain(|c| !c.is_finished());
                    reap_watermark = (connections.len() * 2).max(64);
                }
                accept_metrics.connection_opened();
                let router = router_tx.clone();
                let conn_stop = Arc::clone(&accept_stop);
                let conn_metrics = Arc::clone(&accept_metrics);
                let conn_registry = Arc::clone(&accept_conns);
                connections.push(std::thread::spawn(move || {
                    serve_connection(stream, router, conn_stop, config, &conn_metrics);
                    conn_registry
                        .lock()
                        .expect("connection registry poisoned")
                        .remove(&conn_id);
                    conn_metrics.connection_closed();
                }));
            }
            for c in connections {
                let _ = c.join();
            }
        });

        Ok(CoordinatorListener {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            router_thread: Some(router_thread),
            metrics,
            conns,
        })
    }

    /// The loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time snapshot of everything the listener observed:
    /// connection lifecycle, per-direction frame/byte traffic, decode
    /// failures and the request-latency distribution. Same shape as the
    /// reactor listener's stats, for like-for-like benching.
    pub fn stats(&self) -> ListenerStats {
        self.metrics.snapshot()
    }

    /// Stops accepting, drains the threads and returns the final coordinator
    /// state (e.g. to inspect `messages_received` after a session).
    pub fn shutdown(mut self) -> Option<ShardedCoordinator> {
        self.stop_threads()
    }

    fn stop_threads(&mut self) -> Option<ShardedCoordinator> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Wake every parked connection read: shutting the socket down makes
        // the blocking read return 0 and the thread exit. (New connections
        // cannot race in: the accept loop has already seen the stop flag.)
        for stream in self
            .conns
            .lock()
            .expect("connection registry poisoned")
            .values()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // With the accept thread (and every connection it joined) gone, all
        // Sender clones are dropped and the router drains to completion.
        self.router_thread.take().and_then(|t| t.join().ok())
    }
}

impl Drop for CoordinatorListener {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            let _ = self.stop_threads();
        }
    }
}

/// The router thread: the sole owner of the coordinator state.
fn route(
    mut coordinator: ShardedCoordinator,
    rx: mpsc::Receiver<RouterRequest>,
) -> ShardedCoordinator {
    let batch_or_error = |r: Result<Vec<Envelope>, ProtocolError>| match r {
        Ok(envelopes) => WireMsg::Batch { envelopes },
        Err(e) => WireMsg::Error {
            detail: e.to_string(),
        },
    };
    while let Ok(RouterRequest { msg, reply }) = rx.recv() {
        let msg = match msg {
            // A deferred registry folds straight out of its frame bytes —
            // the router is where the borrowed view finally gets decoded
            // (and where a malformed ciphertext block earns its typed
            // error reply).
            LazyMsg::DeferredRegistry(frame) => {
                let response = batch_or_error(coordinator.deliver_registry_frame(frame));
                let _ = reply.send(response);
                continue;
            }
            LazyMsg::Eager(msg) => msg,
        };
        let response = match msg {
            // Epoch checks live in `deliver`, not `handle`: a stale or
            // future-epoch frame from a remote peer earns a typed error
            // reply, exactly as it would in-process.
            WireMsg::Envelope { envelope } => batch_or_error(coordinator.deliver(envelope)),
            WireMsg::AnnounceTry {
                try_index,
                participants,
            } => {
                coordinator.announce_try(try_index, &participants);
                WireMsg::Ack
            }
            WireMsg::BeginEpoch {
                epoch,
                expected_registrations,
            } => {
                coordinator.begin_epoch(epoch, expected_registrations);
                WireMsg::Ack
            }
            WireMsg::CloseRegistration => batch_or_error(coordinator.close_registration()),
            WireMsg::CloseTry { try_index } => batch_or_error(coordinator.close_try(try_index)),
            other => WireMsg::Error {
                detail: format!("coordinator cannot serve {other:?}"),
            },
        };
        let _ = reply.send(response);
    }
    coordinator
}

/// The historical idle-poll period; kept for [`ListenerConfig`] API
/// compatibility (idle connections now park on a blocking read instead of
/// waking at this interval).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// One connection's I/O loop: decode a frame, forward it to the router,
/// relay the reply. Exits on shutdown frames, disconnects, or anything
/// undecodable (after telling the peer what was wrong, best-effort).
///
/// The payload codec is negotiated per connection from the frame magic:
/// every reply is framed in the codec the request arrived in, so one
/// listener serves `DBH1` and `DBH2` peers concurrently and a peer may even
/// switch codecs mid-session. (Negotiation selects a *format*, nothing more —
/// it is not authentication; see `docs/THREAT_MODEL.md`.)
///
/// Idleness *between* frames is healthy — a client may train for minutes
/// between protocol rounds — so the wait for a frame's first byte is a plain
/// blocking read with no timeout: zero CPU parked, woken either by the peer's
/// next byte or by the listener shutting this socket down at stop. Once a
/// frame has started, [`ListenerConfig::read_timeout`] bounds the rest of it
/// so a peer that stalls mid-frame cannot pin the thread.
fn serve_connection(
    stream: TcpStream,
    router: mpsc::Sender<RouterRequest>,
    stop: Arc<AtomicBool>,
    config: ListenerConfig,
    metrics: &ListenerMetrics,
) {
    use std::io::Read as _;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    // Until the first frame decodes, error replies default to DBH1 (a peer
    // whose magic we could not even parse gets the lowest common format).
    let mut codec = CodecKind::Json;
    loop {
        // A connection spawned while the listener was stopping may have
        // missed the shutdown sweep of the socket registry; this check
        // pairs with it so neither ordering can park a thread forever.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Park until the next frame's first byte (or hangup / stop wakeup).
        let _ = reader.get_ref().set_read_timeout(None);
        let mut first = [0u8; 1];
        let got = loop {
            match reader.read(&mut first) {
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        };
        if got == 0 {
            return; // clean close between frames
        }
        // Frame in flight: the full read timeout applies from here on.
        let _ = reader.get_ref().set_read_timeout(Some(config.read_timeout));
        let (msg, frame_bytes) =
            match read_frame_lazy(&mut (&first[..]).chain(&mut reader), config.max_frame_bytes) {
                Ok((LazyMsg::Eager(WireMsg::Shutdown), bytes, _)) => {
                    metrics.frame_received(bytes);
                    return;
                }
                Err(ProtocolError::Disconnected) => return,
                Ok((msg, bytes, frame_codec)) => {
                    codec = frame_codec;
                    (msg, bytes)
                }
                Err(e) => {
                    // A malformed/truncated frame poisons the stream (framing is
                    // lost); report and hang up rather than guessing at bytes.
                    match e {
                        ProtocolError::TruncatedFrame { .. } | ProtocolError::Io { .. } => {
                            metrics.truncated_frame()
                        }
                        _ => metrics.decode_error(),
                    }
                    let _ = write_frame_limited(
                        reader.get_mut(),
                        &WireMsg::Error {
                            detail: e.to_string(),
                        },
                        codec,
                        config.max_frame_bytes,
                    );
                    return;
                }
            };
        metrics.frame_received(frame_bytes);
        let started = Instant::now();
        let (reply_tx, reply_rx) = mpsc::channel();
        if router
            .send(RouterRequest {
                msg,
                reply: reply_tx,
            })
            .is_err()
        {
            return; // listener shutting down
        }
        let Ok(response) = reply_rx.recv() else {
            return;
        };
        match write_frame_limited(reader.get_mut(), &response, codec, config.max_frame_bytes) {
            Ok(written) => {
                metrics.frame_sent(written);
                // A thread-per-connection reply is written synchronously, so
                // the "queue" is exactly the one in-flight reply frame.
                metrics.write_queue_depth(written);
                metrics.record_latency(started.elapsed());
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::message::{Party, ProtocolMsg};

    fn verdict(best_try: usize) -> Envelope {
        Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try,
                distance: 0.1,
            },
        }
    }

    #[test]
    fn listener_spawns_serves_and_shuts_down() {
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 2)).unwrap();
        let addr = listener.addr();
        let mut client = TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
        // A verdict is always accepted and triggers nothing.
        let out = client.deliver(verdict(0)).unwrap();
        assert!(out.is_empty());
        assert_eq!(client.wire_stats().frames_sent, 1);
        assert_eq!(client.wire_stats().frames_received, 1);
        assert!(client.wire_stats().total_bytes() > 0);
        assert_eq!(client.stats().verdicts.messages, 1);
        let stats = listener.stats();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.frames_received, 1);
        assert_eq!(stats.frames_sent, 1);
        assert!(stats.bytes_received > 0 && stats.bytes_sent > 0);
        assert_eq!(stats.latency.count, 1);
        assert!(stats.peak_write_queue > 0);
        client.shutdown().unwrap();
        let coordinator = listener.shutdown().expect("state returned");
        assert_eq!(coordinator.messages_received(), 1);
        assert_eq!(coordinator.last_verdict(), Some((0, 0.1)));
    }

    #[test]
    fn idle_connection_survives_and_shutdown_stays_prompt() {
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
        let mut client =
            TcpTransport::connect_with_timeout(listener.addr(), Duration::from_secs(5)).unwrap();
        // Stay silent for several idle-poll periods, like a client that is
        // busy training between protocol rounds. The server must not treat
        // the quiet as an error and hang up.
        std::thread::sleep(IDLE_POLL * 4);
        client
            .deliver(verdict(2))
            .expect("connection still healthy");
        // Drop the listener while the (idle) connection stays open: shutdown
        // must complete via the stop flag, not wait for a client hangup.
        let started = std::time::Instant::now();
        drop(listener);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "listener shutdown took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn both_codecs_interoperate_against_one_listener() {
        // Frame-magic negotiation: a DBH1 peer and a DBH2 peer drive the
        // same listener concurrently, and each gets replies in its own
        // format (the reply decodes on a connector that only speaks that
        // codec's framing — `request` verifies the round trip).
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 2)).unwrap();
        let addr = listener.addr();
        let mut json_client =
            TcpTransport::connect_with(addr, Duration::from_secs(5), CodecKind::Json).unwrap();
        let mut binary_client =
            TcpTransport::connect_with(addr, Duration::from_secs(5), CodecKind::Binary).unwrap();
        assert_eq!(json_client.codec(), CodecKind::Json);
        assert_eq!(binary_client.codec(), CodecKind::Binary);

        json_client.deliver(verdict(1)).unwrap();
        binary_client.deliver(verdict(2)).unwrap();
        json_client.announce_try(0, &[1, 2]).unwrap();
        binary_client.announce_try(1, &[3]).unwrap();

        // The identical verdict costs fewer wire bytes under DBH2.
        assert!(
            binary_client.wire_stats().bytes_sent < json_client.wire_stats().bytes_sent,
            "binary framing ({}) should undercut JSON ({})",
            binary_client.wire_stats().bytes_sent,
            json_client.wire_stats().bytes_sent
        );

        json_client.shutdown().unwrap();
        binary_client.shutdown().unwrap();
        let coordinator = listener.shutdown().expect("state returned");
        assert_eq!(coordinator.messages_received(), 2);
        assert_eq!(coordinator.last_verdict(), Some((2, 0.1)));
    }

    #[test]
    fn concurrent_connections_are_served() {
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
        let addr = listener.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client =
                        TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
                    client.deliver(verdict(i)).unwrap();
                    client.shutdown().unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let coordinator = listener.shutdown().expect("state returned");
        assert_eq!(coordinator.messages_received(), 4);
    }
}
