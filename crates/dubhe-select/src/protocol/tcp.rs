//! The networked transport: framed TCP sockets between clients and the
//! coordinator.
//!
//! Two halves, both std-only (no async runtime — the build environment is
//! offline, and `std::net` is all the exchange needs):
//!
//! * [`TcpTransport`] — the client-side connector. It plugs into the same
//!   driver slot as a local
//!   [`CoordinatorServer`](super::roles::CoordinatorServer) (the
//!   [`Coordinator`] trait), so `AgentNode` and `SelectClientNode` drive the *identical*
//!   [`ProtocolMsg`](super::message::ProtocolMsg) exchange whether the
//!   coordinator is an in-process struct or a process across the network.
//!   Every server-bound envelope becomes one framed request; the
//!   coordinator's reply batch is returned to the driver for local delivery.
//! * [`CoordinatorListener`] — the server side: a multi-threaded loopback
//!   listener that accepts any number of concurrent connections and serves a
//!   [`ShardedCoordinator`] behind a *mutex-free* actor: connection threads
//!   do I/O only and forward requests over channels to a single router
//!   thread that owns the coordinator state (shard parallelism happens
//!   inside the fold, via rayon). No `Mutex` anywhere — ordering is the
//!   channel's FIFO, which makes a single-connection session byte-for-byte
//!   deterministic.
//!
//! Robustness contract (pinned by tests): a malformed, truncated or
//! oversized frame, a mid-exchange disconnect, or a silent peer all surface
//! as [`ProtocolError`] — never a panic, never an unbounded hang. Client
//! reads are bounded by a read timeout; the listener *parks* each idle
//! connection on a plain blocking read (an idle client between rounds is
//! healthy, and a parked thread costs zero CPU), wakes the parked reads by
//! shutting the sockets down when the listener stops, and applies the
//! timeout once a frame has started.
//!
//! Every connection records into a shared [`ListenerMetrics`] — frames and
//! bytes per direction, decode failures, request latency — surfaced through
//! [`CoordinatorListener::stats`] in the same [`ListenerStats`] shape as
//! `dubhe-net`'s reactor listener, so the two architectures are directly
//! comparable in `results/BENCH_net.json`.

use std::collections::HashMap;
use std::io::{BufReader, ErrorKind};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use super::channel::{
    client_handshake, read_channel_frame, secret_bytes_from_seed, server_handshake_blocking,
    ChannelFrame, ChannelPolicy, NodeIdentity, RetrySchedule, SecureChannel, HANDSHAKE_WIRE_BYTES,
};
use super::codec::CodecKind;
use super::message::{Envelope, Party};
use super::roles::Coordinator;
use super::shard::ShardedCoordinator;
use super::stats::{ListenerMetrics, ListenerStats};
use super::transport::TransportStats;
use super::wire::{
    read_frame_lazy, read_frame_limited, write_frame_limited, LazyMsg, WireMsg, MAX_FRAME_BYTES,
};
use crate::error::ProtocolError;
use crate::selector::ClientId;

/// Default per-read timeout on protocol sockets. Long enough for a 2048-bit
/// registration epoch on a loaded machine, short enough that a wedged peer
/// cannot hang a driver forever.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Socket knobs for the client-side connector, builder-style.
///
/// Defaults: [`DEFAULT_READ_TIMEOUT`] (30 s) per read, the global
/// [`MAX_FRAME_BYTES`] (64 MiB) frame ceiling in both directions, and the
/// compatibility [`CodecKind::Json`] payload codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Per-read socket timeout (applies to every read of a reply frame).
    pub read_timeout: Duration,
    /// Largest frame payload accepted *or produced* on this socket.
    pub max_frame_bytes: usize,
    /// Payload codec requests are framed in (replies negotiate per frame).
    pub codec: CodecKind,
    /// Whether to run the authenticated channel handshake after connecting
    /// and seal every frame (default: [`ChannelPolicy::Plaintext`]).
    pub channel: ChannelPolicy,
    /// Static-secret bytes of this endpoint's long-term channel identity.
    /// `None` generates a fresh identity per connect — fine for anonymous
    /// clients, but a reconnecting client that wants its cohort slot back
    /// must present the *same* identity, so persistent clients set this.
    pub identity: Option<[u8; 32]>,
    /// Pinned server public identity: the handshake refuses any server
    /// whose static key differs. `None` trusts first use.
    pub expected_server: Option<[u8; 32]>,
    /// Total connect (+ handshake) attempts, ≥ 1. With the default of 1 a
    /// failure surfaces raw; with more, transient failures are retried
    /// under bounded exponential backoff and exhaustion surfaces
    /// [`ProtocolError::RetriesExhausted`].
    pub connect_attempts: usize,
    /// Base backoff delay between attempts (attempt `i` waits
    /// `retry_base · 2^i` plus jitter).
    pub retry_base: Duration,
    /// Seed for the deterministic backoff jitter.
    pub retry_seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            read_timeout: DEFAULT_READ_TIMEOUT,
            max_frame_bytes: MAX_FRAME_BYTES,
            codec: CodecKind::Json,
            channel: ChannelPolicy::Plaintext,
            identity: None,
            expected_server: None,
            connect_attempts: 1,
            retry_base: Duration::from_millis(25),
            retry_seed: 0,
        }
    }
}

impl TcpConfig {
    /// Replaces the per-read timeout.
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Replaces the frame-payload ceiling (both directions).
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Replaces the request payload codec.
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Replaces the channel policy.
    pub fn with_channel(mut self, channel: ChannelPolicy) -> Self {
        self.channel = channel;
        self
    }

    /// Installs a deterministic long-term identity derived from `seed`
    /// (what tests and simulations use so reconnects present the same key).
    pub fn with_identity_seed(mut self, seed: u64) -> Self {
        self.identity = Some(secret_bytes_from_seed(seed));
        self
    }

    /// Installs explicit identity static-secret bytes.
    pub fn with_identity_bytes(mut self, bytes: [u8; 32]) -> Self {
        self.identity = Some(bytes);
        self
    }

    /// Pins the server's public identity.
    pub fn with_expected_server(mut self, public: [u8; 32]) -> Self {
        self.expected_server = Some(public);
        self
    }

    /// Enables bounded-backoff retries: `attempts` total tries with
    /// `retry_base` initial delay.
    pub fn with_retries(mut self, attempts: usize, retry_base: Duration) -> Self {
        self.connect_attempts = attempts.max(1);
        self.retry_base = retry_base;
        self
    }

    /// Replaces the backoff jitter seed.
    pub fn with_retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }
}

/// Socket knobs for the listener, builder-style.
///
/// Defaults: [`DEFAULT_READ_TIMEOUT`] (30 s) once a frame has started and
/// the global [`MAX_FRAME_BYTES`] (64 MiB) ceiling on accepted payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListenerConfig {
    /// Mid-frame read timeout (a peer that stalls inside a frame is cut).
    pub read_timeout: Duration,
    /// Retained for API compatibility: idle connections used to wake every
    /// `idle_poll` to check the stop flag. They now park on a blocking read
    /// (zero CPU while idle) and are woken by socket shutdown, so this knob
    /// no longer affects serving.
    pub idle_poll: Duration,
    /// Largest frame payload a connection will accept.
    pub max_frame_bytes: usize,
    /// Whether connections must run the authenticated channel handshake
    /// before any protocol frame (default: [`ChannelPolicy::Plaintext`]).
    /// Under `Required`, plaintext protocol frames are refused as downgrade
    /// attempts at every phase of the connection.
    pub channel: ChannelPolicy,
    /// Static-secret bytes of the listener's long-term identity. `None`
    /// with a `Required` policy generates a fresh identity at spawn (fine
    /// for tests; deployments pin a stable one so clients can pin it back).
    pub identity: Option<[u8; 32]>,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            read_timeout: DEFAULT_READ_TIMEOUT,
            idle_poll: IDLE_POLL,
            max_frame_bytes: MAX_FRAME_BYTES,
            channel: ChannelPolicy::Plaintext,
            identity: None,
        }
    }
}

impl ListenerConfig {
    /// Replaces the mid-frame read timeout.
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Replaces the idle stop-flag poll period.
    pub fn with_idle_poll(mut self, idle_poll: Duration) -> Self {
        self.idle_poll = idle_poll;
        self
    }

    /// Replaces the frame-payload ceiling.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Replaces the channel policy.
    pub fn with_channel(mut self, channel: ChannelPolicy) -> Self {
        self.channel = channel;
        self
    }

    /// Installs a deterministic listener identity derived from `seed`.
    pub fn with_identity_seed(mut self, seed: u64) -> Self {
        self.identity = Some(secret_bytes_from_seed(seed));
        self
    }

    /// Installs explicit identity static-secret bytes.
    pub fn with_identity_bytes(mut self, bytes: [u8; 32]) -> Self {
        self.identity = Some(bytes);
        self
    }
}

/// Real bytes and frames observed on one socket (header + payload, both
/// directions). This is what a deployment actually pays on the wire —
/// framing and payload encoding included — as opposed to the canonical
/// ciphertext accounting of [`TransportStats`], which prices messages at
/// their fixed-width transport model for like-for-like comparison with the
/// paper. Under the `DBH2` binary codec the two converge to within a few
/// percent; under `DBH1` JSON the wire pays ~2.5× the canonical bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Frames written to the socket.
    pub frames_sent: usize,
    /// Frames read from the socket.
    pub frames_received: usize,
    /// Bytes written (headers + payloads).
    pub bytes_sent: usize,
    /// Bytes read (headers + payloads).
    pub bytes_received: usize,
    /// Bytes the channel handshake(s) put on the wire, both directions.
    /// Metered apart from the frame counters so the protocol ledger stays
    /// bit-identical with the channel on or off.
    pub handshake_bytes: usize,
    /// Extra bytes sealing added on top of the inner plaintext frames
    /// ([`SEALED_FRAME_OVERHEAD`](super::channel::SEALED_FRAME_OVERHEAD)
    /// per frame, both directions). Same separation rationale as
    /// `handshake_bytes`.
    pub sealed_overhead_bytes: usize,
    /// Successful [`TcpTransport::reconnect`] cycles on this connector.
    pub reconnects: usize,
}

impl WireStats {
    /// Total *protocol* bytes that crossed the socket in either direction —
    /// inner frame bytes only, by design: this feeds the FL ledger's
    /// communication accounting, which must not move when the channel turns
    /// on. The channel's own cost is [`WireStats::channel_overhead_bytes`].
    pub fn total_bytes(&self) -> usize {
        self.bytes_sent + self.bytes_received
    }

    /// Bytes the authenticated channel itself cost: handshakes plus
    /// per-frame sealing overhead.
    pub fn channel_overhead_bytes(&self) -> usize {
        self.handshake_bytes + self.sealed_overhead_bytes
    }
}

fn io_error(context: &'static str, e: std::io::Error) -> ProtocolError {
    ProtocolError::Io {
        context,
        detail: e.to_string(),
    }
}

/// The client-side connector: carries server-bound protocol messages over a
/// framed TCP stream to a [`CoordinatorListener`] and hands the coordinator's
/// replies back to the driver.
///
/// Implements [`Coordinator`], so it drops into
/// [`run_registration_with`](super::driver::run_registration_with) /
/// [`run_try`](super::driver::run_try) /
/// [`pump`](super::driver::pump) exactly where a local server would go.
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    stats: TransportStats,
    wire: WireStats,
    codec: CodecKind,
    max_frame_bytes: usize,
    /// The established AEAD session, when the config's policy is
    /// [`ChannelPolicy::Required`]; `None` means bare plaintext frames.
    channel: Option<SecureChannel>,
    /// Remembered so [`reconnect`](Self::reconnect) can redial and re-run
    /// the handshake with the same knobs and identity.
    addr: SocketAddr,
    config: TcpConfig,
}

impl TcpTransport {
    /// Connects to a coordinator endpoint with the [`TcpConfig`] defaults:
    /// [`DEFAULT_READ_TIMEOUT`], [`MAX_FRAME_BYTES`], and the compatibility
    /// [`CodecKind::Json`] (`DBH1`) payload codec.
    pub fn connect(addr: SocketAddr) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(addr, TcpConfig::default())
    }

    /// Connects with an explicit payload codec (the listener negotiates from
    /// the frame magic, so either side of an upgrade can move first).
    pub fn connect_with_codec(addr: SocketAddr, codec: CodecKind) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(addr, TcpConfig::default().with_codec(codec))
    }

    /// Connects with an explicit read timeout (tests use short ones so a
    /// silent peer fails fast instead of stalling the suite) and the `DBH1`
    /// codec.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        read_timeout: Duration,
    ) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(
            addr,
            TcpConfig::default().with_read_timeout(read_timeout),
        )
    }

    /// Connects with an explicit read timeout and payload codec.
    pub fn connect_with(
        addr: SocketAddr,
        read_timeout: Duration,
        codec: CodecKind,
    ) -> Result<Self, ProtocolError> {
        TcpTransport::connect_with_config(
            addr,
            TcpConfig::default()
                .with_read_timeout(read_timeout)
                .with_codec(codec),
        )
    }

    /// Connects with every socket knob spelled out in a [`TcpConfig`].
    ///
    /// With `connect_attempts > 1`, *transient* failures (socket errors,
    /// disconnects, truncated handshakes — a coordinator that is still
    /// binding its port or restarting) are retried under bounded
    /// exponential backoff with deterministic jitter; exhaustion surfaces
    /// [`ProtocolError::RetriesExhausted`]. Deterministic refusals —
    /// authentication failures, a wrong pinned server key, downgrades —
    /// are *never* retried: repeating them cannot help and would hammer a
    /// peer that already said no.
    pub fn connect_with_config(addr: SocketAddr, config: TcpConfig) -> Result<Self, ProtocolError> {
        let attempts = config.connect_attempts.max(1);
        let mut schedule = RetrySchedule::new(config.retry_base, config.retry_seed);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(schedule.delay(attempt as u32 - 1));
            }
            match Self::connect_once(addr, &config) {
                Ok(transport) => return Ok(transport),
                Err(
                    e @ (ProtocolError::Io { .. }
                    | ProtocolError::Disconnected
                    | ProtocolError::TruncatedFrame { .. }),
                ) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        if attempts == 1 {
            Err(last.expect("one failed attempt recorded"))
        } else {
            Err(ProtocolError::RetriesExhausted { attempts })
        }
    }

    /// One dial + (policy permitting) handshake.
    fn connect_once(addr: SocketAddr, config: &TcpConfig) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_error("connect", e))?;
        stream
            .set_read_timeout(Some(config.read_timeout))
            .map_err(|e| io_error("configure socket", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| io_error("configure socket", e))?;
        let mut transport = TcpTransport {
            reader: BufReader::new(stream),
            stats: TransportStats::default(),
            wire: WireStats::default(),
            codec: config.codec,
            max_frame_bytes: config.max_frame_bytes,
            channel: None,
            addr,
            config: *config,
        };
        if config.channel.is_required() {
            let identity = match config.identity {
                Some(bytes) => NodeIdentity::from_secret_bytes(bytes),
                None => NodeIdentity::generate(),
            };
            // The handshake reads the raw stream (nothing is buffered yet:
            // the server cannot speak before M1).
            let channel = client_handshake(
                transport.reader.get_mut(),
                &identity,
                config.expected_server,
                config.max_frame_bytes,
            )?;
            transport.wire.handshake_bytes += HANDSHAKE_WIRE_BYTES;
            transport.channel = Some(channel);
        }
        Ok(transport)
    }

    /// Tears the current socket down and dials + handshakes afresh with the
    /// connection's original config (same identity, same pinned server, same
    /// retry schedule). Protocol and wire counters carry over — a reconnect
    /// is the *same logical session* recovering, not a new connector — and
    /// the cycle is counted in [`WireStats::reconnects`].
    ///
    /// The server keys cohort state off the authenticated identity, so a
    /// reconnecting registered client resumes idempotently instead of
    /// burning a second cohort slot; see
    /// [`deliver_idempotent`](Self::deliver_idempotent).
    pub fn reconnect(&mut self) -> Result<(), ProtocolError> {
        let _ = self.reader.get_ref().shutdown(Shutdown::Both);
        let fresh = Self::connect_with_config(self.addr, self.config)?;
        self.reader = fresh.reader;
        self.channel = fresh.channel;
        self.wire.handshake_bytes += fresh.wire.handshake_bytes;
        self.wire.reconnects += 1;
        Ok(())
    }

    /// [`deliver`](Coordinator::deliver), but a remote duplicate-contribution
    /// refusal counts as success with no replies: the resume path for a
    /// client that reconnected without knowing whether its upload landed.
    /// Safe because the coordinator's fold rejects duplicates *before*
    /// folding — replaying a landed registry cannot double-count it.
    pub fn deliver_idempotent(
        &mut self,
        envelope: Envelope,
    ) -> Result<Vec<Envelope>, ProtocolError> {
        match self.deliver(envelope) {
            Err(ProtocolError::Remote { detail })
                if detail.contains("already uploaded its registry")
                    || detail.contains("already contributed to try") =>
            {
                Ok(Vec::new())
            }
            other => other,
        }
    }

    /// The payload codec this connector frames requests in.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Canonical per-kind accounting of every message this connector carried
    /// (requests out and reply envelopes in), in the same units as
    /// [`InMemoryTransport::stats`](super::transport::InMemoryTransport::stats).
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Real frame traffic on the socket (headers + encoded payloads).
    pub fn wire_stats(&self) -> &WireStats {
        &self.wire
    }

    /// The server's authenticated public identity, once a `Required`
    /// channel is established.
    pub fn peer_identity(&self) -> Option<[u8; 32]> {
        self.channel.as_ref().map(|c| c.peer_identity())
    }

    /// Sends one wire message and reads the peer's single reply frame —
    /// bare on a plaintext connection, sealed end-to-end on a channel.
    fn request(&mut self, msg: &WireMsg) -> Result<WireMsg, ProtocolError> {
        if self.channel.is_none() {
            let written =
                write_frame_limited(self.reader.get_mut(), msg, self.codec, self.max_frame_bytes)?;
            self.wire.frames_sent += 1;
            self.wire.bytes_sent += written;
            let (reply, read, _) = read_frame_limited(&mut self.reader, self.max_frame_bytes)?;
            self.wire.frames_received += 1;
            self.wire.bytes_received += read;
            return Ok(reply);
        }
        // Encode the inner plaintext frame, seal it, put one DBHE frame on
        // the wire. The ledger-facing counters meter the *inner* bytes; the
        // seal's cost goes to the channel-overhead counters.
        let mut inner = Vec::new();
        let inner_len = write_frame_limited(&mut inner, msg, self.codec, self.max_frame_bytes)?;
        let sealed = self
            .channel
            .as_mut()
            .expect("channel checked above")
            .seal_frame(&inner);
        {
            use std::io::Write as _;
            let stream = self.reader.get_mut();
            stream
                .write_all(&sealed)
                .map_err(|e| io_error("write sealed frame", e))?;
            stream
                .flush()
                .map_err(|e| io_error("write sealed frame", e))?;
        }
        self.wire.frames_sent += 1;
        self.wire.bytes_sent += inner_len;
        self.wire.sealed_overhead_bytes += sealed.len() - inner_len;

        let (frame, wire_read) = read_channel_frame(&mut self.reader, self.max_frame_bytes)?;
        let payload = match frame {
            ChannelFrame::Sealed(payload) => payload,
            ChannelFrame::Plaintext { frame, .. } => {
                return Err(ProtocolError::DowngradeRefused {
                    magic: frame[..4].try_into().expect("4-byte magic"),
                })
            }
            ChannelFrame::Handshake(_) => {
                return Err(ProtocolError::AuthFailure {
                    detail: "handshake frame after the channel was established".to_string(),
                })
            }
        };
        let opened = self
            .channel
            .as_mut()
            .expect("channel checked above")
            .open_payload(&payload)?;
        let (reply, read, _) = read_frame_limited(&mut &opened[..], self.max_frame_bytes)?;
        self.wire.frames_received += 1;
        self.wire.bytes_received += read;
        self.wire.sealed_overhead_bytes += wire_read - read;
        Ok(reply)
    }

    /// Expects the coordinator's reply batch; unwraps remote errors.
    fn request_batch(&mut self, msg: &WireMsg) -> Result<Vec<Envelope>, ProtocolError> {
        match self.request(msg)? {
            WireMsg::Batch { envelopes } => {
                for e in &envelopes {
                    self.stats.charge(&e.msg);
                }
                Ok(envelopes)
            }
            WireMsg::Error { detail } => Err(ProtocolError::Remote { detail }),
            other => Err(ProtocolError::MalformedFrame {
                detail: format!("expected a batch or error reply, got {other:?}"),
            }),
        }
    }

    /// Expects a bare acknowledgement; unwraps remote errors.
    fn request_ack(&mut self, msg: &WireMsg) -> Result<(), ProtocolError> {
        match self.request(msg)? {
            WireMsg::Ack => Ok(()),
            WireMsg::Error { detail } => Err(ProtocolError::Remote { detail }),
            other => Err(ProtocolError::MalformedFrame {
                detail: format!("expected an ack or error reply, got {other:?}"),
            }),
        }
    }

    /// Ends the session politely; the listener closes the connection.
    pub fn shutdown(mut self) -> Result<(), ProtocolError> {
        match self.channel.as_mut() {
            None => {
                let written = write_frame_limited(
                    self.reader.get_mut(),
                    &WireMsg::Shutdown,
                    self.codec,
                    self.max_frame_bytes,
                )?;
                self.wire.frames_sent += 1;
                self.wire.bytes_sent += written;
            }
            Some(channel) => {
                use std::io::Write as _;
                let mut inner = Vec::new();
                let inner_len = write_frame_limited(
                    &mut inner,
                    &WireMsg::Shutdown,
                    self.codec,
                    self.max_frame_bytes,
                )?;
                let sealed = channel.seal_frame(&inner);
                let stream = self.reader.get_mut();
                stream
                    .write_all(&sealed)
                    .map_err(|e| io_error("write sealed frame", e))?;
                stream
                    .flush()
                    .map_err(|e| io_error("write sealed frame", e))?;
                self.wire.frames_sent += 1;
                self.wire.bytes_sent += inner_len;
                self.wire.sealed_overhead_bytes += sealed.len() - inner_len;
            }
        }
        Ok(())
    }
}

impl Coordinator for TcpTransport {
    fn deliver(&mut self, envelope: Envelope) -> Result<Vec<Envelope>, ProtocolError> {
        self.stats.charge(&envelope.msg);
        self.request_batch(&WireMsg::Envelope { envelope })
    }

    fn announce_try(
        &mut self,
        try_index: usize,
        participants: &[ClientId],
    ) -> Result<(), ProtocolError> {
        self.request_ack(&WireMsg::AnnounceTry {
            try_index,
            participants: participants.to_vec(),
        })
    }

    fn begin_epoch(
        &mut self,
        epoch: u64,
        expected_registrations: usize,
    ) -> Result<(), ProtocolError> {
        self.request_ack(&WireMsg::BeginEpoch {
            epoch,
            expected_registrations,
        })
    }

    fn close_registration(&mut self) -> Result<Vec<Envelope>, ProtocolError> {
        self.request_batch(&WireMsg::CloseRegistration)
    }

    fn close_try(&mut self, try_index: usize) -> Result<Vec<Envelope>, ProtocolError> {
        self.request_batch(&WireMsg::CloseTry { try_index })
    }
}

/// A request forwarded from a connection thread to the router thread.
/// `DBH2` registry uploads travel as [`LazyMsg::DeferredRegistry`] — raw
/// payload bytes the router folds through a borrowed view instead of
/// materialising per-element ciphertexts on the connection thread.
struct RouterRequest {
    msg: LazyMsg,
    /// The authenticated channel identity of the connection this request
    /// arrived on, when it ran the handshake. The router binds each
    /// `ClientId` to the first identity that speaks for it and refuses a
    /// different identity reusing the same id (session hijack).
    identity: Option<[u8; 32]>,
    reply: mpsc::Sender<WireMsg>,
}

/// The `ClientId` a request speaks *as*, if any — what the router's
/// identity-binding check keys on. Public so the event-driven listener in
/// `dubhe-net` can enforce the identical session-hijack refusal.
pub fn claimed_client(msg: &LazyMsg) -> Option<ClientId> {
    match msg {
        LazyMsg::DeferredRegistry(frame) => Some(frame.client()),
        LazyMsg::Eager(WireMsg::Envelope { envelope }) => match envelope.from {
            Party::Client(id) => Some(id),
            _ => None,
        },
        _ => None,
    }
}

/// The multi-threaded coordinator listener.
///
/// Topology: one accept thread, one I/O thread per connection, one router
/// thread owning the [`ShardedCoordinator`]. Connection threads never touch
/// coordinator state — they forward each decoded [`WireMsg`] over an mpsc
/// channel and relay the router's reply — so the whole server is mutex-free:
/// exclusivity comes from ownership, ordering from channel FIFO, and shard
/// parallelism from rayon inside the fold itself.
#[derive(Debug)]
pub struct CoordinatorListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    router_thread: Option<JoinHandle<ShardedCoordinator>>,
    metrics: Arc<ListenerMetrics>,
    /// Clones of every live connection's stream, keyed by connection id.
    /// Idle connections park on a blocking read; shutting these sockets
    /// down is what wakes them when the listener stops.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    /// The listener's public channel identity, when it requires the
    /// authenticated channel — what clients pin via
    /// [`TcpConfig::with_expected_server`].
    public_identity: Option<[u8; 32]>,
}

impl CoordinatorListener {
    /// Binds an ephemeral loopback port and starts serving `coordinator`
    /// with the [`ListenerConfig`] defaults.
    pub fn spawn(coordinator: ShardedCoordinator) -> Result<Self, ProtocolError> {
        CoordinatorListener::spawn_with(coordinator, ListenerConfig::default())
    }

    /// [`spawn`](Self::spawn) with every socket knob spelled out.
    pub fn spawn_with(
        coordinator: ShardedCoordinator,
        config: ListenerConfig,
    ) -> Result<Self, ProtocolError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_error("bind", e))?;
        let addr = listener.local_addr().map_err(|e| io_error("bind", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ListenerMetrics::new());
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        // Resolve the channel identity once at spawn so every connection
        // handshakes as the same server (and so clients can pin it).
        let identity = config.channel.is_required().then(|| match config.identity {
            Some(bytes) => NodeIdentity::from_secret_bytes(bytes),
            None => NodeIdentity::generate(),
        });
        let public_identity = identity.as_ref().map(|id| id.public_bytes());

        // The accept thread owns the only long-lived Sender; when it exits
        // (joining every connection thread first) the channel hangs up and
        // the router ends with it — no explicit stop message needed.
        let (router_tx, router_rx) = mpsc::channel::<RouterRequest>();
        let router_thread = std::thread::spawn(move || route(coordinator, router_rx));

        let accept_stop = Arc::clone(&stop);
        let accept_metrics = Arc::clone(&metrics);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            let mut connections: Vec<JoinHandle<()>> = Vec::new();
            // Finished-thread reaping is amortized: sweeping on every accept
            // is O(live + dead) per connection — quadratic over a churny
            // session — so sweep only when the list doubles past the last
            // high-water mark, making the total reaping work O(n log n).
            let mut reap_watermark: usize = 64;
            let mut next_id: u64 = 0;
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                // A failed accept is one connection's problem, never the
                // listener's: log it and keep serving everyone else.
                let stream = match stream {
                    Ok(stream) => stream,
                    Err(e) => {
                        eprintln!("coordinator listener: accept failed, continuing: {e}");
                        continue;
                    }
                };
                // Register a clone so shutdown can wake the parked read. A
                // connection we cannot register would be unwakeable — refuse
                // it rather than risk a hung shutdown.
                let clone = match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(e) => {
                        eprintln!("coordinator listener: clone failed, refusing connection: {e}");
                        continue;
                    }
                };
                let conn_id = next_id;
                next_id += 1;
                accept_conns
                    .lock()
                    .expect("connection registry poisoned")
                    .insert(conn_id, clone);
                if connections.len() >= reap_watermark {
                    connections.retain(|c| !c.is_finished());
                    reap_watermark = (connections.len() * 2).max(64);
                }
                accept_metrics.connection_opened();
                let router = router_tx.clone();
                let conn_stop = Arc::clone(&accept_stop);
                let conn_metrics = Arc::clone(&accept_metrics);
                let conn_registry = Arc::clone(&accept_conns);
                let conn_identity = identity.clone();
                connections.push(std::thread::spawn(move || {
                    serve_connection(
                        stream,
                        router,
                        conn_stop,
                        config,
                        conn_identity,
                        &conn_metrics,
                    );
                    conn_registry
                        .lock()
                        .expect("connection registry poisoned")
                        .remove(&conn_id);
                    conn_metrics.connection_closed();
                }));
            }
            for c in connections {
                let _ = c.join();
            }
        });

        Ok(CoordinatorListener {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            router_thread: Some(router_thread),
            metrics,
            conns,
            public_identity,
        })
    }

    /// The loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The listener's public channel identity (present iff the config's
    /// policy is [`ChannelPolicy::Required`]); clients pin it via
    /// [`TcpConfig::with_expected_server`].
    pub fn public_identity(&self) -> Option<[u8; 32]> {
        self.public_identity
    }

    /// A point-in-time snapshot of everything the listener observed:
    /// connection lifecycle, per-direction frame/byte traffic, decode
    /// failures and the request-latency distribution. Same shape as the
    /// reactor listener's stats, for like-for-like benching.
    pub fn stats(&self) -> ListenerStats {
        self.metrics.snapshot()
    }

    /// Stops accepting, drains the threads and returns the final coordinator
    /// state (e.g. to inspect `messages_received` after a session).
    pub fn shutdown(mut self) -> Option<ShardedCoordinator> {
        self.stop_threads()
    }

    fn stop_threads(&mut self) -> Option<ShardedCoordinator> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Wake every parked connection read: shutting the socket down makes
        // the blocking read return 0 and the thread exit. (New connections
        // cannot race in: the accept loop has already seen the stop flag.)
        for stream in self
            .conns
            .lock()
            .expect("connection registry poisoned")
            .values()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // With the accept thread (and every connection it joined) gone, all
        // Sender clones are dropped and the router drains to completion.
        self.router_thread.take().and_then(|t| t.join().ok())
    }
}

impl Drop for CoordinatorListener {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            let _ = self.stop_threads();
        }
    }
}

/// The router thread: the sole owner of the coordinator state.
fn route(
    mut coordinator: ShardedCoordinator,
    rx: mpsc::Receiver<RouterRequest>,
) -> ShardedCoordinator {
    let batch_or_error = |r: Result<Vec<Envelope>, ProtocolError>| match r {
        Ok(envelopes) => WireMsg::Batch { envelopes },
        Err(e) => WireMsg::Error {
            detail: e.to_string(),
        },
    };
    // Session-hijack refusal: the first authenticated identity to speak as a
    // ClientId owns that id for the listener's lifetime. A different channel
    // identity reusing the id gets a typed refusal before the coordinator
    // ever sees the message. (Reconnects present the same identity, so the
    // idempotent-resume path sails through this check.)
    let mut bindings: HashMap<ClientId, [u8; 32]> = HashMap::new();
    while let Ok(RouterRequest {
        msg,
        identity,
        reply,
    }) = rx.recv()
    {
        if let (Some(id), Some(who)) = (claimed_client(&msg), identity) {
            match bindings.get(&id) {
                Some(bound) if *bound != who => {
                    let _ = reply.send(WireMsg::Error {
                        detail: ProtocolError::AuthFailure {
                            detail: format!(
                                "client {id} is bound to a different channel identity \
                                 (session hijack refused)"
                            ),
                        }
                        .to_string(),
                    });
                    continue;
                }
                _ => {
                    bindings.insert(id, who);
                }
            }
        }
        let msg = match msg {
            // A deferred registry folds straight out of its frame bytes —
            // the router is where the borrowed view finally gets decoded
            // (and where a malformed ciphertext block earns its typed
            // error reply).
            LazyMsg::DeferredRegistry(frame) => {
                let response = batch_or_error(coordinator.deliver_registry_frame(frame));
                let _ = reply.send(response);
                continue;
            }
            LazyMsg::Eager(msg) => msg,
        };
        let response = match msg {
            // Epoch checks live in `deliver`, not `handle`: a stale or
            // future-epoch frame from a remote peer earns a typed error
            // reply, exactly as it would in-process.
            WireMsg::Envelope { envelope } => batch_or_error(coordinator.deliver(envelope)),
            WireMsg::AnnounceTry {
                try_index,
                participants,
            } => {
                coordinator.announce_try(try_index, &participants);
                WireMsg::Ack
            }
            WireMsg::BeginEpoch {
                epoch,
                expected_registrations,
            } => {
                coordinator.begin_epoch(epoch, expected_registrations);
                WireMsg::Ack
            }
            WireMsg::CloseRegistration => batch_or_error(coordinator.close_registration()),
            WireMsg::CloseTry { try_index } => batch_or_error(coordinator.close_try(try_index)),
            other => WireMsg::Error {
                detail: format!("coordinator cannot serve {other:?}"),
            },
        };
        let _ = reply.send(response);
    }
    coordinator
}

/// The historical idle-poll period; kept for [`ListenerConfig`] API
/// compatibility (idle connections now park on a blocking read instead of
/// waking at this interval).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Seals a typed error into a `DBHE` frame and writes it best-effort (the
/// connection is about to close either way; the peer deserves to know why).
fn send_sealed_error<W: std::io::Write>(
    channel: &mut SecureChannel,
    w: &mut W,
    err: &ProtocolError,
    codec: CodecKind,
    max_frame_bytes: usize,
) {
    let mut inner = Vec::new();
    if write_frame_limited(
        &mut inner,
        &WireMsg::Error {
            detail: err.to_string(),
        },
        codec,
        max_frame_bytes,
    )
    .is_ok()
    {
        let sealed = channel.seal_frame(&inner);
        let _ = w.write_all(&sealed);
        let _ = w.flush();
    }
}

/// One connection's I/O loop: decode a frame, forward it to the router,
/// relay the reply. Exits on shutdown frames, disconnects, or anything
/// undecodable (after telling the peer what was wrong, best-effort).
///
/// Under a [`ChannelPolicy::Required`] config the loop is preceded by the
/// pre-protocol handshake phase: nothing but `DBHS` frames is accepted
/// until mutual authentication completes, after which nothing but `DBHE`
/// sealed frames is — plaintext protocol frames are refused as downgrade
/// attempts at every phase, and the per-connection coordinator state is
/// keyed off the authenticated identity.
///
/// The payload codec is negotiated per connection from the frame magic:
/// every reply is framed in the codec the request arrived in, so one
/// listener serves `DBH1` and `DBH2` peers concurrently and a peer may even
/// switch codecs mid-session. (Negotiation selects a *format*, nothing
/// more — authentication is the handshake's job; see
/// `docs/THREAT_MODEL.md`.)
///
/// Idleness *between* frames is healthy — a client may train for minutes
/// between protocol rounds — so the wait for a frame's first byte is a plain
/// blocking read with no timeout: zero CPU parked, woken either by the peer's
/// next byte or by the listener shutting this socket down at stop. Once a
/// frame has started, [`ListenerConfig::read_timeout`] bounds the rest of it
/// so a peer that stalls mid-frame cannot pin the thread.
fn serve_connection(
    stream: TcpStream,
    router: mpsc::Sender<RouterRequest>,
    stop: Arc<AtomicBool>,
    config: ListenerConfig,
    identity: Option<NodeIdentity>,
    metrics: &ListenerMetrics,
) {
    use std::io::{Read as _, Write as _};
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    // Pre-protocol phase: under a `Required` policy the connection speaks
    // nothing but DBHS until mutual authentication completes. The whole
    // prelude runs under the read timeout — a peer that connects and then
    // trickles or stalls (handshake slow-loris) is cut, never parked — and
    // plaintext protocol frames here are refused as downgrade attempts.
    let mut session: Option<SecureChannel> = None;
    if config.channel.is_required() {
        let identity = identity.expect("required channel resolves an identity at spawn");
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        match server_handshake_blocking(&mut stream, identity, config.max_frame_bytes) {
            Ok(channel) => {
                metrics.handshake_completed();
                session = Some(channel);
            }
            Err(e) => {
                metrics.handshake_failed();
                // Refusals go back in the attempted plaintext codec when
                // there was one; everything else gets lowest-common DBH1.
                let reply_codec = match &e {
                    ProtocolError::DowngradeRefused { magic } => {
                        metrics.downgrade_refused();
                        CodecKind::from_magic(*magic).unwrap_or(CodecKind::Json)
                    }
                    _ => CodecKind::Json,
                };
                let _ = write_frame_limited(
                    &mut stream,
                    &WireMsg::Error {
                        detail: e.to_string(),
                    },
                    reply_codec,
                    config.max_frame_bytes,
                );
                return;
            }
        }
    }
    let peer_identity = session.as_ref().map(|s| s.peer_identity());
    let mut reader = BufReader::new(stream);
    // Until the first frame decodes, error replies default to DBH1 (a peer
    // whose magic we could not even parse gets the lowest common format).
    let mut codec = CodecKind::Json;
    loop {
        // A connection spawned while the listener was stopping may have
        // missed the shutdown sweep of the socket registry; this check
        // pairs with it so neither ordering can park a thread forever.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Park until the next frame's first byte (or hangup / stop wakeup).
        let _ = reader.get_ref().set_read_timeout(None);
        let mut first = [0u8; 1];
        let got = loop {
            match reader.read(&mut first) {
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        };
        if got == 0 {
            return; // clean close between frames
        }
        // Frame in flight: the full read timeout applies from here on.
        let _ = reader.get_ref().set_read_timeout(Some(config.read_timeout));
        let (msg, frame_bytes) = if let Some(channel) = session.as_mut() {
            // Sealed phase: only DBHE frames are legal traffic. Every
            // refusal is a typed error sealed back to the peer (our send
            // direction survives a receive failure), then hang up.
            let (frame, wire_bytes) = match read_channel_frame(
                &mut (&first[..]).chain(&mut reader),
                config.max_frame_bytes,
            ) {
                Ok(ok) => ok,
                Err(ProtocolError::Disconnected) => return,
                Err(e) => {
                    match e {
                        ProtocolError::TruncatedFrame { .. } | ProtocolError::Io { .. } => {
                            metrics.truncated_frame()
                        }
                        _ => metrics.decode_error(),
                    }
                    send_sealed_error(channel, reader.get_mut(), &e, codec, config.max_frame_bytes);
                    return;
                }
            };
            let payload = match frame {
                ChannelFrame::Sealed(payload) => payload,
                ChannelFrame::Plaintext { frame, .. } => {
                    // A plaintext protocol frame mid-session is a downgrade
                    // attempt (or an unauthenticated splice); refused.
                    metrics.downgrade_refused();
                    let e = ProtocolError::DowngradeRefused {
                        magic: frame[..4].try_into().expect("4-byte magic"),
                    };
                    send_sealed_error(channel, reader.get_mut(), &e, codec, config.max_frame_bytes);
                    return;
                }
                ChannelFrame::Handshake(_) => {
                    metrics.decode_error();
                    let e = ProtocolError::AuthFailure {
                        detail: "handshake frame after the channel was established".to_string(),
                    };
                    send_sealed_error(channel, reader.get_mut(), &e, codec, config.max_frame_bytes);
                    return;
                }
            };
            let inner = match channel.open_payload(&payload) {
                Ok(inner) => inner,
                Err(e) => {
                    // Tampered ciphertext or replayed/reordered sequence:
                    // the receive direction is dead, the connection with it.
                    metrics.aead_rejection();
                    send_sealed_error(channel, reader.get_mut(), &e, codec, config.max_frame_bytes);
                    return;
                }
            };
            match read_frame_lazy(&mut &inner[..], config.max_frame_bytes) {
                Ok((LazyMsg::Eager(WireMsg::Shutdown), _, _)) => {
                    metrics.frame_received(wire_bytes);
                    return;
                }
                Ok((msg, _, frame_codec)) => {
                    codec = frame_codec;
                    (msg, wire_bytes)
                }
                Err(e) => {
                    metrics.decode_error();
                    send_sealed_error(channel, reader.get_mut(), &e, codec, config.max_frame_bytes);
                    return;
                }
            }
        } else {
            match read_frame_lazy(&mut (&first[..]).chain(&mut reader), config.max_frame_bytes) {
                Ok((LazyMsg::Eager(WireMsg::Shutdown), bytes, _)) => {
                    metrics.frame_received(bytes);
                    return;
                }
                Err(ProtocolError::Disconnected) => return,
                Ok((msg, bytes, frame_codec)) => {
                    codec = frame_codec;
                    (msg, bytes)
                }
                Err(e) => {
                    // A malformed/truncated frame poisons the stream (framing is
                    // lost); report and hang up rather than guessing at bytes.
                    match e {
                        ProtocolError::TruncatedFrame { .. } | ProtocolError::Io { .. } => {
                            metrics.truncated_frame()
                        }
                        _ => metrics.decode_error(),
                    }
                    let _ = write_frame_limited(
                        reader.get_mut(),
                        &WireMsg::Error {
                            detail: e.to_string(),
                        },
                        codec,
                        config.max_frame_bytes,
                    );
                    return;
                }
            }
        };
        metrics.frame_received(frame_bytes);
        let started = Instant::now();
        let (reply_tx, reply_rx) = mpsc::channel();
        if router
            .send(RouterRequest {
                msg,
                identity: peer_identity,
                reply: reply_tx,
            })
            .is_err()
        {
            return; // listener shutting down
        }
        let Ok(response) = reply_rx.recv() else {
            return;
        };
        if let Some(channel) = session.as_mut() {
            let mut out = Vec::new();
            if write_frame_limited(&mut out, &response, codec, config.max_frame_bytes).is_err() {
                return;
            }
            let sealed = channel.seal_frame(&out);
            let stream = reader.get_mut();
            match stream.write_all(&sealed).and_then(|_| stream.flush()) {
                Ok(()) => {
                    metrics.frame_sent(sealed.len());
                    metrics.write_queue_depth(sealed.len());
                    metrics.record_latency(started.elapsed());
                }
                Err(_) => return,
            }
        } else {
            match write_frame_limited(reader.get_mut(), &response, codec, config.max_frame_bytes) {
                Ok(written) => {
                    metrics.frame_sent(written);
                    // A thread-per-connection reply is written synchronously, so
                    // the "queue" is exactly the one in-flight reply frame.
                    metrics.write_queue_depth(written);
                    metrics.record_latency(started.elapsed());
                }
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::message::{Party, ProtocolMsg};

    fn verdict(best_try: usize) -> Envelope {
        Envelope {
            from: Party::Agent,
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try,
                distance: 0.1,
            },
        }
    }

    #[test]
    fn listener_spawns_serves_and_shuts_down() {
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 2)).unwrap();
        let addr = listener.addr();
        let mut client = TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
        // A verdict is always accepted and triggers nothing.
        let out = client.deliver(verdict(0)).unwrap();
        assert!(out.is_empty());
        assert_eq!(client.wire_stats().frames_sent, 1);
        assert_eq!(client.wire_stats().frames_received, 1);
        assert!(client.wire_stats().total_bytes() > 0);
        assert_eq!(client.stats().verdicts.messages, 1);
        let stats = listener.stats();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.frames_received, 1);
        assert_eq!(stats.frames_sent, 1);
        assert!(stats.bytes_received > 0 && stats.bytes_sent > 0);
        assert_eq!(stats.latency.count, 1);
        assert!(stats.peak_write_queue > 0);
        client.shutdown().unwrap();
        let coordinator = listener.shutdown().expect("state returned");
        assert_eq!(coordinator.messages_received(), 1);
        assert_eq!(coordinator.last_verdict(), Some((0, 0.1)));
    }

    #[test]
    fn idle_connection_survives_and_shutdown_stays_prompt() {
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
        let mut client =
            TcpTransport::connect_with_timeout(listener.addr(), Duration::from_secs(5)).unwrap();
        // Stay silent for several idle-poll periods, like a client that is
        // busy training between protocol rounds. The server must not treat
        // the quiet as an error and hang up.
        std::thread::sleep(IDLE_POLL * 4);
        client
            .deliver(verdict(2))
            .expect("connection still healthy");
        // Drop the listener while the (idle) connection stays open: shutdown
        // must complete via the stop flag, not wait for a client hangup.
        let started = std::time::Instant::now();
        drop(listener);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "listener shutdown took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn both_codecs_interoperate_against_one_listener() {
        // Frame-magic negotiation: a DBH1 peer and a DBH2 peer drive the
        // same listener concurrently, and each gets replies in its own
        // format (the reply decodes on a connector that only speaks that
        // codec's framing — `request` verifies the round trip).
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 2)).unwrap();
        let addr = listener.addr();
        let mut json_client =
            TcpTransport::connect_with(addr, Duration::from_secs(5), CodecKind::Json).unwrap();
        let mut binary_client =
            TcpTransport::connect_with(addr, Duration::from_secs(5), CodecKind::Binary).unwrap();
        assert_eq!(json_client.codec(), CodecKind::Json);
        assert_eq!(binary_client.codec(), CodecKind::Binary);

        json_client.deliver(verdict(1)).unwrap();
        binary_client.deliver(verdict(2)).unwrap();
        json_client.announce_try(0, &[1, 2]).unwrap();
        binary_client.announce_try(1, &[3]).unwrap();

        // The identical verdict costs fewer wire bytes under DBH2.
        assert!(
            binary_client.wire_stats().bytes_sent < json_client.wire_stats().bytes_sent,
            "binary framing ({}) should undercut JSON ({})",
            binary_client.wire_stats().bytes_sent,
            json_client.wire_stats().bytes_sent
        );

        json_client.shutdown().unwrap();
        binary_client.shutdown().unwrap();
        let coordinator = listener.shutdown().expect("state returned");
        assert_eq!(coordinator.messages_received(), 2);
        assert_eq!(coordinator.last_verdict(), Some((2, 0.1)));
    }

    #[test]
    fn required_channel_serves_sealed_sessions() {
        let listener = CoordinatorListener::spawn_with(
            ShardedCoordinator::new(0, 2),
            ListenerConfig::default()
                .with_channel(ChannelPolicy::Required)
                .with_identity_seed(99),
        )
        .unwrap();
        let server_pub = listener
            .public_identity()
            .expect("required listener has identity");
        let config = TcpConfig::default()
            .with_read_timeout(Duration::from_secs(5))
            .with_channel(ChannelPolicy::Required)
            .with_identity_seed(1)
            .with_expected_server(server_pub);
        let mut client = TcpTransport::connect_with_config(listener.addr(), config).unwrap();
        assert_eq!(client.peer_identity(), Some(server_pub));

        let out = client.deliver(verdict(3)).unwrap();
        assert!(out.is_empty());
        client.announce_try(0, &[1, 2]).unwrap();

        // The seal's cost lives in the overhead counters, not the
        // ledger-facing frame bytes.
        let wire = *client.wire_stats();
        assert_eq!(wire.frames_sent, 2);
        assert_eq!(wire.frames_received, 2);
        assert!(wire.handshake_bytes >= HANDSHAKE_WIRE_BYTES);
        assert_eq!(
            wire.sealed_overhead_bytes,
            4 * super::super::channel::SEALED_FRAME_OVERHEAD
        );

        client.shutdown().unwrap();
        let coordinator = listener.shutdown().expect("state returned");
        assert_eq!(coordinator.messages_received(), 1);
        assert_eq!(coordinator.last_verdict(), Some((3, 0.1)));
    }

    #[test]
    fn sealed_and_plaintext_sessions_meter_identical_protocol_bytes() {
        // The FL ledger charges wire bytes off these counters; turning the
        // channel on must not move them by a single byte.
        let run = |policy: ChannelPolicy| {
            let listener = CoordinatorListener::spawn_with(
                ShardedCoordinator::new(0, 2),
                ListenerConfig::default()
                    .with_channel(policy)
                    .with_identity_seed(7),
            )
            .unwrap();
            let mut config = TcpConfig::default()
                .with_read_timeout(Duration::from_secs(5))
                .with_codec(CodecKind::Binary)
                .with_channel(policy)
                .with_identity_seed(1);
            if let Some(pin) = listener.public_identity() {
                config = config.with_expected_server(pin);
            }
            let mut client = TcpTransport::connect_with_config(listener.addr(), config).unwrap();
            client.deliver(verdict(1)).unwrap();
            client.announce_try(0, &[4, 5, 6]).unwrap();
            let wire = *client.wire_stats();
            client.shutdown().unwrap();
            drop(listener);
            wire
        };
        let sealed = run(ChannelPolicy::Required);
        let plain = run(ChannelPolicy::Plaintext);
        assert_eq!(sealed.frames_sent, plain.frames_sent);
        assert_eq!(sealed.frames_received, plain.frames_received);
        assert_eq!(sealed.bytes_sent, plain.bytes_sent);
        assert_eq!(sealed.bytes_received, plain.bytes_received);
        assert_eq!(sealed.total_bytes(), plain.total_bytes());
        assert_eq!(plain.channel_overhead_bytes(), 0);
        assert!(sealed.channel_overhead_bytes() > 0);
    }

    #[test]
    fn connect_retries_surface_typed_exhaustion() {
        // A port with nothing listening refuses instantly; all attempts are
        // transient failures, so the bounded backoff runs dry.
        let dead_addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let started = Instant::now();
        let err = TcpTransport::connect_with_config(
            dead_addr,
            TcpConfig::default().with_retries(3, Duration::from_millis(5)),
        )
        .unwrap_err();
        assert_eq!(err, ProtocolError::RetriesExhausted { attempts: 3 });
        // Backoff is bounded: 5 + 10 ms (+ jitter < 5 ms each) at most.
        assert!(started.elapsed() < Duration::from_secs(5));

        // A single attempt keeps the raw error for back-compat.
        let err = TcpTransport::connect(dead_addr).unwrap_err();
        assert!(matches!(err, ProtocolError::Io { .. }), "{err}");
    }

    #[test]
    fn session_hijack_is_refused_and_reconnect_resumes() {
        let listener = CoordinatorListener::spawn_with(
            ShardedCoordinator::new(0, 4),
            ListenerConfig::default()
                .with_channel(ChannelPolicy::Required)
                .with_identity_seed(42),
        )
        .unwrap();
        let pin = listener.public_identity().unwrap();
        let config_for = |seed: u64| {
            TcpConfig::default()
                .with_read_timeout(Duration::from_secs(5))
                .with_channel(ChannelPolicy::Required)
                .with_identity_seed(seed)
                .with_expected_server(pin)
        };
        let client_envelope = Envelope {
            from: Party::Client(7),
            to: Party::Server,
            epoch: 0,
            msg: ProtocolMsg::TryVerdict {
                best_try: 0,
                distance: 0.5,
            },
        };

        // Identity A speaks as ClientId 7 and binds it.
        let mut honest = TcpTransport::connect_with_config(listener.addr(), config_for(1)).unwrap();
        honest.deliver(client_envelope.clone()).unwrap();

        // Identity B replaying ClientId 7 is refused with the typed error.
        let mut hijacker =
            TcpTransport::connect_with_config(listener.addr(), config_for(2)).unwrap();
        let err = hijacker.deliver(client_envelope.clone()).unwrap_err();
        match err {
            ProtocolError::Remote { detail } => {
                assert!(detail.contains("session hijack refused"), "{detail}")
            }
            other => panic!("expected remote hijack refusal, got {other}"),
        }

        // The honest identity reconnecting resumes its binding untouched.
        honest.reconnect().unwrap();
        honest.deliver(client_envelope).unwrap();
        assert_eq!(honest.wire_stats().reconnects, 1);

        honest.shutdown().unwrap();
        let stats = listener.stats();
        assert_eq!(stats.handshakes_completed, 3);
        assert_eq!(stats.handshakes_failed, 0);
        drop(listener);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let listener = CoordinatorListener::spawn(ShardedCoordinator::new(0, 1)).unwrap();
        let addr = listener.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client =
                        TcpTransport::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
                    client.deliver(verdict(i)).unwrap();
                    client.shutdown().unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let coordinator = listener.shutdown().expect("state returned");
        assert_eq!(coordinator.messages_received(), 4);
    }
}
