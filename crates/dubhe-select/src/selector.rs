//! The [`ClientSelector`] abstraction and the random-selection baseline.
//!
//! A selector picks the subset `S_t` of clients that participates in round `t`.
//! All three methods the paper evaluates (random, greedy, Dubhe) implement the
//! same trait so the FL simulator and the experiment harness can swap them
//! freely ("pluggable" in the paper's words).

use dubhe_data::{l1_distance, ClassDistribution};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::DubheConfig;
use crate::error::SelectError;

/// Identifier of a (virtual) client: its index in `[0, N)`.
pub type ClientId = usize;

/// A client-selection policy.
pub trait ClientSelector: Send {
    /// Selects the clients that participate in one round.
    fn select(&mut self, rng: &mut dyn rand::RngCore) -> Vec<ClientId>;

    /// Human-readable name ("Random", "Greedy", "Dubhe") for logs and plots.
    fn name(&self) -> &'static str;

    /// The number of clients the selector draws from.
    fn population(&self) -> usize;

    /// The target number of participants per round.
    fn target_participants(&self) -> usize;

    /// Length of the encrypted registry this selector's registration epoch
    /// exchanges, or `None` for selectors with no registration phase.
    /// Used by the FL simulator to charge ciphertext bytes to the ledger.
    fn registry_len(&self) -> Option<usize> {
        None
    }

    /// The Dubhe protocol configuration behind this selector, if it models a
    /// registration-based selection. The FL simulator uses it to drive the
    /// real encrypted exchange through the actor/transport API.
    fn secure_config(&self) -> Option<&DubheConfig> {
        None
    }

    /// The overall registry `R_A` this selector's decision model is based
    /// on, if any — used to cross-check that an encrypted registration epoch
    /// decrypts to exactly the plaintext decision state.
    fn overall_registry(&self) -> Option<&[u64]> {
        None
    }
}

/// The population (participated-data) label distribution `p_o` of a selected
/// client set: the average of the selected clients' label proportions (all
/// clients weigh equally because FedVC equalises their sample counts).
///
/// Returns [`SelectError::EmptySelection`] for an empty selection (the
/// quantity is undefined) and [`SelectError::ClientOutOfRange`] for a
/// selected id outside the population, so a misbehaving selector surfaces as
/// a recoverable error instead of aborting a long simulation.
pub fn population_distribution(
    selected: &[ClientId],
    client_distributions: &[ClassDistribution],
) -> Result<Vec<f64>, SelectError> {
    if selected.is_empty() {
        return Err(SelectError::EmptySelection);
    }
    let classes = client_distributions
        .first()
        .ok_or(SelectError::NoClients)?
        .classes();
    let mut acc = vec![0.0f64; classes];
    for &id in selected {
        if id >= client_distributions.len() {
            return Err(SelectError::ClientOutOfRange {
                id,
                population: client_distributions.len(),
            });
        }
        let p = client_distributions[id].proportions();
        for (a, v) in acc.iter_mut().zip(&p) {
            *a += v;
        }
    }
    for a in &mut acc {
        *a /= selected.len() as f64;
    }
    Ok(acc)
}

/// `‖p_o − p_u‖₁` for a selected client set — the quantity Dubhe minimises
/// (Eq. 3) and the y-axis of Fig. 9. Errors as
/// [`population_distribution`] does.
pub fn population_unbiasedness(
    selected: &[ClientId],
    client_distributions: &[ClassDistribution],
) -> Result<f64, SelectError> {
    let p_o = population_distribution(selected, client_distributions)?;
    let p_u = vec![1.0 / p_o.len() as f64; p_o.len()];
    Ok(l1_distance(&p_o, &p_u))
}

/// Statistics of repeated selections (Fig. 9 reports the mean and standard
/// deviation of ‖p_o − p_u‖₁ over 100 selections).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionStats {
    /// Mean of ‖p_o − p_u‖₁ across repetitions.
    pub mean: f64,
    /// Standard deviation of ‖p_o − p_u‖₁ across repetitions.
    pub std: f64,
    /// Number of repetitions.
    pub repetitions: usize,
}

/// Runs a selector `repetitions` times and reports mean/std of ‖p_o − p_u‖₁.
/// Fails with the first selection error (e.g. an empty selection from a
/// misconfigured selector).
pub fn selection_stats<S: ClientSelector + ?Sized, R: Rng>(
    selector: &mut S,
    client_distributions: &[ClassDistribution],
    repetitions: usize,
    rng: &mut R,
) -> Result<SelectionStats, SelectError> {
    assert!(repetitions > 0, "need at least one repetition");
    let mut values: Vec<f64> = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        let selected = selector.select(rng);
        values.push(population_unbiasedness(&selected, client_distributions)?);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    Ok(SelectionStats {
        mean,
        std: var.sqrt(),
        repetitions,
    })
}

/// The random-selection baseline: a uniform sample of `k` distinct clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomSelector {
    population: usize,
    k: usize,
}

impl RandomSelector {
    /// Creates a random selector over `population` clients picking `k` each
    /// round.
    pub fn new(population: usize, k: usize) -> Self {
        assert!(population > 0, "population must be positive");
        assert!(k > 0 && k <= population, "K must be in [1, population]");
        RandomSelector { population, k }
    }
}

impl ClientSelector for RandomSelector {
    fn select(&mut self, rng: &mut dyn rand::RngCore) -> Vec<ClientId> {
        let mut ids: Vec<ClientId> = (0..self.population).collect();
        ids.shuffle(rng);
        ids.truncate(self.k);
        ids.sort_unstable();
        ids
    }

    fn name(&self) -> &'static str {
        "Random"
    }

    fn population(&self) -> usize {
        self.population
    }

    fn target_participants(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy_distributions() -> Vec<ClassDistribution> {
        vec![
            ClassDistribution::from_counts(vec![10, 0]),
            ClassDistribution::from_counts(vec![0, 10]),
            ClassDistribution::from_counts(vec![5, 5]),
            ClassDistribution::from_counts(vec![8, 2]),
        ]
    }

    #[test]
    fn random_selection_is_distinct_and_sized() {
        let mut sel = RandomSelector::new(100, 20);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = sel.select(&mut rng);
        assert_eq!(s.len(), 20);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "selected clients must be distinct");
        assert!(s.iter().all(|&id| id < 100));
        assert_eq!(sel.name(), "Random");
        assert_eq!(sel.population(), 100);
        assert_eq!(sel.target_participants(), 20);
    }

    #[test]
    fn full_participation_selects_everyone() {
        let mut sel = RandomSelector::new(10, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(sel.select(&mut rng), (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "K must be in")]
    fn oversized_k_panics() {
        let _ = RandomSelector::new(5, 6);
    }

    #[test]
    fn population_distribution_averages_clients() {
        let dists = toy_distributions();
        let p = population_distribution(&[0, 1], &dists).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
        let p = population_distribution(&[0], &dists).unwrap();
        assert_eq!(p, vec![1.0, 0.0]);
    }

    #[test]
    fn unbiasedness_is_zero_for_balanced_selection() {
        let dists = toy_distributions();
        assert!(population_unbiasedness(&[0, 1], &dists).unwrap() < 1e-12);
        assert!((population_unbiasedness(&[0], &dists).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_is_an_error_not_a_panic() {
        let dists = toy_distributions();
        assert_eq!(
            population_distribution(&[], &dists),
            Err(SelectError::EmptySelection)
        );
        assert_eq!(
            population_unbiasedness(&[], &dists),
            Err(SelectError::EmptySelection)
        );
    }

    #[test]
    fn out_of_range_selection_is_an_error() {
        let dists = toy_distributions();
        assert_eq!(
            population_distribution(&[99], &dists),
            Err(SelectError::ClientOutOfRange {
                id: 99,
                population: 4
            })
        );
        assert_eq!(
            population_distribution(&[0], &[]),
            Err(SelectError::NoClients)
        );
    }

    #[test]
    fn selection_stats_have_sane_ranges() {
        let dists: Vec<ClassDistribution> = (0..50)
            .map(|i| {
                let mut counts = vec![1u64; 2];
                counts[i % 2] = 20;
                ClassDistribution::from_counts(counts)
            })
            .collect();
        let mut sel = RandomSelector::new(50, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let stats = selection_stats(&mut sel, &dists, 50, &mut rng).unwrap();
        assert!(stats.mean >= 0.0 && stats.mean <= 2.0);
        assert!(stats.std >= 0.0);
        assert_eq!(stats.repetitions, 50);
    }
}
