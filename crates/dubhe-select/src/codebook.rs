//! The registry codebook: a bijection between "categories" (sets of dominating
//! classes) and positions in the concatenated one-hot registry vector.
//!
//! A client whose dominating classes are the `i`-subset `u ⊂ [C]` flips the bit
//! at the position of `u` inside the block reserved for subsets of size `i`
//! (Fig. 4 of the paper). Blocks exist for every `i` in the reference set `G`,
//! so the registry length is `l = Σ_{i∈G} C-choose-i` — e.g. `G = {1, 2, 10}`
//! over `C = 10` classes gives `10 + 45 + 1 = 56`, and `G = {1, 52}` over
//! `C = 52` gives `52 + 1 = 53`, the lengths reported in §6.1.2.
//!
//! Subsets are ranked with the combinatorial number system (lexicographic rank
//! of the sorted subset), giving O(i·C) rank/unrank with no table storage.

use serde::{Deserialize, Serialize};

/// Binomial coefficient `C(n, k)` as `u64` (saturating; the registry sizes used
/// by Dubhe are far below overflow).
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        // Multiply before divide stays exact because the intermediate product
        // of consecutive integers is divisible by (i + 1).
        result = result.saturating_mul((n - i) as u64) / (i + 1) as u64;
    }
    result
}

/// Lexicographic rank of a strictly increasing `k`-subset of `[0, classes)`.
pub fn rank_subset(subset: &[usize], classes: usize) -> u64 {
    assert!(!subset.is_empty(), "cannot rank an empty subset");
    assert!(
        subset.windows(2).all(|w| w[0] < w[1]),
        "subset must be strictly increasing: {subset:?}"
    );
    assert!(
        *subset.last().unwrap() < classes,
        "subset element out of range"
    );
    let k = subset.len();
    let mut rank: u64 = 0;
    let mut prev: isize = -1;
    for (i, &element) in subset.iter().enumerate() {
        for skipped in (prev + 1) as usize..element {
            rank += binomial(classes - skipped - 1, k - i - 1);
        }
        prev = element as isize;
    }
    rank
}

/// Inverse of [`rank_subset`]: the `rank`-th (lexicographic) `k`-subset of
/// `[0, classes)`.
pub fn unrank_subset(mut rank: u64, k: usize, classes: usize) -> Vec<usize> {
    assert!(
        k >= 1 && k <= classes,
        "subset size {k} out of range for {classes} classes"
    );
    assert!(rank < binomial(classes, k), "rank {rank} out of range");
    let mut subset = Vec::with_capacity(k);
    let mut start = 0usize;
    for remaining in (1..=k).rev() {
        for candidate in start..classes {
            let block = binomial(classes - candidate - 1, remaining - 1);
            if rank < block {
                subset.push(candidate);
                start = candidate + 1;
                break;
            }
            rank -= block;
        }
    }
    subset
}

/// A client category: which classes dominate its local dataset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Category {
    /// Sorted (ascending) dominating classes; length is a member of `G`.
    pub classes: Vec<usize>,
}

impl Category {
    /// Creates a category from (possibly unsorted) class indices.
    pub fn new(mut classes: Vec<usize>) -> Self {
        classes.sort_unstable();
        classes.dedup();
        assert!(!classes.is_empty(), "a category needs at least one class");
        Category { classes }
    }

    /// Number of dominating classes.
    pub fn size(&self) -> usize {
        self.classes.len()
    }
}

/// The registry layout for a task with `classes` classes and reference set `G`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryLayout {
    classes: usize,
    reference_set: Vec<usize>,
    block_offsets: Vec<usize>,
    total_len: usize,
}

impl RegistryLayout {
    /// Builds the layout. The reference set is sorted ascending; it must be
    /// non-empty, contain only values in `[1, classes]` and include `classes`
    /// itself (the "no dominating class" fallback, whose threshold is 0 —
    /// §5.3.2).
    pub fn new(classes: usize, reference_set: &[usize]) -> Self {
        assert!(classes > 0, "need at least one class");
        let mut g: Vec<usize> = reference_set.to_vec();
        g.sort_unstable();
        g.dedup();
        assert!(!g.is_empty(), "the reference set G must not be empty");
        assert!(
            g.iter().all(|&i| i >= 1 && i <= classes),
            "reference set entries must lie in [1, {classes}]"
        );
        assert!(
            g.contains(&classes),
            "the reference set must contain C = {classes} (the balanced-client fallback)"
        );
        let mut block_offsets = Vec::with_capacity(g.len());
        let mut offset = 0usize;
        for &i in &g {
            block_offsets.push(offset);
            offset += binomial(classes, i) as usize;
        }
        RegistryLayout {
            classes,
            reference_set: g,
            block_offsets,
            total_len: offset,
        }
    }

    /// The layout used by the paper's group-1 experiments
    /// (`C = 10`, `G = {1, 2, 10}`, registry length 56).
    pub fn group1() -> Self {
        RegistryLayout::new(10, &[1, 2, 10])
    }

    /// The layout used by the paper's group-2 experiments
    /// (`C = 52`, `G = {1, 52}`, registry length 53).
    pub fn group2() -> Self {
        RegistryLayout::new(52, &[1, 52])
    }

    /// Number of classes `C`.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The sorted reference set `G`.
    pub fn reference_set(&self) -> &[usize] {
        &self.reference_set
    }

    /// Total registry length `l = Σ_{i∈G} C(C, i)`.
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// `true` if the layout has no positions (cannot happen for valid layouts).
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// The registry position of a category.
    ///
    /// # Panics
    /// Panics if the category size is not in `G` or its classes are out of range.
    pub fn position(&self, category: &Category) -> usize {
        let size = category.size();
        let block = self
            .reference_set
            .iter()
            .position(|&i| i == size)
            .unwrap_or_else(|| {
                panic!(
                    "category size {size} is not in the reference set {:?}",
                    self.reference_set
                )
            });
        self.block_offsets[block] + rank_subset(&category.classes, self.classes) as usize
    }

    /// The category encoded at a registry position (inverse of [`position`]).
    ///
    /// [`position`]: RegistryLayout::position
    pub fn category_at(&self, position: usize) -> Category {
        assert!(
            position < self.total_len,
            "position {position} out of range"
        );
        for (block, &i) in self.reference_set.iter().enumerate().rev() {
            let offset = self.block_offsets[block];
            if position >= offset {
                let rank = (position - offset) as u64;
                return Category {
                    classes: unrank_subset(rank, i, self.classes),
                };
            }
        }
        unreachable!("block offsets start at zero");
    }

    /// Iterates over every category in registry order (useful for debugging and
    /// for the Fig. 10 registry-sparsity experiment).
    pub fn categories(&self) -> impl Iterator<Item = Category> + '_ {
        (0..self.total_len).map(|p| self.category_at(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 1), 10);
        assert_eq!(binomial(10, 2), 45);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(52, 1), 52);
        assert_eq!(binomial(52, 52), 1);
        assert_eq!(binomial(5, 7), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn paper_registry_lengths() {
        // §6.1.2: l1 = C(10,1) + C(10,2) + C(10,10) = 56, l2 = C(52,1) + C(52,52) = 53.
        assert_eq!(RegistryLayout::group1().len(), 56);
        assert_eq!(RegistryLayout::group2().len(), 53);
    }

    #[test]
    fn rank_unrank_round_trip_all_pairs_of_ten() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                let subset = vec![a, b];
                let rank = rank_subset(&subset, 10);
                assert!(rank < 45);
                assert_eq!(unrank_subset(rank, 2, 10), subset);
            }
        }
    }

    #[test]
    fn rank_is_lexicographic() {
        assert_eq!(rank_subset(&[0, 1], 10), 0);
        assert_eq!(rank_subset(&[0, 2], 10), 1);
        assert_eq!(rank_subset(&[0, 9], 10), 8);
        assert_eq!(rank_subset(&[1, 2], 10), 9);
        assert_eq!(rank_subset(&[8, 9], 10), 44);
        assert_eq!(rank_subset(&[3], 10), 3);
    }

    #[test]
    fn ranks_are_unique_and_dense_for_triples() {
        let mut seen = vec![false; binomial(8, 3) as usize];
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    let r = rank_subset(&[a, b, c], 8) as usize;
                    assert!(!seen[r], "rank {r} occurred twice");
                    seen[r] = true;
                }
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_subset_panics() {
        let _ = rank_subset(&[3, 1], 10);
    }

    #[test]
    fn category_normalises_ordering() {
        let c = Category::new(vec![7, 2]);
        assert_eq!(c.classes, vec![2, 7]);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn position_and_category_round_trip_group1() {
        let layout = RegistryLayout::group1();
        for p in 0..layout.len() {
            let cat = layout.category_at(p);
            assert_eq!(layout.position(&cat), p);
        }
    }

    #[test]
    fn paper_figure4_example_position() {
        // Fig. 4: a client with dominating classes (0, 1) under G = {1, 2, 10}
        // fills the first slot of the pair block, i.e. position 10 (after the
        // ten single-class slots).
        let layout = RegistryLayout::group1();
        assert_eq!(layout.position(&Category::new(vec![0, 1])), 10);
        // The "no dominating class" category (all ten classes) occupies the
        // final slot.
        assert_eq!(layout.position(&Category::new((0..10).collect())), 55);
    }

    #[test]
    fn blocks_are_laid_out_in_reference_set_order() {
        let layout = RegistryLayout::new(6, &[1, 3, 6]);
        assert_eq!(layout.len(), 6 + 20 + 1);
        assert_eq!(layout.position(&Category::new(vec![0])), 0);
        assert_eq!(layout.position(&Category::new(vec![0, 1, 2])), 6);
        assert_eq!(layout.position(&Category::new((0..6).collect())), 26);
    }

    #[test]
    #[should_panic(expected = "must contain C")]
    fn missing_fallback_block_panics() {
        let _ = RegistryLayout::new(10, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "is not in the reference set")]
    fn category_size_not_in_g_panics() {
        let layout = RegistryLayout::group1();
        let _ = layout.position(&Category::new(vec![0, 1, 2]));
    }

    #[test]
    fn categories_iterator_covers_every_position() {
        let layout = RegistryLayout::new(5, &[1, 2, 5]);
        let cats: Vec<Category> = layout.categories().collect();
        assert_eq!(cats.len(), layout.len());
        assert_eq!(cats[0], Category::new(vec![0]));
        assert_eq!(cats[5], Category::new(vec![0, 1]));
    }
}
