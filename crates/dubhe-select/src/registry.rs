//! Registration (Algorithm 1): turning a client's label distribution into a
//! one-hot registry vector without revealing the distribution itself.
//!
//! The client walks the reference set `G` in ascending order. For each
//! candidate count `i` it looks at its `i` most frequent classes; if the `i`-th
//! most frequent class still holds at least a fraction σᵢ of the client's data,
//! those `i` classes are declared *dominating*, the client's category is the
//! corresponding `i`-subset, and the bit at that category's registry position
//! is set. Because σ_C = 0, the walk always terminates at the "no dominating
//! class" fallback for balanced clients.

use dubhe_data::ClassDistribution;
use dubhe_he::{EncryptedVector, Encryptor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::codebook::{Category, RegistryLayout};

/// The outcome of registration for one client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Registration {
    /// The client's category `u^(t,k)` (its dominating classes).
    pub category: Category,
    /// Which entry of the reference set matched (number of dominating classes).
    pub dominating_count: usize,
    /// The one-hot registry vector `R^(t,k)` of length `layout.len()`.
    pub registry: Vec<u64>,
    /// The registry position that was flipped to one.
    pub position: usize,
}

/// Runs Algorithm 1 for a single client.
///
/// # Panics
/// Panics if the distribution's class count differs from the layout's, if the
/// distribution is empty, or if threshold count mismatches the reference set.
pub fn register(
    distribution: &ClassDistribution,
    layout: &RegistryLayout,
    thresholds: &[f64],
) -> Registration {
    assert_eq!(
        distribution.classes(),
        layout.classes(),
        "distribution has {} classes, layout expects {}",
        distribution.classes(),
        layout.classes()
    );
    assert!(
        !distribution.is_empty(),
        "cannot register a client with no data"
    );
    assert_eq!(
        thresholds.len(),
        layout.reference_set().len(),
        "need one threshold per reference-set entry"
    );

    let proportions = distribution.proportions();
    let by_frequency = distribution.classes_by_frequency();

    for (&i, &sigma) in layout.reference_set().iter().zip(thresholds) {
        // Proportion of the i-th most frequent class (1-indexed i).
        let mi = proportions[by_frequency[i - 1]];
        let effective_sigma = if i == layout.classes() { 0.0 } else { sigma };
        if mi >= effective_sigma {
            let mut classes: Vec<usize> = by_frequency[..i].to_vec();
            classes.sort_unstable();
            let category = Category { classes };
            let position = layout.position(&category);
            let mut registry = vec![0u64; layout.len()];
            registry[position] = 1;
            return Registration {
                category,
                dominating_count: i,
                registry,
                position,
            };
        }
    }
    unreachable!("the C-sized fallback category always matches because σ_C = 0");
}

/// Registers every client and returns the individual registrations plus the
/// plaintext overall registry `R_A = Σ_k R^(t,k)` (what all clients learn after
/// decrypting the homomorphic sum).
pub fn register_all(
    distributions: &[ClassDistribution],
    layout: &RegistryLayout,
    thresholds: &[f64],
) -> (Vec<Registration>, Vec<u64>) {
    let mut overall = vec![0u64; layout.len()];
    let registrations: Vec<Registration> = distributions
        .iter()
        .map(|d| {
            let r = register(d, layout, thresholds);
            overall[r.position] += 1;
            r
        })
        .collect();
    (registrations, overall)
}

/// Registers every client and encrypts each one-hot registry under the epoch
/// key — the client-side half of Fig. 4's secure registration.
///
/// All clients share `encryptor` (and through it the key's one fixed-base
/// table), so the per-epoch precomputation is paid once, not `N` times —
/// pass the CRT-split [`CrtEncryptor`](dubhe_he::CrtEncryptor) when the
/// keypair is available for the fastest route; the
/// per-client encryption itself runs the short-exponent fast path and, with
/// `dubhe-he`'s default `parallel` feature, fans out over cores.
pub fn register_all_encrypted<E: Encryptor + ?Sized, R: Rng + ?Sized>(
    distributions: &[ClassDistribution],
    layout: &RegistryLayout,
    thresholds: &[f64],
    encryptor: &E,
    rng: &mut R,
) -> (Vec<Registration>, Vec<EncryptedVector>) {
    let mut registrations = Vec::with_capacity(distributions.len());
    let mut encrypted = Vec::with_capacity(distributions.len());
    for d in distributions {
        let r = register(d, layout, thresholds);
        encrypted.push(EncryptedVector::encrypt_u64_with(
            encryptor,
            &r.registry,
            rng,
        ));
        registrations.push(r);
    }
    (registrations, encrypted)
}

/// Summary of an overall registry used by the Fig. 10 sparsity analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySummary {
    /// Number of non-zero categories `‖R_A‖₀`.
    pub nonzero_categories: usize,
    /// Total registered clients (sum of all counts).
    pub total_clients: u64,
    /// Category / count pairs for every non-zero position, in registry order.
    pub occupied: Vec<(Category, u64)>,
    /// For each class, how many registered clients list it as dominating
    /// (excluding the C-sized fallback category).
    pub class_coverage: Vec<u64>,
}

/// Summarises an overall registry.
pub fn summarize(overall: &[u64], layout: &RegistryLayout) -> RegistrySummary {
    assert_eq!(overall.len(), layout.len(), "registry length mismatch");
    let mut occupied = Vec::new();
    let mut class_coverage = vec![0u64; layout.classes()];
    for (pos, &count) in overall.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let cat = layout.category_at(pos);
        if cat.size() != layout.classes() {
            for &c in &cat.classes {
                class_coverage[c] += count;
            }
        }
        occupied.push((cat, count));
    }
    RegistrySummary {
        nonzero_categories: occupied.len(),
        total_clients: overall.iter().sum(),
        occupied,
        class_coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> RegistryLayout {
        RegistryLayout::group1()
    }

    /// Paper thresholds for group 1: σ1 = 0.7, σ2 = 0.1, σ10 = 0.
    const SIGMA: [f64; 3] = [0.7, 0.1, 0.0];

    #[test]
    fn single_dominating_class_registers_in_first_block() {
        // 90% of the data in class 3.
        let d = ClassDistribution::from_counts(vec![1, 1, 1, 90, 1, 1, 1, 1, 1, 2]);
        let r = register(&d, &layout(), &SIGMA);
        assert_eq!(r.dominating_count, 1);
        assert_eq!(r.category, Category::new(vec![3]));
        assert_eq!(r.position, 3);
        assert_eq!(r.registry.iter().sum::<u64>(), 1);
        assert_eq!(r.registry[3], 1);
    }

    #[test]
    fn two_dominating_classes_register_in_pair_block() {
        // Fig. 4 example: classes 0 and 1 both exceed σ2 but neither exceeds σ1.
        let d = ClassDistribution::from_counts(vec![45, 45, 2, 2, 2, 1, 1, 1, 1, 0]);
        let r = register(&d, &layout(), &SIGMA);
        assert_eq!(r.dominating_count, 2);
        assert_eq!(r.category, Category::new(vec![0, 1]));
        assert_eq!(r.position, 10);
    }

    #[test]
    fn balanced_client_falls_back_to_full_category() {
        // With sigma_2 = 0.2 a perfectly uniform client matches no block except
        // the C-sized fallback (position 55).
        let d = ClassDistribution::from_counts(vec![10; 10]);
        let r = register(&d, &layout(), &[0.7, 0.2, 0.0]);
        assert_eq!(r.dominating_count, 10);
        assert_eq!(r.position, 55);
    }

    #[test]
    fn uniform_client_at_exact_sigma_boundary_counts_as_dominated() {
        // Algorithm 1 uses ">= sigma_i"; with the paper's sigma_2 = 0.1 a
        // perfectly uniform 10-class client sits exactly on the boundary and is
        // classified into the pair block. This mirrors Fig. 10, where the
        // fallback category R_{A,10} ends up empty.
        let d = ClassDistribution::from_counts(vec![10; 10]);
        let r = register(&d, &layout(), &SIGMA);
        assert_eq!(r.dominating_count, 2);
    }

    #[test]
    fn moderately_skewed_client_without_strong_pair_falls_back() {
        // Top class has 30% (< σ1), second class has 8% (< σ2) -> fallback.
        let d = ClassDistribution::from_counts(vec![30, 8, 8, 8, 8, 8, 8, 8, 7, 7]);
        let r = register(&d, &layout(), &SIGMA);
        assert_eq!(r.dominating_count, 10);
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        // Exactly 70% on class 0 counts as dominating (>= σ1).
        let d = ClassDistribution::from_counts(vec![70, 30, 0, 0, 0, 0, 0, 0, 0, 0]);
        let r = register(&d, &layout(), &SIGMA);
        assert_eq!(r.dominating_count, 1);
        assert_eq!(r.category, Category::new(vec![0]));
    }

    #[test]
    fn register_all_accumulates_overall_registry() {
        let clients = vec![
            ClassDistribution::from_counts(vec![90, 1, 1, 1, 1, 1, 1, 1, 1, 2]),
            ClassDistribution::from_counts(vec![95, 1, 1, 1, 1, 0, 0, 0, 0, 1]),
            ClassDistribution::from_counts(vec![1, 1, 1, 90, 1, 1, 1, 1, 1, 2]),
            ClassDistribution::from_counts(vec![10; 10]),
        ];
        // sigma_2 = 0.2 sends the uniform client to the fallback block.
        let (regs, overall) = register_all(&clients, &layout(), &[0.7, 0.2, 0.0]);
        assert_eq!(regs.len(), 4);
        assert_eq!(overall.iter().sum::<u64>(), 4);
        assert_eq!(overall[0], 2, "two clients dominated by class 0");
        assert_eq!(overall[3], 1);
        assert_eq!(overall[55], 1);
    }

    #[test]
    fn summary_reports_sparsity_and_coverage() {
        let clients = vec![
            ClassDistribution::from_counts(vec![90, 1, 1, 1, 1, 1, 1, 1, 1, 2]),
            ClassDistribution::from_counts(vec![45, 45, 2, 2, 2, 1, 1, 1, 1, 0]),
            ClassDistribution::from_counts(vec![10; 10]),
        ];
        let (_, overall) = register_all(&clients, &layout(), &[0.7, 0.2, 0.0]);
        let s = summarize(&overall, &layout());
        assert_eq!(s.total_clients, 3);
        assert_eq!(s.nonzero_categories, 3);
        // Class 0 is dominating for two clients (single and pair), class 1 for one.
        assert_eq!(s.class_coverage[0], 2);
        assert_eq!(s.class_coverage[1], 1);
        assert_eq!(s.class_coverage[9], 0);
    }

    #[test]
    #[should_panic(expected = "cannot register a client with no data")]
    fn empty_client_panics() {
        let d = ClassDistribution::empty(10);
        let _ = register(&d, &layout(), &SIGMA);
    }

    #[test]
    #[should_panic(expected = "layout expects")]
    fn class_count_mismatch_panics() {
        let d = ClassDistribution::from_counts(vec![1; 5]);
        let _ = register(&d, &layout(), &SIGMA);
    }

    #[test]
    fn group2_layout_registers_52_class_clients() {
        let layout = RegistryLayout::group2();
        let sigma = [0.5, 0.0];
        let mut counts = vec![1u64; 52];
        counts[17] = 300; // class 17 strongly dominates
        let d = ClassDistribution::from_counts(counts);
        let r = register(&d, &layout, &sigma);
        assert_eq!(r.dominating_count, 1);
        assert_eq!(r.position, 17);
        // A flat client falls into the final fallback slot (position 52).
        let flat = ClassDistribution::from_counts(vec![5; 52]);
        let r = register(&flat, &layout, &sigma);
        assert_eq!(r.position, 52);
    }
}
