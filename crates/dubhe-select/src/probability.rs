//! Probability calculation (Eq. 6–8): each client decides *by itself* whether
//! to participate, using only the decrypted overall registry and its own
//! category.
//!
//! `P^(t,k) = min(1, K / (R_A(u^(t,k)) · ‖R_A‖₀))`
//!
//! Every occupied category is expected to contribute the same number of clients
//! (`K / ‖R_A‖₀`, Eq. 8), so classes appear as dominating classes with equal
//! frequency and the population distribution is pushed toward uniform. Summing
//! the probabilities over all clients gives an expected participation of
//! exactly `K` (Eq. 7).

use serde::{Deserialize, Serialize};

/// The participation probability of a client in category-position `position`
/// given the overall registry `overall` and the target participation `k`.
///
/// Returns 0 for clients whose category nobody registered (cannot happen for a
/// client that registered itself, but callers may query hypothetical
/// categories).
pub fn participation_probability(overall: &[u64], position: usize, k: usize) -> f64 {
    assert!(position < overall.len(), "registry position out of range");
    assert!(k > 0, "K must be positive");
    let count = overall[position];
    if count == 0 {
        return 0.0;
    }
    let nonzero = overall.iter().filter(|&&c| c > 0).count();
    (k as f64 / (count as f64 * nonzero as f64)).min(1.0)
}

/// The expected number of participating clients when every registered client
/// draws independently with [`participation_probability`] — Eq. (7) says this
/// equals `K` whenever no probability saturates at 1.
pub fn expected_participation(overall: &[u64], k: usize) -> f64 {
    let nonzero = overall.iter().filter(|&&c| c > 0).count();
    if nonzero == 0 {
        return 0.0;
    }
    overall
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| c as f64 * (k as f64 / (c as f64 * nonzero as f64)).min(1.0))
        .sum()
}

/// The expected number of participants from each occupied category — Eq. (8)
/// says these are all equal to `K / ‖R_A‖₀` when no probability saturates.
pub fn expected_per_category(overall: &[u64], k: usize) -> Vec<f64> {
    let nonzero = overall.iter().filter(|&&c| c > 0).count();
    overall
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                c as f64 * (k as f64 / (c as f64 * nonzero as f64)).min(1.0)
            }
        })
        .collect()
}

/// Whether the "K < ‖R_A‖₀" pre-condition of Eq. (6) holds — the paper restricts
/// `K` below the number of occupied categories so no probability reaches 1.
pub fn saturation_free(overall: &[u64], k: usize) -> bool {
    let nonzero = overall.iter().filter(|&&c| c > 0).count();
    k < nonzero.max(1)
        || overall
            .iter()
            .filter(|&&c| c > 0)
            .all(|&c| c as usize * nonzero >= k)
}

/// Summary of one probability assignment (handy for experiment logs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityProfile {
    /// Number of occupied categories `‖R_A‖₀`.
    pub occupied_categories: usize,
    /// Expected total participation (Eq. 7).
    pub expected_participants: f64,
    /// Minimum and maximum per-client probability over occupied categories.
    pub min_probability: f64,
    /// Maximum per-client probability.
    pub max_probability: f64,
}

/// Computes a [`ProbabilityProfile`] for an overall registry.
pub fn profile(overall: &[u64], k: usize) -> ProbabilityProfile {
    let occupied: Vec<usize> = overall
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, _)| i)
        .collect();
    let probs: Vec<f64> = occupied
        .iter()
        .map(|&pos| participation_probability(overall, pos, k))
        .collect();
    ProbabilityProfile {
        occupied_categories: occupied.len(),
        expected_participants: expected_participation(overall, k),
        min_probability: probs.iter().cloned().fold(f64::INFINITY, f64::min),
        max_probability: probs.iter().cloned().fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_formula_matches_eq6() {
        // 3 occupied categories with counts 5, 3, 2; K = 4.
        let overall = vec![5, 0, 3, 2, 0];
        // Category at position 0: min(1, 4 / (5*3)) = 4/15.
        assert!((participation_probability(&overall, 0, 4) - 4.0 / 15.0).abs() < 1e-12);
        assert!((participation_probability(&overall, 2, 4) - 4.0 / 9.0).abs() < 1e-12);
        assert!((participation_probability(&overall, 3, 4) - 4.0 / 6.0).abs() < 1e-12);
        // Unoccupied category -> probability 0.
        assert_eq!(participation_probability(&overall, 1, 4), 0.0);
    }

    #[test]
    fn probability_is_capped_at_one() {
        // A single occupied category with one client and a large K.
        let overall = vec![1, 0];
        assert_eq!(participation_probability(&overall, 0, 100), 1.0);
    }

    #[test]
    fn expected_participation_equals_k_without_saturation() {
        let overall = vec![10, 7, 0, 25, 3, 12];
        for k in [1usize, 2, 4] {
            let e = expected_participation(&overall, k);
            assert!((e - k as f64).abs() < 1e-9, "K={k}: expected {e}");
        }
    }

    #[test]
    fn expected_participation_saturates_gracefully() {
        // With K larger than category_count * min_count the cap at 1 bites and
        // the expectation falls below K but never exceeds the client count.
        let overall = vec![1, 1, 1];
        let e = expected_participation(&overall, 50);
        assert!(e <= 3.0 + 1e-9);
        assert!(e > 0.0);
    }

    #[test]
    fn per_category_expectations_are_equal() {
        let overall = vec![10, 0, 40, 5, 0, 9];
        let per = expected_per_category(&overall, 3);
        let expected = 3.0 / 4.0; // K / ||R_A||_0
        for (i, &c) in overall.iter().enumerate() {
            if c > 0 {
                assert!((per[i] - expected).abs() < 1e-9, "category {i}");
            } else {
                assert_eq!(per[i], 0.0);
            }
        }
    }

    #[test]
    fn empty_registry_expects_zero() {
        assert_eq!(expected_participation(&[0, 0, 0], 5), 0.0);
    }

    #[test]
    fn profile_reports_ranges() {
        let overall = vec![10, 0, 2, 8];
        let p = profile(&overall, 3);
        assert_eq!(p.occupied_categories, 3);
        assert!((p.expected_participants - 3.0).abs() < 1e-9);
        assert!(p.max_probability > p.min_probability);
        assert!(p.max_probability <= 1.0);
    }

    #[test]
    fn saturation_check() {
        assert!(saturation_free(&[10, 10, 10, 10], 3));
        assert!(!saturation_free(&[1, 1], 50));
    }

    #[test]
    #[should_panic(expected = "position out of range")]
    fn out_of_range_position_panics() {
        let _ = participation_probability(&[1, 2], 5, 1);
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_panics() {
        let _ = participation_probability(&[1], 0, 0);
    }
}
