//! Configuration of the Dubhe client-selection system.

use serde::{Deserialize, Serialize};

use crate::codebook::RegistryLayout;

/// All tunables of Dubhe for one FL system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DubheConfig {
    /// Number of classes `C` of the classification task.
    pub classes: usize,
    /// Reference set `G`: the candidate numbers of dominating classes. Must
    /// contain `classes` itself (the balanced-client fallback).
    pub reference_set: Vec<usize>,
    /// Per-`i` thresholds σᵢ (same order as the sorted reference set). The
    /// threshold for `i = C` is forced to 0 as in the paper.
    pub thresholds: Vec<f64>,
    /// Target number of participating clients per round `K`.
    pub k: usize,
    /// Number of tentative tries `H` of the multi-time selection (1 = one-off).
    pub multi_time_h: usize,
    /// Paillier key size in bits for the secure protocol.
    pub key_bits: u64,
}

impl DubheConfig {
    /// The group-1 configuration of the paper: `C = 10`, `G = {1, 2, 10}`,
    /// `K = 20`, with the σ₁ = 0.7, σ₂ = 0.1 optimum reported in §6.3.3.
    pub fn group1() -> Self {
        DubheConfig {
            classes: 10,
            reference_set: vec![1, 2, 10],
            thresholds: vec![0.7, 0.1, 0.0],
            k: 20,
            multi_time_h: 1,
            key_bits: 2048,
        }
    }

    /// The group-2 configuration of the paper: `C = 52`, `G = {1, 52}`, `K = 20`.
    pub fn group2() -> Self {
        DubheConfig {
            classes: 52,
            reference_set: vec![1, 52],
            thresholds: vec![0.5, 0.0],
            k: 20,
            multi_time_h: 1,
            key_bits: 2048,
        }
    }

    /// Checks internal consistency and returns the registry layout.
    ///
    /// # Panics
    /// Panics when thresholds and reference set disagree in length, thresholds
    /// fall outside `[0, 1]`, or `K` is zero.
    pub fn validate(&self) -> RegistryLayout {
        assert!(self.k > 0, "K must be positive");
        assert!(self.multi_time_h >= 1, "H must be at least 1");
        let layout = RegistryLayout::new(self.classes, &self.reference_set);
        assert_eq!(
            self.thresholds.len(),
            layout.reference_set().len(),
            "need exactly one threshold per reference-set entry ({} entries, {} thresholds)",
            layout.reference_set().len(),
            self.thresholds.len()
        );
        assert!(
            self.thresholds.iter().all(|&s| (0.0..=1.0).contains(&s)),
            "thresholds must lie in [0, 1]"
        );
        layout
    }

    /// The thresholds with σ_C forced to zero (the paper fixes the fallback
    /// threshold; the stored value is ignored).
    pub fn effective_thresholds(&self) -> Vec<f64> {
        let layout = self.validate();
        layout
            .reference_set()
            .iter()
            .zip(&self.thresholds)
            .map(|(&i, &s)| if i == self.classes { 0.0 } else { s })
            .collect()
    }

    /// Returns a copy with different thresholds (used by the parameter search).
    pub fn with_thresholds(&self, thresholds: Vec<f64>) -> Self {
        DubheConfig {
            thresholds,
            ..self.clone()
        }
    }

    /// Returns a copy with a different multi-time `H`.
    pub fn with_multi_time(&self, h: usize) -> Self {
        DubheConfig {
            multi_time_h: h,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_presets_validate() {
        let layout1 = DubheConfig::group1().validate();
        assert_eq!(layout1.len(), 56);
        let layout2 = DubheConfig::group2().validate();
        assert_eq!(layout2.len(), 53);
    }

    #[test]
    fn effective_thresholds_zero_the_fallback() {
        let mut cfg = DubheConfig::group1();
        cfg.thresholds = vec![0.7, 0.1, 0.9];
        assert_eq!(cfg.effective_thresholds(), vec![0.7, 0.1, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one threshold per reference-set entry")]
    fn mismatched_threshold_count_panics() {
        let mut cfg = DubheConfig::group1();
        cfg.thresholds = vec![0.7];
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_panics() {
        let mut cfg = DubheConfig::group1();
        cfg.k = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "thresholds must lie in [0, 1]")]
    fn out_of_range_threshold_panics() {
        let mut cfg = DubheConfig::group1();
        cfg.thresholds = vec![1.5, 0.1, 0.0];
        cfg.validate();
    }

    #[test]
    fn with_helpers_update_fields() {
        let cfg = DubheConfig::group1();
        assert_eq!(cfg.with_multi_time(10).multi_time_h, 10);
        assert_eq!(
            cfg.with_thresholds(vec![0.5, 0.2, 0.0]).thresholds,
            vec![0.5, 0.2, 0.0]
        );
    }
}
