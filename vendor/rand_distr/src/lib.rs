//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the three distributions the workspace samples from: [`Normal`]
//! and [`StandardNormal`] (via the Box–Muller transform) and a float
//! [`Uniform`]. Statistically equivalent to upstream, not bit-identical.

use rand::{Rng, RngCore};

/// Types that can be sampled given an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

fn box_muller<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        box_muller(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        box_muller(rng) as f32
    }
}

/// Error returned for invalid normal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; fails if `std_dev` is negative or
    /// non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * box_muller(rng)
    }
}

/// A uniform distribution over a float interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    low: f64,
    high: f64,
    inclusive: bool,
}

impl Uniform {
    /// Uniform over the half-open interval `[low, high)`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform over the closed interval `[low, high]`.
    pub fn new_inclusive(low: f64, high: f64) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Uniform {
            low,
            high,
            inclusive: true,
        }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit: f64 = rng.gen();
        // The closed upper bound is a measure-zero distinction for floats;
        // sampling the open interval keeps the draw simple and is what the
        // workspace's assertions allow.
        let _ = self.inclusive;
        self.low + unit * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(9);
        let dist = Normal::new(3.0, 2.0).unwrap();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        let dist = Uniform::new_inclusive(-2.0, 5.0);
        for _ in 0..10_000 {
            let v = dist.sample(&mut rng);
            assert!((-2.0..=5.0).contains(&v));
        }
    }

    #[test]
    fn invalid_std_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }
}
