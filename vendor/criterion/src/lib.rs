//! Offline stand-in for the `criterion` crate.
//!
//! A deliberately small timing harness with criterion's authoring surface:
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], `b.iter(..)` and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical analysis it
//! runs a fixed warm-up plus a timed batch and prints mean time per
//! iteration. `--test` (what CI's bench-smoke job passes) runs every
//! benchmark body exactly once, so benches double as compile-and-run checks.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id built from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; drives the measured loop.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_nanos: f64,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.last_nanos = 0.0;
            self.iterations = 1;
            return;
        }
        // Warm-up and calibration: find an iteration count that fills a
        // minimal measurement window, capped to keep slow benches bounded.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(10));
        let target = Duration::from_millis(300);
        let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_nanos = elapsed.as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in harness self-calibrates.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stand-in harness self-calibrates.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            last_nanos: 0.0,
            iterations: 0,
        };
        routine(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (purely cosmetic in the stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: test_mode(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a stand-alone function.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            last_nanos: 0.0,
            iterations: 0,
        };
        routine(&mut bencher);
        let label = name.to_string();
        self.report(&label, &bencher);
        self
    }

    fn report(&self, label: &str, bencher: &Bencher) {
        if self.test_mode {
            println!("test {label} ... ok");
        } else {
            println!(
                "{label:<55} {:>12}/iter ({} iterations)",
                format_nanos(bencher.last_nanos),
                bencher.iterations
            );
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("demo");
        let mut runs = 0u32;
        group.sample_size(10).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
        assert_eq!(runs, 1, "test mode must run the body exactly once");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("encrypt", 1024).to_string(),
            "encrypt/1024"
        );
        assert_eq!(BenchmarkId::from_parameter(256).to_string(), "256");
    }
}
