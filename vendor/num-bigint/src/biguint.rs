//! Unsigned arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOrAssign, Div, Mul, Rem, Shl, Shr, ShrAssign, Sub};
use std::str::FromStr;

use num_integer::Integer;
use num_traits::{One, Zero};

/// An arbitrary-precision unsigned integer.
///
/// Limbs are base-2⁶⁴, little-endian, normalised (no trailing zero limbs;
/// zero is the empty limb vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() as u64 * 64 - top.leading_zeros() as u64,
        }
    }

    /// Sets or clears the bit at position `bit` (LSB = 0), growing as needed.
    pub fn set_bit(&mut self, bit: u64, value: bool) {
        let limb = (bit / 64) as usize;
        let mask = 1u64 << (bit % 64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= mask;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !mask;
            while self.limbs.last() == Some(&0) {
                self.limbs.pop();
            }
        }
    }

    /// The little-endian 64-bit digits (empty for zero), matching
    /// `num_bigint::BigUint::to_u64_digits`.
    pub fn to_u64_digits(&self) -> Vec<u64> {
        self.limbs.clone()
    }

    /// Big-endian bytes without leading zeros (`[0]` for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.limbs.is_empty() {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.split_off(first)
    }

    /// Builds a value from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    fn cmp_mag(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    pub(crate) fn add_ref(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u128;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u128 + *short.get(i).unwrap_or(&0) as u128 + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`; panics on underflow (matching `num-bigint`).
    pub(crate) fn sub_ref(&self, other: &Self) -> Self {
        assert!(
            self.cmp_mag(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i128 - *other.limbs.get(i).unwrap_or(&0) as i128 - borrow;
            if d < 0 {
                out.push((d + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(d as u64);
                borrow = 0;
            }
        }
        BigUint::from_limbs(out)
    }

    pub(crate) fn mul_ref(&self, other: &Self) -> Self {
        if self.limbs.is_empty() || other.limbs.is_empty() {
            return BigUint::default();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let s = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let s = out[k] as u128 + carry;
                out[k] = s as u64;
                carry = s >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder (Knuth's Algorithm D). Panics on division by zero.
    pub(crate) fn div_rem_ref(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.limbs.is_empty(), "division by zero");
        if self.cmp_mag(divisor) == Ordering::Less {
            return (BigUint::default(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u128;
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem = 0u128;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            return (
                BigUint::from_limbs(q),
                BigUint::from_limbs(vec![rem as u64]),
            );
        }

        // Knuth D, base 2^64, following the divmnu64 structure.
        let shift = divisor.limbs.last().unwrap().leading_zeros();
        let vn = divisor.shl_bits(shift as usize).limbs;
        let mut un = self.shl_bits(shift as usize).limbs;
        let n = vn.len();
        let m = un.len().saturating_sub(n);
        un.push(0);
        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;

        for j in (0..=m).rev() {
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / vn[n - 1] as u128;
            let mut rhat = top % vn[n - 1] as u128;
            while qhat >= b || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }

            // Multiply and subtract (signed-borrow formulation).
            let mut k = 0i128;
            for i in 0..n {
                let p = qhat * vn[i] as u128;
                let t = un[i + j] as i128 - k - (p as u64) as i128;
                un[i + j] = t as u64;
                k = (p >> 64) as i128 - (t >> 64);
            }
            let t = un[j + n] as i128 - k;
            un[j + n] = t as u64;

            q[j] = qhat as u64;
            if t < 0 {
                // Rare over-estimate: add the divisor back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        un.truncate(n);
        let rem = BigUint::from_limbs(un).shr_bits(shift as usize);
        (BigUint::from_limbs(q), rem)
    }

    pub(crate) fn shl_bits(&self, bits: usize) -> Self {
        if self.limbs.is_empty() || bits == 0 {
            let mut limbs = vec![0; bits / 64];
            limbs.extend_from_slice(&self.limbs);
            return BigUint::from_limbs(if bits == 0 { self.limbs.clone() } else { limbs });
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    pub(crate) fn shr_bits(&self, bits: usize) -> Self {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::default();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let mut limb = src[i] >> bit_shift;
                if i + 1 < src.len() {
                    limb |= src[i + 1] << (64 - bit_shift);
                }
                out.push(limb);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Modular exponentiation: `self^exponent mod modulus`.
    ///
    /// Uses windowed Montgomery multiplication for odd moduli (the Paillier
    /// case — `n²`, `p²` and `q²` are always odd) and falls back to binary
    /// square-and-multiply with explicit reduction otherwise.
    pub fn modpow(&self, exponent: &Self, modulus: &Self) -> Self {
        assert!(!modulus.limbs.is_empty(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::default();
        }
        if exponent.limbs.is_empty() {
            return BigUint::one();
        }
        if modulus.limbs[0] & 1 == 1 {
            let ctx = MontgomeryContext::new(modulus);
            return ctx.pow(&(self % modulus), exponent);
        }
        // Even modulus: plain square-and-multiply.
        let mut base = self % modulus;
        let mut result = BigUint::one();
        for i in 0..exponent.bits() {
            if exponent.limbs[(i / 64) as usize] >> (i % 64) & 1 == 1 {
                result = result.mul_ref(&base).div_rem_ref(modulus).1;
            }
            base = base.mul_ref(&base).div_rem_ref(modulus).1;
        }
        result
    }

    fn to_decimal(&self) -> String {
        if self.limbs.is_empty() {
            return "0".to_string();
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let chunk = BigUint::from(CHUNK);
        let mut rest = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !rest.limbs.is_empty() {
            let (q, r) = rest.div_rem_ref(&chunk);
            parts.push(*r.limbs.first().unwrap_or(&0));
            rest = q;
        }
        let mut s = parts.pop().unwrap().to_string();
        for part in parts.into_iter().rev() {
            s.push_str(&format!("{part:019}"));
        }
        s
    }
}

/// Montgomery context for a fixed odd modulus (CIOS multiplication).
///
/// Deriving the context costs one full-width division (`R² mod m`), which the
/// one-shot [`BigUint::modpow`] pays on *every* call. Callers that
/// exponentiate repeatedly under the same modulus (Paillier: everything is
/// mod `n²`, `p²` or `q²` for the lifetime of a key) should build the context
/// once with [`MontgomeryContext::new`] and reuse it via
/// [`MontgomeryContext::modpow`] — the results are bit-for-bit identical to
/// the uncached path, which this crate's tests pin.
#[derive(Debug, Clone)]
pub struct MontgomeryContext {
    m: Vec<u64>,
    m_prime: u64,
    /// R² mod m, used to map into the Montgomery domain.
    r_squared: Vec<u64>,
    modulus: BigUint,
}

/// A fixed-width operand inside (or destined for) the Montgomery domain of
/// one [`MontgomeryContext`]. Produced by
/// [`MontgomeryContext::to_montgomery`] /
/// [`MontgomeryContext::montgomery_residue`]; opaque so the k-limb layout
/// invariant cannot be broken from outside. Operands are only meaningful with
/// the context that created them.
#[derive(Debug, Clone)]
pub struct MontgomeryOperand {
    limbs: Vec<u64>,
}

impl MontgomeryOperand {
    /// The operand's raw k-limb residue as a plain integer, *without* any
    /// domain conversion. CIOS keeps every operand strictly below the
    /// modulus, and [`MontgomeryContext::montgomery_residue`] pads a
    /// below-modulus value back to the k-limb layout unchanged — so
    /// `ctx.montgomery_residue(&op.raw_residue())` reconstructs `op`
    /// bit-identically. This is what makes fold state serializable.
    pub fn raw_residue(&self) -> BigUint {
        BigUint::from_limbs(self.limbs.clone())
    }
}

/// A reusable CIOS work area: the `k + 2`-limb accumulator every Montgomery
/// multiplication needs, plus a `k`-limb staging buffer for residues parsed
/// out of raw big-endian bytes.
///
/// The `*_assign` multiplication methods on [`MontgomeryContext`] write
/// through a caller-provided scratch instead of allocating per call, which
/// is what makes a steady-state ciphertext fold allocation-free: one scratch
/// per fold (or per worker thread), zero heap traffic per element. A scratch
/// is not tied to the context that sized it — the buffers are resized on
/// entry (a no-op once warm), so one scratch can serve e.g. both CRT legs of
/// a Paillier key.
#[derive(Debug, Default, Clone)]
pub struct MontgomeryScratch {
    /// CIOS accumulator (`k + 2` limbs while a multiply is in flight).
    t: Vec<u64>,
    /// Staging buffer for big-endian byte residues (`k` limbs).
    staged: Vec<u64>,
}

impl MontgomeryScratch {
    /// An empty scratch; buffers grow to the needed width on first use.
    pub fn new() -> Self {
        MontgomeryScratch::default()
    }
}

impl MontgomeryContext {
    /// Builds the context for an odd modulus.
    ///
    /// # Panics
    /// Panics if `modulus` is zero or even (Montgomery reduction requires the
    /// modulus to be coprime to the limb base 2⁶⁴).
    pub fn new(modulus: &BigUint) -> Self {
        assert!(
            modulus.limbs.first().is_some_and(|l| l & 1 == 1),
            "Montgomery context requires an odd modulus"
        );
        let k = modulus.limbs.len();
        // -m⁻¹ mod 2⁶⁴ via Newton iteration.
        let m0 = modulus.limbs[0];
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let m_prime = inv.wrapping_neg();
        let r_squared = BigUint::one()
            .shl_bits(128 * k)
            .div_rem_ref(modulus)
            .1
            .limbs_padded(k);
        MontgomeryContext {
            m: modulus.limbs.clone(),
            m_prime,
            r_squared,
            modulus: modulus.clone(),
        }
    }

    /// CIOS Montgomery product `a·b·R⁻¹ mod m` over k-limb operands.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut t = vec![0u64; self.m.len() + 2];
        self.mont_mul_into(a, b, &mut t);
        t.truncate(self.m.len());
        t
    }

    /// The CIOS kernel: computes `a·b·R⁻¹ mod m` into `t[..k]`, using `t`
    /// (length `k + 2`) as the working accumulator. `a` must be exactly `k`
    /// limbs; `b` may be up to `k` limbs (shorter operands are treated as
    /// zero-extended, skipping the multiply work for the missing limbs) and
    /// its value must be below the modulus.
    fn mont_mul_into(&self, a: &[u64], b: &[u64], t: &mut [u64]) {
        let k = self.m.len();
        debug_assert_eq!(a.len(), k);
        debug_assert!(b.len() <= k);
        debug_assert_eq!(t.len(), k + 2);
        t.fill(0);
        for &ai in a.iter().take(k) {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..b.len() {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            for tj in t.iter_mut().take(k).skip(b.len()) {
                let s = *tj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // Reduce: make t divisible by 2⁶⁴ and shift down one limb.
            let u = t[0].wrapping_mul(self.m_prime);
            let mut carry = (t[0] as u128 + u as u128 * self.m[0] as u128) >> 64;
            for j in 1..k {
                let s = t[j] as u128 + u as u128 * self.m[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }
        // Conditional final subtraction to bring t below m.
        let over = t[k] != 0 || {
            let mut ge = true;
            for j in (0..k).rev() {
                match t[j].cmp(&self.m[j]) {
                    Ordering::Greater => break,
                    Ordering::Less => {
                        ge = false;
                        break;
                    }
                    Ordering::Equal => {}
                }
            }
            ge
        };
        if over {
            let mut borrow = 0i128;
            for (tj, &mj) in t.iter_mut().zip(&self.m) {
                let d = *tj as i128 - mj as i128 - borrow;
                if d < 0 {
                    *tj = (d + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    *tj = d as u64;
                    borrow = 0;
                }
            }
            t[k] = (t[k] as i128 - borrow) as u64;
        }
    }

    /// Windowed exponentiation (4-bit fixed window).
    fn pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        let k = self.m.len();
        let base_mont = self.mont_mul(&base.limbs_padded(k), &self.r_squared);
        // one in Montgomery form: R mod m = mont_mul(1, R²).
        let mut one = vec![0u64; k];
        one[0] = 1;
        let one_mont = self.mont_mul(&one, &self.r_squared);

        // Precompute base^d for d in [0, 15].
        let mut table = Vec::with_capacity(16);
        table.push(one_mont.clone());
        table.push(base_mont.clone());
        for i in 2..16 {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_mont));
        }

        let bits = exponent.bits();
        let windows = bits.div_ceil(4);
        let mut acc = one_mont;
        for w in (0..windows).rev() {
            if w + 1 != windows {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut digit = 0usize;
            for b in (0..4).rev() {
                let bit = w * 4 + b;
                if bit < bits {
                    let set = exponent.limbs[(bit / 64) as usize] >> (bit % 64) & 1;
                    digit = (digit << 1) | set as usize;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
            }
        }
        // Back out of the Montgomery domain.
        let reduced = self.mont_mul(&acc, &one);
        let out = BigUint::from_limbs(reduced);
        debug_assert!(out < self.modulus);
        out
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Maps `x` into the Montgomery domain: returns `x·R mod m` (reducing
    /// `x` first if it is not already below the modulus).
    pub fn to_montgomery(&self, x: &BigUint) -> MontgomeryOperand {
        let reduced = if x < &self.modulus {
            x.limbs_padded(self.m.len())
        } else {
            (x % &self.modulus).limbs_padded(self.m.len())
        };
        MontgomeryOperand {
            limbs: self.mont_mul(&reduced, &self.r_squared),
        }
    }

    /// Wraps a plain residue `x < m` as an operand *without* converting it
    /// into the Montgomery domain (it represents `x·R⁰`). Feeding such
    /// operands through [`montgomery_mul`](Self::montgomery_mul) accumulates
    /// one `R⁻¹` per multiplication; callers that track the deficit can
    /// cancel it with a single [`r_power`](Self::r_power) multiplication at
    /// the end (see `r_power` for the exact exponent) — one CIOS multiply
    /// per folded element instead of a full multiply plus a Knuth
    /// division.
    pub fn montgomery_residue(&self, x: &BigUint) -> MontgomeryOperand {
        let reduced = if x < &self.modulus {
            x.limbs_padded(self.m.len())
        } else {
            (x % &self.modulus).limbs_padded(self.m.len())
        };
        MontgomeryOperand { limbs: reduced }
    }

    /// The CIOS product `a·b·R⁻¹ mod m` of two operands.
    pub fn montgomery_mul(
        &self,
        a: &MontgomeryOperand,
        b: &MontgomeryOperand,
    ) -> MontgomeryOperand {
        MontgomeryOperand {
            limbs: self.mont_mul(&a.limbs, &b.limbs),
        }
    }

    /// The CIOS product `a·b·R⁻¹ mod m` where `b` is a plain residue —
    /// equivalent to `montgomery_mul(a, montgomery_residue(b))` but, in the
    /// common case of a full-width residue, without materialising the padded
    /// operand. This is the fold hot path: one such multiplication per
    /// ciphertext per aggregated vector.
    pub fn montgomery_mul_residue(&self, a: &MontgomeryOperand, b: &BigUint) -> MontgomeryOperand {
        if b.limbs.len() == self.m.len() && b < &self.modulus {
            return MontgomeryOperand {
                limbs: self.mont_mul(&a.limbs, &b.limbs),
            };
        }
        self.montgomery_mul(a, &self.montgomery_residue(b))
    }

    /// Prepares `scratch` for this context's width. A no-op (and in
    /// particular allocation-free) once the scratch has been used at this
    /// width or wider.
    fn warm_scratch<'s>(&self, scratch: &'s mut MontgomeryScratch) -> &'s mut MontgomeryScratch {
        let k = self.m.len();
        if scratch.t.len() != k + 2 {
            scratch.t.resize(k + 2, 0);
        }
        if scratch.staged.len() != k {
            scratch.staged.resize(k, 0);
        }
        scratch
    }

    /// In-place CIOS product: `acc ← acc·b·R⁻¹ mod m`, through a caller
    /// scratch. Performs no heap allocation (once the scratch is warm) —
    /// this is the steady-state fold and multi-exponentiation kernel.
    pub fn montgomery_mul_assign(
        &self,
        acc: &mut MontgomeryOperand,
        b: &MontgomeryOperand,
        scratch: &mut MontgomeryScratch,
    ) {
        let k = self.m.len();
        debug_assert_eq!(acc.limbs.len(), k, "operand from a different context");
        let scratch = self.warm_scratch(scratch);
        self.mont_mul_into(&acc.limbs, &b.limbs, &mut scratch.t);
        acc.limbs.copy_from_slice(&scratch.t[..k]);
    }

    /// In-place [`montgomery_mul_residue`](Self::montgomery_mul_residue):
    /// `acc ← acc·b·R⁻¹ mod m` for a plain residue `b`. Allocation-free when
    /// `b < m` (the CIOS kernel zero-extends a short `b` directly); a
    /// residue at or above the modulus falls back to the reducing path,
    /// which allocates.
    pub fn montgomery_mul_residue_assign(
        &self,
        acc: &mut MontgomeryOperand,
        b: &BigUint,
        scratch: &mut MontgomeryScratch,
    ) {
        let k = self.m.len();
        debug_assert_eq!(acc.limbs.len(), k, "operand from a different context");
        if b.limbs.len() <= k && (b.limbs.len() < k || b < &self.modulus) {
            let scratch = self.warm_scratch(scratch);
            self.mont_mul_into(&acc.limbs, &b.limbs, &mut scratch.t);
            acc.limbs.copy_from_slice(&scratch.t[..k]);
            return;
        }
        let reduced = self.montgomery_residue(b);
        let scratch = self.warm_scratch(scratch);
        self.mont_mul_into(&acc.limbs, &reduced.limbs, &mut scratch.t);
        acc.limbs.copy_from_slice(&scratch.t[..k]);
    }

    /// Parses a big-endian byte residue into `out` (little-endian limbs).
    /// Returns `false` when the value needs more than `out.len()` limbs.
    fn stage_be_bytes(bytes: &[u8], out: &mut [u64]) -> bool {
        out.fill(0);
        let mut limb = 0usize;
        let mut shift = 0u32;
        for &byte in bytes.iter().rev() {
            if limb >= out.len() {
                if byte != 0 {
                    return false;
                }
            } else {
                out[limb] |= (byte as u64) << shift;
            }
            shift += 8;
            if shift == 64 {
                shift = 0;
                limb += 1;
            }
        }
        true
    }

    /// `true` iff the k-limb little-endian value `limbs` is below the
    /// modulus.
    fn limbs_below_modulus(&self, limbs: &[u64]) -> bool {
        for (l, m) in limbs.iter().zip(&self.m).rev() {
            match l.cmp(m) {
                Ordering::Less => return true,
                Ordering::Greater => return false,
                Ordering::Equal => {}
            }
        }
        false
    }

    /// In-place fold of a residue parsed straight from big-endian bytes:
    /// `acc ← acc·v·R⁻¹ mod m` where `v` is the integer the bytes spell.
    /// The bytes are staged into the scratch's limb buffer — no allocation,
    /// no intermediate [`BigUint`] — which is what lets a ciphertext fold
    /// run directly over a network frame buffer. Returns `false` (leaving
    /// `acc` untouched) when the value is not below the modulus.
    pub fn montgomery_mul_be_assign(
        &self,
        acc: &mut MontgomeryOperand,
        be_bytes: &[u8],
        scratch: &mut MontgomeryScratch,
    ) -> bool {
        let k = self.m.len();
        debug_assert_eq!(acc.limbs.len(), k, "operand from a different context");
        let scratch = self.warm_scratch(scratch);
        if !Self::stage_be_bytes(be_bytes, &mut scratch.staged) {
            return false;
        }
        if !self.limbs_below_modulus(&scratch.staged) {
            return false;
        }
        self.mont_mul_into(&acc.limbs, &scratch.staged, &mut scratch.t);
        acc.limbs.copy_from_slice(&scratch.t[..k]);
        true
    }

    /// Wraps a residue spelled as big-endian bytes as a plain (`x·R⁰`)
    /// operand — the byte-level [`montgomery_residue`](Self::montgomery_residue),
    /// used to seed a fold accumulator straight from a frame buffer.
    /// Returns `None` when the value is not below the modulus.
    pub fn operand_from_be_bytes(&self, be_bytes: &[u8]) -> Option<MontgomeryOperand> {
        let mut limbs = vec![0u64; self.m.len()];
        if !Self::stage_be_bytes(be_bytes, &mut limbs) {
            return None;
        }
        if !self.limbs_below_modulus(&limbs) {
            return None;
        }
        Some(MontgomeryOperand { limbs })
    }

    /// Maps an operand out of the Montgomery domain: returns `a·R⁻¹ mod m`
    /// (the plain value, for an operand produced by
    /// [`to_montgomery`](Self::to_montgomery)).
    pub fn from_montgomery(&self, a: &MontgomeryOperand) -> BigUint {
        let mut one = vec![0u64; self.m.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(&a.limbs, &one))
    }

    /// `R^e mod m`, where `R = 2^(64k)` is this context's Montgomery radix.
    /// The correction factor for deficit-tracking folds: after folding `V`
    /// plain residues with `V − 1` calls to
    /// [`montgomery_mul`](Self::montgomery_mul) the accumulator holds the
    /// product times `R^-(V-1)`; multiplying by
    /// `montgomery_residue(r_power(V + 1))` — whose own multiplication
    /// costs one more `R⁻¹` — leaves it in Montgomery form, and the final
    /// [`from_montgomery`](Self::from_montgomery) exit (another `R⁻¹`)
    /// lands exactly on the product mod m, as the crate tests pin.
    pub fn r_power(&self, e: u64) -> BigUint {
        // R mod m = R²·1·R⁻¹ via one reduction, then a windowed modpow with
        // the (tiny) exponent e.
        let mut one = vec![0u64; self.m.len()];
        one[0] = 1;
        let r_mod_m = BigUint::from_limbs(self.mont_mul(&self.r_squared, &one));
        self.modpow(&r_mod_m, &BigUint::from(e))
    }

    /// `base^exponent mod m` using this precomputed context.
    ///
    /// Bit-for-bit identical to [`BigUint::modpow`] with the same odd
    /// modulus, but without re-deriving `R² mod m` on every call.
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if self.modulus.is_one() {
            return BigUint::default();
        }
        if exponent.limbs.is_empty() {
            return BigUint::one();
        }
        self.pow(&(base % &self.modulus), exponent)
    }
}

impl BigUint {
    fn limbs_padded(&self, k: usize) -> Vec<u64> {
        let mut v = self.limbs.clone();
        v.resize(k.max(v.len()), 0);
        v
    }
}

// ---------------------------------------------------------------------------
// Trait implementations
// ---------------------------------------------------------------------------

impl Zero for BigUint {
    fn zero() -> Self {
        BigUint::default()
    }
    fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }
}

impl One for BigUint {
    fn one() -> Self {
        BigUint { limbs: vec![1] }
    }
    fn is_one(&self) -> bool {
        self.limbs == [1]
    }
}

impl Integer for BigUint {
    fn gcd(&self, other: &Self) -> Self {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.limbs.is_empty() {
            let r = a.div_rem_ref(&b).1;
            a = b;
            b = r;
        }
        a
    }

    fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for BigUint {
            fn from(v: $t) -> Self {
                let mut v = v as u128;
                let mut limbs = Vec::with_capacity(2);
                while v != 0 {
                    limbs.push(v as u64);
                    v >>= 64;
                }
                BigUint { limbs }
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$inner(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$inner(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$inner(&rhs)
            }
        }
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$inner(rhs)
            }
        }
    };
}

impl BigUint {
    fn rem_ref(&self, rhs: &Self) -> Self {
        self.div_rem_ref(rhs).1
    }
    fn div_ref(&self, rhs: &Self) -> Self {
        self.div_rem_ref(rhs).0
    }
}

impl_binop!(Add, add, add_ref);
impl_binop!(Sub, sub, sub_ref);
impl_binop!(Mul, mul, mul_ref);
impl_binop!(Rem, rem, rem_ref);
impl_binop!(Div, div, div_ref);

impl Shl<u32> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: u32) -> BigUint {
        self.shl_bits(bits as usize)
    }
}

impl Shl<u32> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u32) -> BigUint {
        self.shl_bits(bits as usize)
    }
}

impl Shr<u32> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: u32) -> BigUint {
        self.shr_bits(bits as usize)
    }
}

impl Shr<u32> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u32) -> BigUint {
        self.shr_bits(bits as usize)
    }
}

impl ShrAssign<u32> for BigUint {
    fn shr_assign(&mut self, bits: u32) {
        *self = self.shr_bits(bits as usize);
    }
}

impl BitOrAssign<BigUint> for BigUint {
    fn bitor_assign(&mut self, rhs: BigUint) {
        if rhs.limbs.len() > self.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        for (i, limb) in rhs.limbs.iter().enumerate() {
            self.limbs[i] |= limb;
        }
    }
}

impl BitAnd<&BigUint> for BigUint {
    type Output = BigUint;
    fn bitand(self, rhs: &BigUint) -> BigUint {
        let len = self.limbs.len().min(rhs.limbs.len());
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            out.push(self.limbs[i] & rhs.limbs[i]);
        }
        BigUint::from_limbs(out)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

/// Error produced when parsing a decimal string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal big integer")
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigUintError);
        }
        let ten_pow_19 = BigUint::from(10_000_000_000_000_000_000u64);
        let mut out = BigUint::default();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 19).min(bytes.len());
            let chunk: u64 = s[i..end].parse().map_err(|_| ParseBigUintError)?;
            let scale = if end - i == 19 {
                ten_pow_19.clone()
            } else {
                BigUint::from(10u64.pow((end - i) as u32))
            };
            out = out.mul_ref(&scale).add_ref(&BigUint::from(chunk));
            i = end;
        }
        Ok(out)
    }
}

impl serde::Serialize for BigUint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_decimal())
    }
}

impl serde::Deserialize for BigUint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => s
                .parse()
                .map_err(|_| serde::DeError::custom("invalid BigUint string")),
            serde::Value::UInt(u) => Ok(BigUint::from(*u)),
            _ => Err(serde::DeError::custom("expected a decimal string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "123456789012345678901234567890123456789012345678901234567890",
        ] {
            assert_eq!(big(s).to_string(), s);
        }
    }

    #[test]
    fn arithmetic_matches_u128() {
        let cases: [(u128, u128); 6] = [
            (0, 7),
            (u64::MAX as u128, u64::MAX as u128),
            (u64::MAX as u128 + 1, 3),
            (123_456_789_012_345_678_901, 987_654_321),
            (u128::MAX / 2, 2),
            (99, 100),
        ];
        for (a, b) in cases {
            let (ba, bb) = (BigUint::from(a), BigUint::from(b));
            assert_eq!((&ba + &bb).to_string(), (a + b).to_string());
            assert_eq!((&ba * &bb).to_string(), (a * b).to_string());
            if let (Some(q), Some(r)) = (a.checked_div(b), a.checked_rem(b)) {
                assert_eq!((&ba / &bb).to_string(), q.to_string());
                assert_eq!((&ba % &bb).to_string(), r.to_string());
            }
            if a >= b {
                assert_eq!((&ba - &bb).to_string(), (a - b).to_string());
            }
        }
    }

    #[test]
    fn multi_limb_division_exercises_add_back() {
        // Quotient-estimate correction paths need divisors with small top limbs.
        let a = big("340282366920938463463374607431768211455000000000000000001");
        let b = big("18446744073709551617");
        let (q, r) = a.div_rem_ref(&b);
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        assert!(r < b);
    }

    #[test]
    fn modpow_matches_naive() {
        let m = big("1000000007");
        let base = big("1234567");
        let exp = big("65537");
        // naive
        let mut acc = BigUint::one();
        for _ in 0..65537u32 {
            acc = acc.mul_ref(&base).div_rem_ref(&m).1;
        }
        assert_eq!(base.modpow(&exp, &m), acc);
    }

    #[test]
    fn modpow_large_odd_modulus_fermat() {
        // 2^61 - 1 is prime: a^(p-1) ≡ 1 (mod p).
        let p = (BigUint::one() << 61u32) - BigUint::one();
        let a = big("123456789123456789");
        let exp = &p - BigUint::one();
        assert!(a.modpow(&exp, &p).is_one());
    }

    #[test]
    fn modpow_even_modulus_fallback() {
        let m = BigUint::from(1u64 << 32);
        let r = BigUint::from(3u64).modpow(&BigUint::from(20u64), &m);
        assert_eq!(r.to_string(), 3u64.pow(20).rem_euclid(1 << 32).to_string());
    }

    #[test]
    fn cached_montgomery_context_matches_one_shot_modpow() {
        // The reusable context must be bit-for-bit identical to the uncached
        // path for every exponent shape, including the 0 and 1 edge cases.
        let m = big("340282366920938463463374607431768211507"); // odd, 2 limbs
        let ctx = MontgomeryContext::new(&m);
        assert_eq!(ctx.modulus(), &m);
        let bases = [
            BigUint::default(),
            BigUint::one(),
            big("987654321987654321"),
            big("340282366920938463463374607431768211509"), // > m: reduced first
        ];
        let exps = [
            BigUint::default(),
            BigUint::one(),
            big("2"),
            big("65537"),
            big("340282366920938463463374607431768211456"),
        ];
        for b in &bases {
            for e in &exps {
                assert_eq!(ctx.modpow(b, e), b.modpow(e, &m), "base {b} exp {e}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn montgomery_context_rejects_even_modulus() {
        let _ = MontgomeryContext::new(&BigUint::from(10u64));
    }

    #[test]
    fn montgomery_domain_round_trip() {
        let m = big("340282366920938463463374607431768211507");
        let ctx = MontgomeryContext::new(&m);
        for x in [
            BigUint::default(),
            BigUint::one(),
            big("987654321987654321"),
            big("340282366920938463463374607431768211509"), // > m: reduced first
        ] {
            let dom = ctx.to_montgomery(&x);
            assert_eq!(ctx.from_montgomery(&dom), &x % &m, "round trip of {x}");
        }
    }

    #[test]
    fn in_domain_multiply_matches_plain_modular_product() {
        let m = big("340282366920938463463374607431768211507");
        let ctx = MontgomeryContext::new(&m);
        let a = big("123456789012345678901234567890");
        let b = big("340282366920938463463374607431768211480");
        let prod = ctx.montgomery_mul(&ctx.to_montgomery(&a), &ctx.to_montgomery(&b));
        assert_eq!(ctx.from_montgomery(&prod), (&a * &b) % &m);
    }

    #[test]
    fn deficit_tracked_fold_restores_the_exact_product() {
        // Fold plain residues with montgomery_mul (one R⁻¹ deficit per
        // multiplication) and cancel the deficit with r_power(V).
        let m = big("340282366920938463463374607431768211507");
        let ctx = MontgomeryContext::new(&m);
        for count in [1usize, 2, 5, 9] {
            let values: Vec<BigUint> = (0..count)
                .map(|i| big("987654321987654321").modpow(&BigUint::from(i as u64 + 2), &m))
                .collect();
            let mut naive = BigUint::one();
            for v in &values {
                naive = naive.mul_ref(v).div_rem_ref(&m).1;
            }
            // V - 1 in-domain multiplies leave the product short V - 1
            // factors of R; multiplying by R^(V+1) (one more R⁻¹ from the
            // multiply) puts the accumulator in domain form, and the final
            // exit lands exactly on the product.
            let mut acc = ctx.montgomery_residue(&values[0]);
            for v in &values[1..] {
                acc = ctx.montgomery_mul(&acc, &ctx.montgomery_residue(v));
            }
            let correction = ctx.montgomery_residue(&ctx.r_power(count as u64 + 1));
            let folded = ctx.from_montgomery(&ctx.montgomery_mul(&acc, &correction));
            assert_eq!(folded, naive, "count {count}");
        }
    }

    #[test]
    fn scratch_assign_multiplies_match_the_allocating_path() {
        let m = big("340282366920938463463374607431768211507");
        let ctx = MontgomeryContext::new(&m);
        let mut scratch = MontgomeryScratch::new();
        let a = big("123456789012345678901234567890");
        let bs = [
            BigUint::default(),
            BigUint::one(),
            big("42"), // short operand: fewer limbs than the modulus
            big("340282366920938463463374607431768211480"),
            big("680564733841876926926749214863536422975"), // ≥ m: reducing fallback
        ];
        for b in &bs {
            // montgomery_mul vs montgomery_mul_assign.
            let expected = ctx.montgomery_mul(&ctx.to_montgomery(&a), &ctx.to_montgomery(b));
            let mut acc = ctx.to_montgomery(&a);
            ctx.montgomery_mul_assign(&mut acc, &ctx.to_montgomery(b), &mut scratch);
            assert_eq!(acc.raw_residue(), expected.raw_residue(), "b = {b}");
            // montgomery_mul_residue vs montgomery_mul_residue_assign.
            let expected = ctx.montgomery_mul_residue(&ctx.to_montgomery(&a), b);
            let mut acc = ctx.to_montgomery(&a);
            ctx.montgomery_mul_residue_assign(&mut acc, b, &mut scratch);
            assert_eq!(acc.raw_residue(), expected.raw_residue(), "residue b = {b}");
        }
    }

    #[test]
    fn byte_level_fold_matches_the_biguint_path() {
        let m = big("340282366920938463463374607431768211507");
        let ctx = MontgomeryContext::new(&m);
        let mut scratch = MontgomeryScratch::new();
        let a = big("123456789012345678901234567890");
        for b in [
            BigUint::one(),
            big("42"),
            big("340282366920938463463374607431768211480"),
        ] {
            let expected = ctx.montgomery_mul_residue(&ctx.to_montgomery(&a), &b);
            // Fixed-width big-endian encoding, as a wire frame would carry.
            let mut bytes = vec![0u8; 32 - b.to_bytes_be().len()];
            bytes.extend(b.to_bytes_be());
            let mut acc = ctx.to_montgomery(&a);
            assert!(ctx.montgomery_mul_be_assign(&mut acc, &bytes, &mut scratch));
            assert_eq!(acc.raw_residue(), expected.raw_residue(), "b = {b}");
            // Seeding an operand from the same bytes round-trips.
            let seeded = ctx.operand_from_be_bytes(&bytes).expect("below modulus");
            assert_eq!(seeded.raw_residue(), b);
        }
        // A residue at the modulus (or past it) is refused, acc untouched.
        let mut acc = ctx.to_montgomery(&a);
        let before = acc.raw_residue();
        assert!(!ctx.montgomery_mul_be_assign(&mut acc, &m.to_bytes_be(), &mut scratch));
        assert_eq!(acc.raw_residue(), before);
        assert!(ctx.operand_from_be_bytes(&m.to_bytes_be()).is_none());
        // A value too wide for the staging buffer is refused, not truncated.
        let wide = vec![0xffu8; 40];
        assert!(!ctx.montgomery_mul_be_assign(&mut acc, &wide, &mut scratch));
        assert!(ctx.operand_from_be_bytes(&wide).is_none());
        // Leading zero bytes beyond the limb width are harmless.
        let mut padded = vec![0u8; 48 - 32];
        let b = big("987654321");
        padded.extend(vec![0u8; 32 - b.to_bytes_be().len()]);
        padded.extend(b.to_bytes_be());
        assert!(ctx.operand_from_be_bytes(&padded).is_some());
    }

    #[test]
    fn r_power_matches_shifted_one() {
        let m = big("340282366920938463463374607431768211507");
        let k = (m.bits() as usize).div_ceil(64); // R = 2^(64k)
        let ctx = MontgomeryContext::new(&m);
        for e in [0u64, 1, 2, 7, 33] {
            let expected = BigUint::one()
                .shl_bits(64 * k * e as usize)
                .div_rem_ref(&m)
                .1;
            assert_eq!(ctx.r_power(e), expected, "R^{e}");
        }
    }

    #[test]
    fn bits_and_set_bit() {
        let mut v = BigUint::default();
        assert_eq!(v.bits(), 0);
        v.set_bit(127, true);
        assert_eq!(v.bits(), 128);
        v.set_bit(0, true);
        assert!(!v.is_even());
        v.set_bit(127, false);
        assert_eq!(v.bits(), 1);
    }

    #[test]
    fn byte_round_trip() {
        let v = big("123456789012345678901234567890");
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(BigUint::default().to_bytes_be(), vec![0]);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from(54u32).gcd(&BigUint::from(24u32)),
            BigUint::from(6u32)
        );
        assert_eq!(
            BigUint::from(17u32).gcd(&BigUint::from(5u32)),
            BigUint::one()
        );
    }

    #[test]
    fn shifts() {
        let one = BigUint::one();
        assert_eq!((&one << 64u32).to_string(), "18446744073709551616");
        assert_eq!(((&one << 64u32) >> 64u32), one);
        let mut d = BigUint::from(8u32);
        d >>= 1;
        assert_eq!(d, BigUint::from(4u32));
    }
}
