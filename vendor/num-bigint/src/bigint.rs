//! Signed arbitrary-precision integers (sign + magnitude).
//!
//! Only the surface needed by the workspace's extended-GCD / modular-inverse
//! code is provided.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{AddAssign, Mul, Rem, Sub};

use num_integer::{ExtendedGcd, Integer};
use num_traits::{One, Zero};

use crate::biguint::BigUint;

/// The sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Negative.
    Minus,
    /// Zero.
    NoSign,
    /// Positive.
    Plus,
}

/// An arbitrary-precision signed integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// Builds a signed integer from a sign and magnitude (zero magnitudes are
    /// normalised to `NoSign`).
    pub fn from_biguint(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt {
                sign: Sign::NoSign,
                mag,
            }
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Converts to a [`BigUint`], or `None` when negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        match self.sign {
            Sign::Minus => None,
            _ => Some(self.mag.clone()),
        }
    }

    fn neg(&self) -> Self {
        let sign = match self.sign {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
            Sign::NoSign => Sign::NoSign,
        };
        BigInt {
            sign,
            mag: self.mag.clone(),
        }
    }

    fn add_ref(&self, other: &Self) -> Self {
        match (self.sign, other.sign) {
            (Sign::NoSign, _) => other.clone(),
            (_, Sign::NoSign) => self.clone(),
            (a, b) if a == b => BigInt::from_biguint(a, self.mag.add_ref(&other.mag)),
            _ => match self.mag.cmp(&other.mag) {
                Ordering::Equal => BigInt::from_biguint(Sign::NoSign, BigUint::zero()),
                Ordering::Greater => BigInt::from_biguint(self.sign, self.mag.sub_ref(&other.mag)),
                Ordering::Less => BigInt::from_biguint(other.sign, other.mag.sub_ref(&self.mag)),
            },
        }
    }

    fn sub_ref(&self, other: &Self) -> Self {
        self.add_ref(&other.neg())
    }

    fn mul_ref(&self, other: &Self) -> Self {
        let sign = match (self.sign, other.sign) {
            (Sign::NoSign, _) | (_, Sign::NoSign) => Sign::NoSign,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        BigInt::from_biguint(sign, self.mag.mul_ref(&other.mag))
    }

    /// Truncated division (quotient rounds toward zero, remainder takes the
    /// dividend's sign), matching `num-bigint`.
    fn div_rem_ref(&self, other: &Self) -> (Self, Self) {
        let (q_mag, r_mag) = self.mag.div_rem_ref(&other.mag);
        let q_sign = match (self.sign, other.sign) {
            (Sign::NoSign, _) => Sign::NoSign,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        (
            BigInt::from_biguint(q_sign, q_mag),
            BigInt::from_biguint(self.sign, r_mag),
        )
    }
}

impl Zero for BigInt {
    fn zero() -> Self {
        BigInt {
            sign: Sign::NoSign,
            mag: BigUint::zero(),
        }
    }
    fn is_zero(&self) -> bool {
        self.sign == Sign::NoSign
    }
}

impl One for BigInt {
    fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }
    fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag.is_one()
    }
}

impl Integer for BigInt {
    fn extended_gcd(&self, other: &Self) -> ExtendedGcd<Self> {
        let (mut old_r, mut r) = (self.clone(), other.clone());
        let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
        let (mut old_t, mut t) = (BigInt::zero(), BigInt::one());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem_ref(&r);
            old_r = std::mem::replace(&mut r, rem);
            let new_s = old_s.sub_ref(&q.mul_ref(&s));
            old_s = std::mem::replace(&mut s, new_s);
            let new_t = old_t.sub_ref(&q.mul_ref(&t));
            old_t = std::mem::replace(&mut t, new_t);
        }
        // Normalise the gcd to be non-negative.
        if old_r.sign == Sign::Minus {
            old_r = old_r.neg();
            old_s = old_s.neg();
            old_t = old_t.neg();
        }
        ExtendedGcd {
            gcd: old_r,
            x: old_s,
            y: old_t,
        }
    }
}

impl Rem<&BigInt> for BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem_ref(rhs).1
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = self.add_ref(rhs);
    }
}

impl Sub<&BigInt> for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self.sub_ref(rhs)
    }
}

impl Mul<&BigInt> for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        self.mul_ref(rhs)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            f.write_str("-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        let sign = match v.cmp(&0) {
            Ordering::Less => Sign::Minus,
            Ordering::Equal => Sign::NoSign,
            Ordering::Greater => Sign::Plus,
        };
        BigInt::from_biguint(sign, BigUint::from(v.unsigned_abs()))
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240i64, 46i64), (17, 5), (12, 8), (1, 1)] {
            let e = int(a).extended_gcd(&int(b));
            let lhs = int(a).mul_ref(&e.x).add_ref(&int(b).mul_ref(&e.y));
            assert_eq!(lhs, e.gcd, "Bezout failed for ({a}, {b})");
        }
        let e = int(240).extended_gcd(&int(46));
        assert_eq!(e.gcd, int(2));
    }

    #[test]
    fn rem_takes_dividend_sign() {
        let r = int(-7) % &int(3);
        assert_eq!(r, int(-1));
        let mut r = int(-1);
        r += &int(3);
        assert_eq!(r, int(2));
    }
}
