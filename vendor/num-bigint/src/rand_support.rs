//! Random big-integer generation (the `RandBigInt` extension trait).

use rand::RngCore;

use crate::biguint::BigUint;

/// Uniform random [`BigUint`] sampling, available on every RNG.
pub trait RandBigInt {
    /// Samples uniformly from `[0, 2^bits)`.
    fn gen_biguint(&mut self, bits: u64) -> BigUint;

    /// Samples uniformly from `[0, bound)` by rejection.
    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint;
}

impl<R: RngCore + ?Sized> RandBigInt for R {
    fn gen_biguint(&mut self, bits: u64) -> BigUint {
        let limbs = bits.div_ceil(64);
        let mut out = Vec::with_capacity(limbs as usize);
        for _ in 0..limbs {
            out.push(self.next_u64());
        }
        let partial = bits % 64;
        if partial != 0 {
            if let Some(top) = out.last_mut() {
                *top &= (1u64 << partial) - 1;
            }
        }
        BigUint::from_limbs(out)
    }

    fn gen_biguint_below(&mut self, bound: &BigUint) -> BigUint {
        assert!(!bound.to_u64_digits().is_empty(), "bound must be positive");
        let bits = bound.bits();
        loop {
            let candidate = self.gen_biguint(bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn below_stays_below() {
        let mut rng = StdRng::seed_from_u64(5);
        let bound: BigUint = "123456789012345678901234567890".parse().unwrap();
        for _ in 0..200 {
            assert!(rng.gen_biguint_below(&bound) < bound);
        }
    }

    #[test]
    fn bit_budget_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(rng.gen_biguint(100).bits() <= 100);
        }
    }
}
