//! Offline stand-in for the `num-bigint` crate.
//!
//! Arbitrary-precision unsigned/signed integers with the API surface the
//! Dubhe workspace uses. The representation is a little-endian `Vec<u64>` of
//! limbs with no trailing zeros. Division is Knuth's Algorithm D;
//! [`BigUint::modpow`] uses Montgomery multiplication (CIOS) with a 4-bit
//! window for odd moduli — the operation every Paillier encryption,
//! decryption and re-randomisation bottoms out in.

mod bigint;
mod biguint;
mod rand_support;

pub use bigint::{BigInt, Sign};
pub use biguint::{BigUint, MontgomeryContext, MontgomeryOperand, MontgomeryScratch};
pub use rand_support::RandBigInt;
