//! Offline stand-in for the `rayon` crate.
//!
//! Implements the parallel-iterator surface the workspace uses with plain
//! `std::thread::scope` fan-out instead of a work-stealing pool: the input is
//! split into one contiguous block per available core, each block is processed
//! on its own scoped thread, and results are reassembled in order. Semantics
//! (ordering, determinism for pure closures) match rayon for the operations
//! offered: `par_iter().map(..).collect()`, `par_iter().for_each(..)` and
//! `par_chunks_mut(..).enumerate().for_each(..)`.

use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{ParChunksMutExt, ParSliceExt};
}

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// Runs `f` over `0..items`, split into per-worker contiguous index blocks;
/// returns each block's output in order.
fn fan_out<R: Send>(items: usize, f: impl Fn(std::ops::Range<usize>) -> Vec<R> + Sync) -> Vec<R> {
    let workers = worker_count(items);
    if workers <= 1 {
        return f(0..items);
    }
    let chunk = items.div_ceil(workers);
    let mut pieces: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(items);
                let f = &f;
                scope.spawn(move || f(start..end))
            })
            .collect();
        for handle in handles {
            pieces.push(handle.join().expect("parallel worker panicked"));
        }
    });
    pieces.into_iter().flatten().collect()
}

/// Entry point for shared parallel iteration over slices.
pub trait ParSliceExt<T: Sync> {
    /// A parallel iterator over the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> ParSliceExt<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        fan_out(self.items.len(), |range| {
            for item in &self.items[range] {
                f(item);
            }
            Vec::<()>::new()
        });
    }
}

/// A mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluates the map in parallel, preserving input order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        let f = &self.f;
        let out = fan_out(self.items.len(), |range| {
            self.items[range].iter().map(f).collect()
        });
        C::from_ordered(out)
    }

    /// Parallel sum of the mapped values.
    pub fn sum<S: std::iter::Sum<R> + Send>(self) -> S
    where
        R: Send,
    {
        let f = &self.f;
        let parts = fan_out(self.items.len(), |range| {
            self.items[range].iter().map(f).collect::<Vec<R>>()
        });
        parts.into_iter().sum()
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallel<R> {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

impl<A, E> FromParallel<Result<A, E>> for Result<Vec<A>, E> {
    fn from_ordered(items: Vec<Result<A, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Entry point for parallel iteration over disjoint mutable chunks.
pub trait ParChunksMutExt<T: Send> {
    /// A parallel iterator over `chunk_size`-sized mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParChunksMutExt<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

impl<T: Send> ParChunksMutExt<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

/// Parallel iterator over disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        let chunks: Vec<(usize, &mut [T])> =
            self.inner.data.chunks_mut(chunk_size).enumerate().collect();
        let n = chunks.len();
        let workers = worker_count(n);
        if workers <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        // Hand each worker an interleaved share of the chunks.
        let mut shares: Vec<Vec<(usize, &mut [T])>> = (0..workers)
            .map(|_| Vec::with_capacity(n / workers + 1))
            .collect();
        for (i, pair) in chunks.into_iter().enumerate() {
            shares[i % workers].push(pair);
        }
        std::thread::scope(|scope| {
            for share in shares {
                let f = &f;
                scope.spawn(move || {
                    for pair in share {
                        f(pair);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, input.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_collect_into_result() {
        let input: Vec<u64> = (0..100).collect();
        let ok: Result<Vec<u64>, String> =
            input.par_iter().map(|&x| Ok::<_, String>(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u64>, String> = input
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1002], 101);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
