//! Offline stand-in for the `num-traits` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of numeric traits the Paillier substrate relies on are provided
//! here with identical names and signatures. Only what the workspace actually
//! calls is implemented.

/// Additive identity.
pub trait Zero: Sized {
    /// Returns the additive identity.
    fn zero() -> Self;
    /// Returns `true` if `self` is the additive identity.
    fn is_zero(&self) -> bool;
}

/// Multiplicative identity.
pub trait One: Sized {
    /// Returns the multiplicative identity.
    fn one() -> Self;
    /// Returns `true` if `self` is the multiplicative identity.
    fn is_one(&self) -> bool;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self { 0 }
            fn is_zero(&self) -> bool { *self == 0 }
        }
        impl One for $t {
            fn one() -> Self { 1 }
            fn is_one(&self) -> bool { *self == 1 }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Zero for $t {
            fn zero() -> Self { 0.0 }
            fn is_zero(&self) -> bool { *self == 0.0 }
        }
        impl One for $t {
            fn one() -> Self { 1.0 }
            fn is_one(&self) -> bool { *self == 1.0 }
        }
    )*};
}

impl_float!(f32, f64);
