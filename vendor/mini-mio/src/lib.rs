//! Offline stand-in for the `mio` crate: a minimal readiness-polling
//! reactor.
//!
//! The build container has no crates.io access, so — like the other
//! `vendor/` crates — this implements exactly the surface the workspace
//! needs, with the same shape as the real thing so swapping back is a
//! near-manifest-only change:
//!
//! * [`Poll`] — the selector. Two backends, chosen at construction:
//!   [`Backend::Epoll`] (Linux, `epoll_create1`/`epoll_ctl`/`epoll_wait`
//!   declared as our own `extern "C"` bindings against the always-linked
//!   system libc) and [`Backend::Portable`] (`poll(2)`, any Unix). Both are
//!   **level-triggered**: a socket that still has unread bytes or writable
//!   buffer space keeps reporting ready, which is the simpler contract for
//!   incremental frame reassembly.
//! * [`Registry`] — a cheaply clonable registration handle
//!   (`register`/`reregister`/`deregister` by [`Token`] + [`Interest`]).
//! * [`Events`] / [`Event`] — the readiness batch one `poll` call fills.
//! * [`Waker`] — a cross-thread wake-up (`UnixStream` self-pipe). Unlike
//!   mio's, the event loop must call [`Waker::drain`] when its token fires
//!   (level-triggered pipe; documented difference, two lines at the call
//!   site).
//!
//! Differences from real mio, all deliberate: no edge-triggered mode, no
//! `Source` trait (anything `AsRawFd` registers), and `Registry` mutations
//! from *other* threads are only guaranteed to be observed by a blocked
//! `poll` after a [`Waker::wake`] (the epoll backend observes them
//! immediately, the portable one snapshots its fd set per call — callers
//! that register from the polling thread only, as `dubhe-net` does, never
//! see the difference).

#![cfg(unix)]

use std::io;
use std::io::{Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

mod epoll;
mod portable;

/// Identifies one registered event source in a readiness batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness a registration asks to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness (bytes to read, EOF, or a pending accept).
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness (send-buffer space, or a completed connect).
    pub const WRITABLE: Interest = Interest(0b10);
    /// Both directions.
    pub const BOTH: Interest = Interest(0b11);

    /// True if this interest includes readable readiness.
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// True if this interest includes writable readiness.
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness report: which token, and which ways it is ready.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    readable: bool,
    writable: bool,
    error: bool,
    hup: bool,
}

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Ready to read (includes EOF and pending accepts).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Ready to write.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The source reported an error condition; read/write it to collect the
    /// actual `io::Error`.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// The peer hung up.
    pub fn is_hup(&self) -> bool {
        self.hup
    }
}

/// The readiness batch one [`Poll::poll`] call fills.
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A batch that reports at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True if the last poll reported nothing (timeout or spurious wake).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// How many events the last poll reported.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn push(&mut self, e: Event) {
        self.inner.push(e);
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Which readiness mechanism backs a [`Poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) wake-ups, the production default.
    Epoll,
    /// POSIX `poll(2)` — O(registered) per call, works on any Unix.
    Portable,
}

enum PollImpl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollPoll),
    Portable(portable::PortablePoll),
}

enum RegistryImpl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollRegistry),
    Portable(portable::PortableRegistry),
}

/// The selector: registered sources in, readiness batches out.
pub struct Poll {
    inner: PollImpl,
}

impl Poll {
    /// The best backend for this platform (epoll on Linux, `poll(2)`
    /// elsewhere).
    pub fn new() -> io::Result<Poll> {
        #[cfg(target_os = "linux")]
        {
            Poll::with_backend(Backend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poll::with_backend(Backend::Portable)
        }
    }

    /// An explicit backend — lets tests exercise the portable fallback on
    /// Linux too.
    pub fn with_backend(backend: Backend) -> io::Result<Poll> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Poll {
                inner: PollImpl::Epoll(epoll::EpollPoll::new()?),
            }),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the epoll backend is Linux-only; use Backend::Portable",
            )),
            Backend::Portable => Ok(Poll {
                inner: PollImpl::Portable(portable::PortablePoll::new()),
            }),
        }
    }

    /// The backend actually in use.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            #[cfg(target_os = "linux")]
            PollImpl::Epoll(_) => Backend::Epoll,
            PollImpl::Portable(_) => Backend::Portable,
        }
    }

    /// A clonable registration handle (usable from other threads; see the
    /// crate docs for the portable backend's visibility caveat).
    pub fn registry(&self) -> Registry {
        match &self.inner {
            #[cfg(target_os = "linux")]
            PollImpl::Epoll(p) => Registry {
                inner: RegistryImpl::Epoll(p.registry()),
            },
            PollImpl::Portable(p) => Registry {
                inner: RegistryImpl::Portable(p.registry()),
            },
        }
    }

    /// Blocks until at least one registered source is ready, the timeout
    /// elapses (`events` left empty), or a [`Waker`] fires. `None` blocks
    /// indefinitely. Retries `EINTR` internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.inner {
            #[cfg(target_os = "linux")]
            PollImpl::Epoll(p) => p.poll(events, timeout),
            PollImpl::Portable(p) => p.poll(events, timeout),
        }
    }
}

impl std::fmt::Debug for Poll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poll")
            .field("backend", &self.backend())
            .finish()
    }
}

/// Registers, updates and removes event sources on a [`Poll`].
pub struct Registry {
    inner: RegistryImpl,
}

impl Registry {
    /// Starts watching `source` under `token` for `interest`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.inner {
            #[cfg(target_os = "linux")]
            RegistryImpl::Epoll(r) => r.register(source.as_raw_fd(), token.0, interest),
            RegistryImpl::Portable(r) => r.register(source.as_raw_fd(), token.0, interest),
        }
    }

    /// Changes the token/interest of an already-registered source.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.inner {
            #[cfg(target_os = "linux")]
            RegistryImpl::Epoll(r) => r.reregister(source.as_raw_fd(), token.0, interest),
            RegistryImpl::Portable(r) => r.reregister(source.as_raw_fd(), token.0, interest),
        }
    }

    /// Stops watching `source`. Always deregister before closing the fd —
    /// a closed-but-registered fd is undefined behaviour under epoll.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.inner {
            #[cfg(target_os = "linux")]
            RegistryImpl::Epoll(r) => r.deregister(source.as_raw_fd()),
            RegistryImpl::Portable(r) => r.deregister(source.as_raw_fd()),
        }
    }
}

impl Clone for Registry {
    fn clone(&self) -> Registry {
        match &self.inner {
            #[cfg(target_os = "linux")]
            RegistryImpl::Epoll(r) => Registry {
                inner: RegistryImpl::Epoll(r.clone()),
            },
            RegistryImpl::Portable(r) => Registry {
                inner: RegistryImpl::Portable(r.clone()),
            },
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registry")
    }
}

/// Wakes a blocked [`Poll::poll`] from another thread.
///
/// Implemented as a nonblocking `UnixStream` self-pipe whose read end is
/// registered like any other source: [`wake`](Self::wake) makes the poll
/// report the waker's token readable. **The event loop must call
/// [`drain`](Self::drain) when it sees that token** — the pipe is
/// level-triggered, so an undrained waker fires forever.
#[derive(Debug)]
pub struct Waker {
    reader: UnixStream,
    writer: UnixStream,
}

impl Waker {
    /// Creates the pipe and registers its read end under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        registry.register(&reader, token, Interest::READABLE)?;
        Ok(Waker { reader, writer })
    }

    /// Makes the poll report this waker's token readable. Cheap, thread-safe
    /// and coalescing: a full pipe means a wake is already pending, which is
    /// all that matters.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.writer).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes pending wake bytes so the token stops reporting readable.
    /// Call from the event loop when the waker's token fires.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.reader).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Portable]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Portable]
        }
    }

    #[test]
    fn accept_readiness_is_reported_on_both_backends() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poll.registry()
                .register(&listener, Token(7), Interest::READABLE)
                .unwrap();

            let mut events = Events::with_capacity(8);
            // Nothing pending: a short timeout comes back empty.
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious readiness");

            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let e = events.iter().next().expect("accept readiness");
            assert_eq!(e.token(), Token(7));
            assert!(e.is_readable());
            poll.registry().deregister(&listener).unwrap();
        }
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let waker = std::sync::Arc::new(Waker::new(&poll.registry(), Token(0)).unwrap());
            let remote = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                remote.wake().unwrap();
            });
            let mut events = Events::with_capacity(4);
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.iter().next().unwrap().token(), Token(0));
            waker.drain();
            // Drained: the next short poll is quiet again.
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: waker did not drain");
            t.join().unwrap();
        }
    }

    #[test]
    fn writable_interest_and_reregistration() {
        for backend in backends() {
            let mut poll = Poll::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            stream.set_nonblocking(true).unwrap();
            poll.registry()
                .register(&stream, Token(1), Interest::WRITABLE)
                .unwrap();
            let mut events = Events::with_capacity(4);
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events
                .iter()
                .any(|e| e.token() == Token(1) && e.is_writable()));

            // Down to readable-only: an idle connected socket reports nothing.
            poll.registry()
                .reregister(&stream, Token(2), Interest::READABLE)
                .unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token() != Token(1)),
                "{backend:?}: stale interest after reregister"
            );
            poll.registry().deregister(&stream).unwrap();
        }
    }
}
