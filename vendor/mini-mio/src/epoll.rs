//! The Linux `epoll` backend.
//!
//! The container builds offline, so instead of depending on the `libc`
//! crate this file declares the four syscall wrappers it needs directly —
//! they resolve against the system libc that every `std` Linux binary links
//! anyway. Level-triggered (no `EPOLLET`), matching the crate contract.

#![cfg(target_os = "linux")]

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

use crate::{Event, Events, Interest};

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Mirrors the kernel's `struct epoll_event`. Packed on x86/x86_64, where
/// the kernel ABI declares it `__attribute__((packed))`.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn interest_mask(interest: Interest) -> u32 {
    let mut mask = EPOLLRDHUP;
    if interest.is_readable() {
        mask |= EPOLLIN;
    }
    if interest.is_writable() {
        mask |= EPOLLOUT;
    }
    mask
}

/// Owns the epoll fd; shared between the poller and every registry clone so
/// the fd outlives whichever side drops last.
struct EpollFd {
    epfd: RawFd,
}

impl Drop for EpollFd {
    fn drop(&mut self) {
        unsafe {
            let _ = close(self.epfd);
        }
    }
}

pub(crate) struct EpollPoll {
    shared: Arc<EpollFd>,
}

impl EpollPoll {
    pub(crate) fn new() -> io::Result<EpollPoll> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(EpollPoll {
            shared: Arc::new(EpollFd { epfd }),
        })
    }

    pub(crate) fn registry(&self) -> EpollRegistry {
        EpollRegistry {
            shared: Arc::clone(&self.shared),
        }
    }

    pub(crate) fn poll(
        &mut self,
        events: &mut Events,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            // Round up so a 100µs timeout waits 1ms instead of busy-spinning.
            Some(t) => t
                .as_millis()
                .min(c_int::MAX as u128)
                .max(u128::from(!t.is_zero())) as c_int,
            None => -1,
        };
        let capacity = events.capacity;
        let mut raw: Vec<EpollEvent> = vec![EpollEvent { events: 0, data: 0 }; capacity];
        let n = loop {
            match cvt(unsafe {
                epoll_wait(
                    self.shared.epfd,
                    raw.as_mut_ptr(),
                    capacity as c_int,
                    timeout_ms,
                )
            }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    // Retry with a zero timeout so an interrupted blocking
                    // wait cannot overshoot its deadline unboundedly.
                    if timeout.is_some() {
                        break 0;
                    }
                }
                Err(e) => return Err(e),
            }
        };
        for raw_event in raw.iter().take(n) {
            let mask = raw_event.events;
            events.push(Event {
                token: raw_event.data as usize,
                readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: mask & EPOLLOUT != 0,
                error: mask & EPOLLERR != 0,
                hup: mask & (EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

#[derive(Clone)]
pub(crate) struct EpollRegistry {
    shared: Arc<EpollFd>,
}

impl EpollRegistry {
    fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest_mask(interest),
            data: token as u64,
        };
        cvt(unsafe { epoll_ctl(self.shared.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    pub(crate) fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    pub(crate) fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.shared.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }
}
