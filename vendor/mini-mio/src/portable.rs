//! The portable `poll(2)` backend: works on any Unix, O(registered fds) per
//! call.
//!
//! Registrations live in a mutex-protected table; every poll call snapshots
//! the table into a `pollfd` array. Mutations from other threads are picked
//! up on the *next* call — pair them with a [`crate::Waker`] if the poller
//! might be blocked (the crate-level docs spell out this contract).

use std::io;
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::RawFd;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::{Event, Events, Interest};

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

type FdTable = Arc<Mutex<Vec<(RawFd, usize, Interest)>>>;

pub(crate) struct PortablePoll {
    table: FdTable,
}

impl PortablePoll {
    pub(crate) fn new() -> PortablePoll {
        PortablePoll {
            table: Arc::new(Mutex::new(Vec::new())),
        }
    }

    pub(crate) fn registry(&self) -> PortableRegistry {
        PortableRegistry {
            table: Arc::clone(&self.table),
        }
    }

    pub(crate) fn poll(
        &mut self,
        events: &mut Events,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        // Snapshot the registrations so the lock is not held across the
        // blocking syscall (registry calls from other threads stay possible).
        let snapshot: Vec<(RawFd, usize, Interest)> =
            self.table.lock().expect("registry poisoned").clone();
        let mut fds: Vec<PollFd> = snapshot
            .iter()
            .map(|&(fd, _, interest)| {
                let mut mask: c_short = 0;
                if interest.is_readable() {
                    mask |= POLLIN;
                }
                if interest.is_writable() {
                    mask |= POLLOUT;
                }
                PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                }
            })
            .collect();
        let timeout_ms: c_int = match timeout {
            Some(t) => t
                .as_millis()
                .min(c_int::MAX as u128)
                .max(u128::from(!t.is_zero())) as c_int,
            None => -1,
        };
        let ready = loop {
            match unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) } {
                n if n >= 0 => break n as usize,
                _ => {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        if timeout.is_some() {
                            break 0;
                        }
                        continue;
                    }
                    return Err(e);
                }
            }
        };
        if ready == 0 {
            return Ok(());
        }
        for (slot, &(_, token, _)) in fds.iter().zip(snapshot.iter()) {
            let revents = slot.revents;
            if revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: revents & (POLLIN | POLLHUP) != 0,
                writable: revents & POLLOUT != 0,
                error: revents & POLLERR != 0,
                hup: revents & POLLHUP != 0,
            });
            if events.len() == events.capacity {
                break;
            }
        }
        Ok(())
    }
}

#[derive(Clone)]
pub(crate) struct PortableRegistry {
    table: FdTable,
}

impl PortableRegistry {
    pub(crate) fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut table = self.table.lock().expect("registry poisoned");
        if table.iter().any(|&(existing, _, _)| existing == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered; use reregister",
            ));
        }
        table.push((fd, token, interest));
        Ok(())
    }

    pub(crate) fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut table = self.table.lock().expect("registry poisoned");
        match table.iter_mut().find(|(existing, _, _)| *existing == fd) {
            Some(slot) => {
                slot.1 = token;
                slot.2 = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "fd not registered; use register",
            )),
        }
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut table = self.table.lock().expect("registry poisoned");
        let before = table.len();
        table.retain(|&(existing, _, _)| existing != fd);
        if table.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }
}
