//! Offline stand-in for the `proptest` crate.
//!
//! Keeps the authoring surface of real proptest — the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, range strategies,
//! `prop::collection::vec` and `.prop_filter(..)` — but runs cases with a
//! plain seeded RNG and *without* shrinking: a failing case reports its
//! inputs and panics. That is enough for the workspace's property tests,
//! which assert algebraic invariants over moderately sized inputs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (only the `cases` knob is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug + Clone;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Discards generated values failing `predicate` (up to a retry cap).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug + Clone,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.sample(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug + Clone,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Full-domain strategy, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: fmt::Debug + Clone {
    /// Draws a value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Length specification for [`vec()`]: a fixed length or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy generating vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property over `cases` random inputs. Used by the [`proptest!`]
/// macro expansion; not part of the public authoring surface.
pub fn run_property<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Deterministic per-property seed so failures are reproducible.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(hash);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("property `{test_name}` failed at case {i}: {e}");
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    /// `prop::…` paths (e.g. `prop::collection::vec`) as in real proptest.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests, mirroring real proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                    let __case_desc = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    __result.map_err(|e| $crate::TestCaseError::fail(
                        format!("{e}\n  inputs: {__case_desc}")
                    ))
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_have_requested_lengths(v in prop::collection::vec(0u64..5, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn filters_apply(v in prop::collection::vec(0u64..100, 1..10)
            .prop_filter("nonzero sum", |v| v.iter().sum::<u64>() > 0))
        {
            prop_assert!(v.iter().sum::<u64>() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        crate::run_property(&ProptestConfig::with_cases(1), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
