//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` implementations for
//! the value-tree model of the offline `serde` stand-in. The input item is
//! parsed directly from the token stream (no `syn`/`quote` available in this
//! container), which is sufficient for the shapes the workspace uses:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of data-carrying shape an item (or enum variant) has.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '!') {
                    i += 1;
                }
                // The attribute body: a bracketed group.
                i += 1;
            }
            _ => break,
        }
    }
    i
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(
            tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            i += 1;
        }
    }
    i
}

/// Parses the comma-separated named fields of a brace-delimited body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_visibility(&tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde stand-in derive: expected a field name, found {:?}",
                tokens[i]
            );
        };
        names.push(name.to_string());
        i += 1; // field name
        i += 1; // ':'
                // Skip the type: everything up to a top-level comma. Groups are atomic
                // token trees, so only angle brackets need explicit depth tracking.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts the comma-separated fields of a parenthesised tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde stand-in derive: expected a variant name, found {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip everything (e.g. discriminants) up to the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let TokenTree::Ident(keyword) = &tokens[i] else {
        panic!("serde stand-in derive: expected `struct` or `enum`");
    };
    let keyword = keyword.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde stand-in derive: expected an item name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic types (deriving `{name}`)");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde stand-in derive: malformed enum body");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("serde stand-in derive: cannot derive for `{other}` items"),
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => serialize_named(names, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let inner = serialize_named(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde stand-in derive generated invalid Rust")
}

fn serialize_named(names: &[String], prefix: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::DeError::custom(\"missing tuple element\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Array(items) => Ok({name}({})),\n\
                             _ => Err(::serde::DeError::custom(\"expected an array\")),\n\
                         }}",
                        elems.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::get_field(v, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("\"{vn}\" => Ok({name}::{vn}),")
                        }
                        Fields::Tuple(n) if *n == 1 => format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(_payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::DeError::custom(\"missing tuple element\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => match _payload {{\n\
                                     ::serde::Value::Array(items) => Ok({name}::{vn}({})),\n\
                                     _ => Err(::serde::DeError::custom(\"expected an array payload\")),\n\
                                 }},",
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(_payload, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit}\n\
                                 other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (key, _payload) = &fields[0];\n\
                                 match key.as_str() {{\n\
                                     {keyed}\n\
                                     other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::DeError::custom(\"expected a variant string or single-key object\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                keyed = keyed_arms.join("\n"),
            )
        }
    };
    code.parse()
        .expect("serde stand-in derive generated invalid Rust")
}
