//! RFC 7748 X25519: Diffie-Hellman over Curve25519.
//!
//! Field elements are five 51-bit limbs over p = 2^255 - 19; the scalar
//! multiplication is the standard Montgomery ladder with a masked
//! conditional swap. The public types mirror `x25519-dalek`'s shapes:
//! [`StaticSecret`] (reusable, `diffie_hellman(&self, ..)`),
//! [`EphemeralSecret`] (consumed by `diffie_hellman(self, ..)`),
//! [`PublicKey`], [`SharedSecret`].

const LIMB_MASK: u64 = (1 << 51) - 1;

/// Field element mod 2^255 - 19, five 51-bit limbs, little-endian.
#[derive(Clone, Copy)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(b)
        };
        Fe([
            load(0) & LIMB_MASK,
            (load(6) >> 3) & LIMB_MASK,
            (load(12) >> 6) & LIMB_MASK,
            (load(19) >> 1) & LIMB_MASK,
            (load(24) >> 12) & LIMB_MASK, // masks off bit 255 per RFC 7748
        ])
    }

    /// Canonical (fully reduced) little-endian encoding.
    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.0;
        // Partial carry so every limb is below 2^52.
        let mut c;
        for _ in 0..2 {
            c = h[0] >> 51;
            h[0] &= LIMB_MASK;
            h[1] += c;
            c = h[1] >> 51;
            h[1] &= LIMB_MASK;
            h[2] += c;
            c = h[2] >> 51;
            h[2] &= LIMB_MASK;
            h[3] += c;
            c = h[3] >> 51;
            h[3] &= LIMB_MASK;
            h[4] += c;
            c = h[4] >> 51;
            h[4] &= LIMB_MASK;
            h[0] += c * 19;
        }
        // q = 1 iff h >= p, computed by propagating the +19 carry.
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        h[0] += 19 * q;
        c = h[0] >> 51;
        h[0] &= LIMB_MASK;
        h[1] += c;
        c = h[1] >> 51;
        h[1] &= LIMB_MASK;
        h[2] += c;
        c = h[2] >> 51;
        h[2] &= LIMB_MASK;
        h[3] += c;
        c = h[3] >> 51;
        h[3] &= LIMB_MASK;
        h[4] += c;
        h[4] &= LIMB_MASK; // drops the 2^255 bit when h was >= p

        let mut out = [0u8; 32];
        let words = [
            h[0] | (h[1] << 51),
            (h[1] >> 13) | (h[2] << 38),
            (h[2] >> 26) | (h[3] << 25),
            (h[3] >> 39) | (h[4] << 12),
        ];
        for (i, w) in words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn add(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
    }

    /// `self - rhs`, biased by 2p so limbs never underflow.
    fn sub(self, rhs: Fe) -> Fe {
        const TWO_P0: u64 = 0x000f_ffff_ffff_ffda; // 2 * (2^51 - 19)
        const TWO_PX: u64 = 0x000f_ffff_ffff_fffe; // 2 * (2^51 - 1)
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + TWO_P0 - b[0],
            a[1] + TWO_PX - b[1],
            a[2] + TWO_PX - b[2],
            a[3] + TWO_PX - b[3],
            a[4] + TWO_PX - b[4],
        ])
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0.map(u128::from);
        let b = rhs.0.map(u128::from);
        let b19 = [b[0], b[1] * 19, b[2] * 19, b[3] * 19, b[4] * 19];
        let d = [
            a[0] * b[0] + a[1] * b19[4] + a[2] * b19[3] + a[3] * b19[2] + a[4] * b19[1],
            a[0] * b[1] + a[1] * b[0] + a[2] * b19[4] + a[3] * b19[3] + a[4] * b19[2],
            a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + a[3] * b19[4] + a[4] * b19[3],
            a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + a[4] * b19[4],
            a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0],
        ];
        Fe::carry(d)
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, k: u64) -> Fe {
        let k = u128::from(k);
        Fe::carry(self.0.map(|l| u128::from(l) * k))
    }

    fn carry(mut d: [u128; 5]) -> Fe {
        let mask = u128::from(LIMB_MASK);
        let mut c: u128 = 0;
        for limb in d.iter_mut() {
            *limb += c;
            c = *limb >> 51;
            *limb &= mask;
        }
        d[0] += c * 19;
        d[1] += d[0] >> 51;
        d[0] &= mask;
        Fe([
            d[0] as u64,
            d[1] as u64,
            d[2] as u64,
            d[3] as u64,
            d[4] as u64,
        ])
    }

    /// Multiplicative inverse via Fermat: self^(p - 2). The exponent
    /// 2^255 - 21 is all ones except bits 2 and 4.
    fn invert(self) -> Fe {
        let mut r = Fe::ONE;
        for i in (0..255).rev() {
            r = r.square();
            if i != 2 && i != 4 {
                r = r.mul(self);
            }
        }
        r
    }

    /// Masked swap: exchanges `a` and `b` when `swap` is 1.
    fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

/// RFC 7748 scalar clamping.
fn clamp(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// The raw X25519 function: `scalar * point` on the Montgomery curve.
pub fn x25519(scalar: [u8; 32], point: [u8; 32]) -> [u8; 32] {
    let k = clamp(scalar);
    let x1 = Fe::from_bytes(&point);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);
    x2.mul(z2.invert()).to_bytes()
}

/// The curve's base point u = 9.
const BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// A reusable Diffie-Hellman secret (a node's long-term identity key).
#[derive(Clone)]
pub struct StaticSecret([u8; 32]);

impl StaticSecret {
    pub fn from_bytes(bytes: [u8; 32]) -> StaticSecret {
        StaticSecret(clamp(bytes))
    }

    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }

    pub fn diffie_hellman(&self, their_public: &PublicKey) -> SharedSecret {
        SharedSecret(x25519(self.0, their_public.0))
    }
}

/// A single-use Diffie-Hellman secret, consumed by the key agreement.
pub struct EphemeralSecret([u8; 32]);

impl EphemeralSecret {
    pub fn from_bytes(bytes: [u8; 32]) -> EphemeralSecret {
        EphemeralSecret(clamp(bytes))
    }

    pub fn diffie_hellman(self, their_public: &PublicKey) -> SharedSecret {
        SharedSecret(x25519(self.0, their_public.0))
    }
}

/// A Curve25519 public key (the u-coordinate of `scalar * basepoint`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey([u8; 32]);

impl PublicKey {
    pub fn from_bytes(bytes: [u8; 32]) -> PublicKey {
        PublicKey(bytes)
    }

    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    pub fn to_bytes(self) -> [u8; 32] {
        self.0
    }
}

impl From<&StaticSecret> for PublicKey {
    fn from(secret: &StaticSecret) -> PublicKey {
        PublicKey(x25519(secret.0, BASEPOINT))
    }
}

impl From<&EphemeralSecret> for PublicKey {
    fn from(secret: &EphemeralSecret) -> PublicKey {
        PublicKey(x25519(secret.0, BASEPOINT))
    }
}

/// The result of a key agreement.
pub struct SharedSecret([u8; 32]);

impl SharedSecret {
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    pub fn to_bytes(self) -> [u8; 32] {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    /// RFC 7748 §5.2, first test vector.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let expect = unhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(x25519(scalar, point), expect);
    }

    /// RFC 7748 §5.2, one iteration of the ladder from (scalar = u = 9).
    #[test]
    fn rfc7748_iterated_once() {
        let k = BASEPOINT;
        let expect = unhex("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
        assert_eq!(x25519(k, k), expect);
    }

    /// DH agreement: both directions derive the same shared secret, and
    /// it is not the all-zero point.
    #[test]
    fn diffie_hellman_agrees() {
        let a = StaticSecret::from_bytes([0x11; 32]);
        let b = StaticSecret::from_bytes([0x42; 32]);
        let a_pub = PublicKey::from(&a);
        let b_pub = PublicKey::from(&b);
        let ab = a.diffie_hellman(&b_pub);
        let ba = b.diffie_hellman(&a_pub);
        assert_eq!(ab.as_bytes(), ba.as_bytes());
        assert_ne!(ab.as_bytes(), &[0u8; 32]);
        // Distinct keys disagree.
        let c = StaticSecret::from_bytes([0x43; 32]);
        assert_ne!(c.diffie_hellman(&a_pub).as_bytes(), ba.as_bytes());
    }

    /// Ephemeral secrets are consumed but agree the same way.
    #[test]
    fn ephemeral_agrees_with_static() {
        let e = EphemeralSecret::from_bytes([0x07; 32]);
        let e_pub = PublicKey::from(&e);
        let s = StaticSecret::from_bytes([0x09; 32]);
        let s_pub = PublicKey::from(&s);
        assert_eq!(
            e.diffie_hellman(&s_pub).as_bytes(),
            s.diffie_hellman(&e_pub).as_bytes()
        );
    }

    /// Field round-trip stays canonical.
    #[test]
    fn field_encoding_round_trips() {
        let v = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(Fe::from_bytes(&v).to_bytes(), v);
    }
}
