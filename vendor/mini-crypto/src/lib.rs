//! # mini-crypto — offline stand-in for the channel-security crates
//!
//! The build container has no crates.io access, so this crate carries
//! minimal, spec-faithful implementations of the three primitives the
//! authenticated channel needs, with API shapes matching the real crates
//! (`x25519-dalek`, `chacha20poly1305`, `sha2`/`hmac`/`hkdf`) closely
//! enough that swapping back is a manifest-only change:
//!
//! - [`x25519`] — RFC 7748 Curve25519 Diffie-Hellman over the Montgomery
//!   ladder with 51-bit-limb field arithmetic
//!   ([`StaticSecret`] / [`EphemeralSecret`] / [`PublicKey`] /
//!   [`SharedSecret`], plus the raw [`x25519::x25519`] function).
//! - [`chacha`] — RFC 8439 ChaCha20-Poly1305 AEAD
//!   ([`ChaCha20Poly1305`] with `seal` / `open`, detached 16-byte tag,
//!   96-bit nonces) with a constant-time tag comparison.
//! - [`hash`] — FIPS 180-4 SHA-256, RFC 2104 HMAC-SHA-256 and RFC 5869
//!   HKDF ([`sha256`], [`hmac_sha256`], [`hkdf`]).
//!
//! ## How this differs from the real crates
//!
//! - No trait plumbing (`digest::Digest`, `aead::Aead`): plain structs
//!   and free functions with the same byte-level behaviour.
//! - Field/MAC arithmetic uses straightforward limb schedules rather than
//!   SIMD backends; correctness is pinned by the RFC test vectors in each
//!   module, performance is "good enough for loopback benches".
//! - Secrets are plain arrays without zeroize-on-drop.
//!
//! Nothing here parses untrusted *structure* — callers frame and length-
//! check inputs first; these primitives only ever see fixed-size keys and
//! already-bounded byte slices.

pub mod chacha;
pub mod hash;
pub mod x25519;

pub use chacha::{AeadError, ChaCha20Poly1305, NONCE_LEN, TAG_LEN};
pub use hash::{hkdf, hmac_sha256, sha256};
pub use x25519::{EphemeralSecret, PublicKey, SharedSecret, StaticSecret};
