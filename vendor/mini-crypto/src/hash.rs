//! FIPS 180-4 SHA-256, RFC 2104 HMAC-SHA-256, RFC 5869 HKDF.
//!
//! One-shot free functions: the channel layer hashes handshake
//! transcripts and expands session keys; nothing here needs incremental
//! state across calls.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn compress(state: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// One-shot SHA-256 over any number of input parts (equivalent to
/// hashing their concatenation).
pub fn sha256_parts(parts: &[&[u8]]) -> [u8; 32] {
    let mut state: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut buf = [0u8; 64];
    let mut buf_len = 0usize;
    let mut total: u64 = 0;
    for part in parts {
        let mut data: &[u8] = part;
        total += data.len() as u64;
        if buf_len > 0 {
            let take = (64 - buf_len).min(data.len());
            buf[buf_len..buf_len + take].copy_from_slice(&data[..take]);
            buf_len += take;
            data = &data[take..];
            if buf_len == 64 {
                let block = buf;
                compress(&mut state, &block);
                buf_len = 0;
            }
        }
        while data.len() >= 64 {
            compress(&mut state, &data[..64]);
            data = &data[64..];
        }
        if !data.is_empty() {
            buf[..data.len()].copy_from_slice(data);
            buf_len = data.len();
        }
    }
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let bits = total * 8;
    let mut tail = [0u8; 128];
    tail[..buf_len].copy_from_slice(&buf[..buf_len]);
    tail[buf_len] = 0x80;
    let tail_len = if buf_len < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bits.to_be_bytes());
    for block in tail[..tail_len].chunks(64) {
        compress(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    sha256_parts(&[data])
}

/// RFC 2104 HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    hmac_sha256_parts(key, &[data])
}

/// HMAC-SHA-256 over the concatenation of `parts`.
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    let mut block_key = [0u8; 64];
    if key.len() > 64 {
        block_key[..32].copy_from_slice(&sha256(key));
    } else {
        block_key[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; 64];
    let mut opad = [0u8; 64];
    for i in 0..64 {
        ipad[i] = block_key[i] ^ 0x36;
        opad[i] = block_key[i] ^ 0x5c;
    }
    let mut inner_parts: Vec<&[u8]> = Vec::with_capacity(parts.len() + 1);
    inner_parts.push(&ipad);
    inner_parts.extend_from_slice(parts);
    let inner = sha256_parts(&inner_parts);
    sha256_parts(&[&opad, &inner])
}

/// RFC 5869 HKDF (extract + expand) with SHA-256: derives `len` bytes of
/// keying material from `ikm`, bound to `salt` and `info`.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF output length out of range");
    let prk = hmac_sha256(salt, ikm);
    let mut okm = Vec::with_capacity(len);
    let mut t: [u8; 32] = [0; 32];
    let mut block: u8 = 1;
    while okm.len() < len {
        let prev: &[u8] = if block == 1 { &[] } else { &t };
        t = hmac_sha256_parts(&prk, &[prev, info, &[block]]);
        let take = (len - okm.len()).min(32);
        okm.extend_from_slice(&t[..take]);
        block += 1;
    }
    okm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 known-answer vectors.
    #[test]
    fn sha256_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (56 bytes forces the 128-byte padding tail).
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// Split inputs hash like their concatenation.
    #[test]
    fn sha256_parts_matches_concat() {
        let whole = sha256(b"hello world, split across parts");
        let split = sha256_parts(&[b"hello world", b", split", b" across parts"]);
        assert_eq!(whole, split);
    }

    /// RFC 4231 test case 1.
    #[test]
    fn hmac_vector() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 5869 test case 1.
    #[test]
    fn hkdf_vector() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    /// Different salts/infos yield independent keys; output length holds.
    #[test]
    fn hkdf_separates_contexts() {
        let a = hkdf(b"salt-a", b"ikm", b"info", 96);
        let b = hkdf(b"salt-b", b"ikm", b"info", 96);
        let c = hkdf(b"salt-a", b"ikm", b"other", 96);
        assert_eq!(a.len(), 96);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, hkdf(b"salt-a", b"ikm", b"info", 96));
    }
}
