//! RFC 8439 ChaCha20-Poly1305 AEAD.
//!
//! [`ChaCha20Poly1305::seal`] returns `ciphertext || 16-byte tag`;
//! [`ChaCha20Poly1305::open`] verifies the tag (constant-time compare)
//! before decrypting and returns [`AeadError`] on any mismatch — callers
//! map that to their own typed error, never a panic.

use std::fmt;

/// AEAD tag length in bytes.
pub const TAG_LEN: usize = 16;
/// AEAD nonce length in bytes (96-bit nonces per RFC 8439).
pub const NONCE_LEN: usize = 12;

/// Authentication failure: the sealed frame was tampered with, truncated,
/// or opened with the wrong key/nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl fmt::Display for AeadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AeadError {}

// ---------------------------------------------------------------- ChaCha20

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One 64-byte ChaCha20 block (RFC 8439 §2.3).
fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }

    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the keystream starting at block `counter` into `data` in place.
fn chacha20_xor(key: &[u8; 32], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let block = chacha20_block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
    }
}

// ---------------------------------------------------------------- Poly1305

/// Streaming Poly1305 over 26-bit limbs (RFC 8439 §2.5).
struct Poly1305 {
    r: [u64; 5],
    h: [u64; 5],
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    fn new(key: &[u8; 32]) -> Poly1305 {
        let le32 =
            |i: usize| -> u64 { u64::from(u32::from_le_bytes(key[i..i + 4].try_into().unwrap())) };
        Poly1305 {
            // r with the RFC's clamping folded into the limb loads.
            r: [
                le32(0) & 0x3ff_ffff,
                (le32(3) >> 2) & 0x3ff_ff03,
                (le32(6) >> 4) & 0x3ff_c0ff,
                (le32(9) >> 6) & 0x3f0_3fff,
                (le32(12) >> 8) & 0x00f_ffff,
            ],
            h: [0; 5],
            pad: [
                u32::from_le_bytes(key[16..20].try_into().unwrap()),
                u32::from_le_bytes(key[20..24].try_into().unwrap()),
                u32::from_le_bytes(key[24..28].try_into().unwrap()),
                u32::from_le_bytes(key[28..32].try_into().unwrap()),
            ],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    fn block(&mut self, block: &[u8; 16], hibit: u64) {
        const MASK: u64 = 0x3ff_ffff;
        let le32 = |i: usize| -> u64 {
            u64::from(u32::from_le_bytes(block[i..i + 4].try_into().unwrap()))
        };
        let h = &mut self.h;
        h[0] += le32(0) & MASK;
        h[1] += (le32(3) >> 2) & MASK;
        h[2] += (le32(6) >> 4) & MASK;
        h[3] += (le32(9) >> 6) & MASK;
        h[4] += (le32(12) >> 8) | hibit;

        let r = &self.r;
        let s = [r[1] * 5, r[2] * 5, r[3] * 5, r[4] * 5];
        let d = [
            h[0] * r[0] + h[1] * s[3] + h[2] * s[2] + h[3] * s[1] + h[4] * s[0],
            h[0] * r[1] + h[1] * r[0] + h[2] * s[3] + h[3] * s[2] + h[4] * s[1],
            h[0] * r[2] + h[1] * r[1] + h[2] * r[0] + h[3] * s[3] + h[4] * s[2],
            h[0] * r[3] + h[1] * r[2] + h[2] * r[1] + h[3] * r[0] + h[4] * s[3],
            h[0] * r[4] + h[1] * r[3] + h[2] * r[2] + h[3] * r[1] + h[4] * r[0],
        ];
        let mut c = d[0] >> 26;
        h[0] = d[0] & MASK;
        let d1 = d[1] + c;
        c = d1 >> 26;
        h[1] = d1 & MASK;
        let d2 = d[2] + c;
        c = d2 >> 26;
        h[2] = d2 & MASK;
        let d3 = d[3] + c;
        c = d3 >> 26;
        h[3] = d3 & MASK;
        let d4 = d[4] + c;
        c = d4 >> 26;
        h[4] = d4 & MASK;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= MASK;
        h[1] += c;
    }

    fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let block: [u8; 16] = data[..16].try_into().unwrap();
            self.block(&block, 1 << 24);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> [u8; TAG_LEN] {
        const MASK: u64 = 0x3ff_ffff;
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }
        let h = &mut self.h;
        // Full carry.
        let mut c = h[1] >> 26;
        h[1] &= MASK;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= MASK;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= MASK;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= MASK;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= MASK;
        h[1] += c;

        // g = h - p; select g when h >= p (no borrow out of the top limb).
        let mut g = [0u64; 5];
        c = 5;
        for i in 0..4 {
            g[i] = h[i] + c;
            c = g[i] >> 26;
            g[i] &= MASK;
        }
        g[4] = (h[4] + c).wrapping_sub(1 << 26);
        let use_g = 0u64.wrapping_sub((g[4] >> 63) ^ 1);
        for i in 0..5 {
            h[i] = (h[i] & !use_g) | (g[i] & use_g);
        }

        // h mod 2^128, then add the pad with carry.
        let f = [
            (h[0] | (h[1] << 26)) & 0xffff_ffff,
            ((h[1] >> 6) | (h[2] << 20)) & 0xffff_ffff,
            ((h[2] >> 12) | (h[3] << 14)) & 0xffff_ffff,
            ((h[3] >> 18) | (h[4] << 8)) & 0xffff_ffff,
        ];
        let mut tag = [0u8; TAG_LEN];
        let mut carry: u64 = 0;
        for i in 0..4 {
            let sum = f[i] + u64::from(self.pad[i]) + carry;
            tag[i * 4..i * 4 + 4].copy_from_slice(&(sum as u32).to_le_bytes());
            carry = sum >> 32;
        }
        tag
    }
}

// ------------------------------------------------------------------- AEAD

/// RFC 8439 AEAD: ChaCha20 encryption with a Poly1305 tag over
/// `aad || ciphertext` plus their lengths.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; 32],
}

impl ChaCha20Poly1305 {
    pub fn new(key: &[u8; 32]) -> ChaCha20Poly1305 {
        ChaCha20Poly1305 { key: *key }
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let otk: [u8; 32] = chacha20_block(&self.key, 0, nonce)[..32]
            .try_into()
            .unwrap();
        let mut mac = Poly1305::new(&otk);
        let zeros = [0u8; 16];
        mac.update(aad);
        mac.update(&zeros[..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&zeros[..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypts `plaintext`, authenticating it together with `aad`.
    /// Returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        chacha20_xor(&self.key, 1, nonce, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies the tag over `sealed = ciphertext || tag` and decrypts.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < TAG_LEN {
            return Err(AeadError);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expect = self.tag(nonce, aad, ciphertext);
        // Constant-time comparison: fold all byte differences first.
        let diff = tag
            .iter()
            .zip(expect.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        if diff != 0 {
            return Err(AeadError);
        }
        let mut out = ciphertext.to_vec();
        chacha20_xor(&self.key, 1, nonce, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let block = chacha20_block(&key, 1, &nonce);
        let expect = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expect);
    }

    /// RFC 8439 §2.5.2: Poly1305 tag test vector.
    #[test]
    fn rfc8439_poly1305_vector() {
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let mut mac = Poly1305::new(&key);
        mac.update(b"Cryptographic Forum Research Group");
        // Trailing partial block is padded with a 0x01 marker inside
        // finalize, matching the RFC's plain-MAC padding.
        assert_eq!(
            mac.finalize().to_vec(),
            unhex("a8061dc1305136c6c22b8baf0c0127a9")
        );
    }

    /// RFC 8439 §2.8.2: full AEAD seal, checked by tag and round-trip.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &aad, plaintext);
        assert_eq!(
            sealed[sealed.len() - TAG_LEN..].to_vec(),
            unhex("1ae10b594f09e26a7e902ecbd0600691")
        );
        assert_eq!(
            sealed[..16].to_vec(),
            unhex("d31a8d34648e60db7b86afbc53ef7ec2")
        );
        let opened = aead.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    /// Any single bit flip in ciphertext, tag, or AAD fails the open.
    #[test]
    fn tamper_detected() {
        let aead = ChaCha20Poly1305::new(&[7u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"aad", b"payload bytes");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert_eq!(aead.open(&nonce, b"aad", &bad), Err(AeadError));
        }
        assert_eq!(aead.open(&nonce, b"wrong aad", &sealed), Err(AeadError));
        assert_eq!(aead.open(&[2u8; 12], b"aad", &sealed), Err(AeadError));
        assert_eq!(aead.open(&nonce, b"aad", &sealed[..8]), Err(AeadError));
        assert!(aead.open(&nonce, b"aad", &sealed).is_ok());
    }

    /// Empty plaintext and empty AAD round-trip.
    #[test]
    fn empty_inputs_round_trip() {
        let aead = ChaCha20Poly1305::new(&[9u8; 32]);
        let sealed = aead.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(aead.open(&[0u8; 12], b"", &sealed).unwrap(), b"");
    }
}
