//! Offline stand-in for the `num-integer` crate.
//!
//! Declares the `Integer` trait with the methods the workspace calls
//! (`gcd`, `is_even`, `extended_gcd`). Concrete implementations live next to
//! the types, in the `num-bigint` stand-in.

/// Result of the extended Euclidean algorithm: `gcd = a·x + b·y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGcd<T> {
    /// Greatest common divisor of the two inputs.
    pub gcd: T,
    /// Bézout coefficient of the first input.
    pub x: T,
    /// Bézout coefficient of the second input.
    pub y: T,
}

/// Integer-specific operations, mirroring `num_integer::Integer`.
///
/// Every method has a panicking default so implementors only provide the
/// operations that are meaningful (and used) for their type.
pub trait Integer: Sized {
    /// Greatest common divisor.
    fn gcd(&self, _other: &Self) -> Self {
        unimplemented!("gcd not implemented for this type")
    }

    /// `true` if the value is even.
    fn is_even(&self) -> bool {
        unimplemented!("is_even not implemented for this type")
    }

    /// Extended Euclidean algorithm producing Bézout coefficients.
    fn extended_gcd(&self, _other: &Self) -> ExtendedGcd<Self> {
        unimplemented!("extended_gcd not implemented for this type")
    }
}

macro_rules! impl_machine_int {
    ($($t:ty),*) => {$(
        impl Integer for $t {
            fn gcd(&self, other: &Self) -> Self {
                let (mut a, mut b) = (*self, *other);
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                a
            }
            fn is_even(&self) -> bool { self % 2 == 0 }
        }
    )*};
}

impl_machine_int!(u8, u16, u32, u64, u128, usize);
