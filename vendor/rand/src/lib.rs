//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in a container without crates.io access, so this crate
//! re-implements the small part of `rand` 0.8's API the code actually touches:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic for a given seed, statistically solid, but **not**
//!   bit-compatible with upstream's ChaCha12-based `StdRng`),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Nothing here is cryptographic; the Paillier layer stretches these seeds for
//! *reproducible experiments*, not for production key material, as the
//! `dubhe-he` crate docs call out.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from their full domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply with rejection of the
/// biased zone (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return u64::sample_standard(rng) as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with an empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with an empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from its full domain (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills a mutable slice of bytes (mirrors `Rng::fill`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic per seed and fast; not a reimplementation of upstream
    /// `StdRng`'s ChaCha12 stream, so seeds produce *different but equally
    /// valid* experiment randomness.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut max: f64 = 0.0;
        let mut min: f64 = 1.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            max = max.max(v);
            min = min.min(v);
        }
        assert!(max > 0.99 && min < 0.01, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }
}
