//! Offline stand-in for `serde_json`.
//!
//! Serializes the offline serde stand-in's [`Value`] tree to JSON text and
//! parses JSON text back into it. Covers the workspace's needs:
//! `to_string`, `to_string_pretty` and `from_str`.

use std::fmt::Write as _;

use serde::{DeError, Deserialize, Serialize, Value};

/// Errors from JSON encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(Error::new("invalid UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new("invalid number"))
        } else {
            // Large magnitudes overflow into floats, like serde_json's lossy path.
            text.parse::<u64>().map(Value::UInt).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new("invalid number"))
            })
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("dubhe \"fl\"".to_string())),
            ("count".to_string(), Value::UInt(42)),
            ("neg".to_string(), Value::Int(-7)),
            ("pi".to_string(), Value::Float(3.25)),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "items".to_string(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{invalid}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        let v: Value = from_str("\"\\u00e9\\n\"").unwrap();
        assert_eq!(v, Value::Str("é\n".to_string()));
    }
}
