//! Offline stand-in for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this stand-in uses a
//! simple self-describing value tree ([`Value`]): types serialize *into* a
//! `Value` and deserialize *from* one. The companion `serde_json` stand-in
//! renders values to / parses values from JSON text, and the `serde_derive`
//! stand-in generates the field-by-field conversions for structs and enums.
//! The derive macros and trait names match upstream, so the workspace code is
//! written exactly as it would be against real serde.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (stored as the actual value).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map (insertion order preserved so JSON output is stable).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a value tree cannot be converted into the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches a required object field (used by derived code).
pub fn get_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    v.get(name)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom("integer out of range")),
                    _ => Err(DeError::custom(concat!("expected an unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::UInt(*self as u64) } else { Value::Int(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom("integer out of range")),
                    _ => Err(DeError::custom(concat!("expected an integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::custom("expected a number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected a boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected a string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected an array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::custom("expected a two-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(DeError::custom("expected a three-element array")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
